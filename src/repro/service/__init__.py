"""Controller-as-a-service: streaming ingestion, pluggable actuation.

The in-process runtime constructs the Stay-Away controller around the
simulator: the engine hands it perfect per-tick snapshots and its
pause/resume calls land instantly. This package splits the controller
behind the ``monitoring`` seam into a standalone service:

* :mod:`repro.service.stream` — metric *sources*: JSONL replay of
  recorded runs and Prometheus-text scrape (the
  :mod:`repro.telemetry.exporters` exposition format), both yielding
  plain wire records;
* :mod:`repro.service.assembler` — the :class:`StreamAssembler`
  reorders by watermark, deduplicates by ``(tick, host, container,
  metric)``, holds per-cell last values over partial ticks and closes
  ticks on watermark expiry so the controller steps on
  partial-but-bounded data instead of blocking;
* :mod:`repro.service.views` — host/snapshot value-object views that
  let the unmodified :class:`~repro.core.controller.StayAway` run
  against assembled stream state;
* :mod:`repro.service.actuator` — the pluggable acknowledged actuation
  seam: every pause/resume command must be acked within a timeout,
  unacked commands retry with backoff and finally land in a
  dead-letter log reconciled through the
  :mod:`repro.core.action` escalation path;
* :mod:`repro.service.controller_service` — the
  :class:`ControllerService` lifecycle (start/drain/stop), source
  reconnect with exponential backoff + jitter, and stall-deadline
  degradation into the existing
  :class:`~repro.core.resilience.DegradedModeMachine`;
* :mod:`repro.service.recording` — the stream-JSONL recorder
  (:class:`StreamRecorder`) whose output the replay source consumes;
* :mod:`repro.service.exporter` — the usage-gauge exporter the scrape
  source reads back (closing the Prometheus round trip).

Layering: ``service`` imports ``core``/``monitoring``/``telemetry``
(plus sim/workloads *value types*, baselined like the monitoring
boundary); nothing below it may import ``service``.
"""

from repro.service.actuator import (
    ActuatorCommand,
    AckTracker,
    CommandStatus,
    NullActuator,
    RecordingActuator,
    SimHostActuator,
)
from repro.service.assembler import ClosedTick, PassthroughAssembler, StreamAssembler
from repro.service.controller_service import (
    ControllerService,
    ServiceState,
    decision_sequence,
)
from repro.service.exporter import UsageGaugeExporter
from repro.service.recording import (
    StreamRecorder,
    load_stream_jsonl,
    snapshot_records,
    write_stream_jsonl,
)
from repro.service.stream import (
    JsonlReplaySource,
    PrometheusScrapeSource,
    PromSample,
    QueueSource,
    StreamError,
    parse_prometheus_text,
)

__all__ = [
    "AckTracker",
    "ActuatorCommand",
    "ClosedTick",
    "CommandStatus",
    "ControllerService",
    "JsonlReplaySource",
    "NullActuator",
    "PassthroughAssembler",
    "PromSample",
    "PrometheusScrapeSource",
    "QueueSource",
    "RecordingActuator",
    "ServiceState",
    "SimHostActuator",
    "StreamAssembler",
    "StreamError",
    "StreamRecorder",
    "decision_sequence",
    "UsageGaugeExporter",
    "load_stream_jsonl",
    "parse_prometheus_text",
    "snapshot_records",
    "write_stream_jsonl",
]
