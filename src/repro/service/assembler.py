"""Watermark reassembly of a disordered metric stream into closed ticks.

A real metric transport delivers samples late, twice, out of order, or
not at all. The controller, by contrast, wants exactly one measurement
vector per tick, in tick order, *now*. The :class:`StreamAssembler`
bridges the two with a watermark protocol:

* records for tick ``t`` are buffered until the watermark passes —
  i.e. until a record for tick ``t + watermark`` (or later) has been
  seen — then tick ``t`` is **closed** and delivered in order;
* duplicates within a ``(tick, host, container, metric)`` cell keep
  the first-seen value (``stream.duplicated``);
* records older than the newest seen tick but not yet closed are
  accepted and counted ``stream.reordered`` — buffering is exactly
  what makes them usable;
* records for already-closed ticks are counted ``stream.late`` and
  dropped — the controller has moved on;
* cells still missing at close are counted ``stream.dropped``, filled
  from that cell's last delivered value when one exists
  (``stream.imputed``) or NaN otherwise, and the tick is flagged
  partial (``stream.ticks_closed_partial``) — *partial-but-bounded*
  data instead of blocking;
* a cell missing for ``retire_after`` *consecutive* closes is retired
  (``stream.cells_retired``): the container has left the host (fleet
  migration, removal) rather than dropped a sample, so holding its
  last value would impute a ghost forever. Transient faults never
  trip this — at a 5% drop rate, 8 consecutive misses is a
  :math:`0.05^8` event. Gap ticks do not advance retirement streaks
  (a wholly-missing tick is a transport hole, not a departure), and a
  retired cell re-registers the moment a sample for it reappears;
* wholly-missing ticks between closures are synthesized as NaN-valued
  gap ticks (``stream.gap_ticks``) so the controller's existing
  :class:`~repro.monitoring.guard.SensorGuard` performs the imputation
  and its staleness accounting, exactly as for an in-process sensor
  dropout.

:class:`PassthroughAssembler` is the ablation arm: no watermark, no
dedup, zero-fill for missing cells — what a naive stream consumer
does, and what ``benchmarks/bench_stream_service.py`` shows degrading
far beyond the assembled arm under the same faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricRegistry

#: A metric cell address within one tick: ``(host, container, metric)``.
CellKey = Tuple[str, str, str]


@dataclass
class ClosedTick:
    """One assembled tick, ready for the controller.

    Attributes
    ----------
    tick:
        The data tick this closure describes.
    host:
        Host the samples belong to.
    usage:
        ``{container: {metric: value}}``; imputed cells carry the last
        delivered value, unknown cells NaN.
    states:
        ``{container: (state, finished, sensitive)}`` — lifecycle
        state string, application-finished flag and container kind
        (held from the last delivery when this tick carried no state
        record).
    qos:
        ``(value, threshold)`` when the sensitive application reported
        QoS this tick, else ``None``.
    partial:
        True when at least one expected cell was missing at close.
    gap:
        True when *no* record at all arrived for this tick (the usage
        is all-NaN and flows through the SensorGuard's imputation).
    """

    tick: int
    host: str
    usage: Dict[str, Dict[str, float]]
    states: Dict[str, Tuple[str, bool, bool]]
    qos: Optional[Tuple[float, float]] = None
    partial: bool = False
    gap: bool = False


@dataclass
class _PendingTick:
    cells: Dict[CellKey, float] = field(default_factory=dict)
    states: Dict[str, Tuple[str, bool, bool]] = field(default_factory=dict)
    qos: Optional[Tuple[float, float]] = None


class StreamAssembler:
    """Reorder, deduplicate and close a metric stream by watermark.

    Parameters
    ----------
    watermark:
        Ticks of reorder slack: tick ``t`` closes once a record for
        ``t + watermark`` has been seen. ``0`` closes each tick as
        soon as any record for it arrives (no reorder tolerance).
    retire_after:
        Consecutive non-gap closes a cell may miss before it is
        retired from the expected set (its container is presumed to
        have left the host). ``0`` disables retirement.
    registry:
        Shared :class:`~repro.telemetry.registry.MetricRegistry` for
        the ``stream.*`` delivery counters; a private registry is
        created when none is given.
    """

    def __init__(
        self,
        watermark: int = 2,
        retire_after: int = 8,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if watermark < 0:
            raise ValueError("watermark must be non-negative")
        if retire_after < 0:
            raise ValueError("retire_after must be non-negative")
        self.watermark = watermark
        self.retire_after = retire_after
        self.metrics = registry if registry is not None else MetricRegistry()
        self._c_dropped = self.metrics.counter(
            "stream.dropped", help="cells missing at tick close"
        )
        self._c_duplicated = self.metrics.counter(
            "stream.duplicated", help="duplicate cells discarded (first wins)"
        )
        self._c_reordered = self.metrics.counter(
            "stream.reordered", help="records that arrived behind a newer tick"
        )
        self._c_late = self.metrics.counter(
            "stream.late", help="records for already-closed ticks (dropped)"
        )
        self._c_imputed = self.metrics.counter(
            "stream.imputed", help="missing cells filled from their last value"
        )
        self._c_partial = self.metrics.counter(
            "stream.ticks_closed_partial", help="ticks closed with missing cells"
        )
        self._c_gaps = self.metrics.counter(
            "stream.gap_ticks", help="wholly-missing ticks synthesized as NaN"
        )
        self._c_retired = self.metrics.counter(
            "stream.cells_retired",
            help="cells retired after sustained absence (container departed)",
        )
        self.header: Optional[dict] = None
        self._pending: Dict[int, _PendingTick] = {}
        self._known_cells: Dict[CellKey, None] = {}  # insertion-ordered set
        self._miss_streak: Dict[CellKey, int] = {}
        self._last_value: Dict[CellKey, float] = {}
        self._last_state: Dict[str, Tuple[str, bool, bool]] = {}
        self._max_seen: Optional[int] = None
        self._last_closed: Optional[int] = None

    # -- introspection ------------------------------------------------------
    @property
    def max_seen(self) -> Optional[int]:
        """Newest data tick any record has carried so far."""
        return self._max_seen

    @property
    def last_closed(self) -> Optional[int]:
        """Most recently closed tick (None before the first closure)."""
        return self._last_closed

    def pending_ticks(self) -> List[int]:
        """Buffered, not-yet-closed ticks in order."""
        return sorted(self._pending)

    def summary(self) -> dict:
        """The ``stream.*`` delivery counters as plain ints."""
        return {
            "dropped": int(self._c_dropped.value),
            "duplicated": int(self._c_duplicated.value),
            "reordered": int(self._c_reordered.value),
            "late": int(self._c_late.value),
            "imputed": int(self._c_imputed.value),
            "ticks_closed_partial": int(self._c_partial.value),
            "gap_ticks": int(self._c_gaps.value),
            "cells_retired": int(self._c_retired.value),
        }

    # -- ingestion ----------------------------------------------------------
    def offer(self, record: dict) -> None:
        """Accept one wire record (any order, any number of times)."""
        kind = record.get("kind")
        if kind == "header":
            if self.header is None:
                self.header = dict(record)
                for container, c_kind in sorted(record.get("containers", {}).items()):
                    self._last_state.setdefault(
                        container, ("created", False, c_kind == "sensitive")
                    )
            return
        tick = record.get("tick")
        if not isinstance(tick, int):
            return  # malformed; transport noise is not worth crashing over
        if self._last_closed is not None and tick <= self._last_closed:
            self._c_late.inc()
            return
        if self._max_seen is not None and tick < self._max_seen:
            self._c_reordered.inc()
        if self._max_seen is None or tick > self._max_seen:
            self._max_seen = tick
        pending = self._pending.setdefault(tick, _PendingTick())
        host = record.get("host", "host0")
        if kind == "sample":
            container = record.get("container", "")
            for metric, value in record.get("metrics", {}).items():
                key = (host, container, metric)
                if key in pending.cells:
                    self._c_duplicated.inc()
                    continue
                pending.cells[key] = float(value)
                self._known_cells.setdefault(key, None)
        elif kind == "state":
            container = record.get("container", "")
            sensitive = bool(
                record.get(
                    "sensitive",
                    self._last_state.get(container, ("created", False, False))[2],
                )
            )
            pending.states[container] = (
                str(record.get("state", "running")),
                bool(record.get("finished", False)),
                sensitive,
            )
        elif kind == "qos":
            if pending.qos is None:
                value = record.get("value")
                threshold = record.get("threshold")
                if value is not None and threshold is not None:
                    pending.qos = (float(value), float(threshold))

    # -- closing ------------------------------------------------------------
    def due(self, force: bool = False) -> List[ClosedTick]:
        """Close every tick whose watermark expired, in order.

        With ``force=True`` everything buffered closes regardless of
        the watermark — the drain path.
        """
        if self._max_seen is None:
            return []
        horizon = self._max_seen if force else self._max_seen - self.watermark
        start = (
            self._last_closed + 1
            if self._last_closed is not None
            else (min(self._pending) if self._pending else horizon + 1)
        )
        closed: List[ClosedTick] = []
        for tick in range(start, horizon + 1):
            closed.append(self._close(tick))
            self._last_closed = tick
        return closed

    def _close(self, tick: int) -> ClosedTick:
        pending = self._pending.pop(tick, None)
        host = (self.header or {}).get("host", "host0")
        if pending is None or (not pending.cells and not pending.states):
            self._c_gaps.inc()
            usage: Dict[str, Dict[str, float]] = {}
            for cell_host, container, metric in self._known_cells:
                usage.setdefault(container, {})[metric] = float("nan")
            qos = pending.qos if pending is not None else None
            return ClosedTick(
                tick=tick,
                host=host,
                usage=usage,
                states=dict(self._last_state),
                qos=qos,
                partial=bool(self._known_cells),
                gap=True,
            )

        usage = {}
        partial = False
        retired: List[CellKey] = []
        for key in list(self._known_cells):
            cell_host, container, metric = key
            if key in pending.cells:
                value = pending.cells[key]
                self._last_value[key] = value
                self._miss_streak.pop(key, None)
            else:
                streak = self._miss_streak.get(key, 0) + 1
                if self.retire_after and streak >= self.retire_after:
                    # Sustained absence: the container has left the host
                    # (migration, removal) — stop expecting the cell
                    # instead of imputing a ghost forever.
                    del self._known_cells[key]
                    self._miss_streak.pop(key, None)
                    self._last_value.pop(key, None)
                    self._c_retired.inc()
                    retired.append(key)
                    continue
                self._miss_streak[key] = streak
                partial = True
                self._c_dropped.inc()
                if key in self._last_value:
                    value = self._last_value[key]
                    self._c_imputed.inc()
                else:
                    value = float("nan")
            usage.setdefault(container, {})[metric] = value

        states = dict(self._last_state)
        states.update(pending.states)
        if retired:
            # Drop held lifecycle state for containers with no
            # remaining expected cells — they departed with their data.
            live = {container for _, container, _ in self._known_cells}
            gone = {container for _, container, _ in retired} - live
            for container in gone:
                states.pop(container, None)
        self._last_state = dict(states)
        if partial:
            self._c_partial.inc()
        return ClosedTick(
            tick=tick,
            host=host,
            usage=usage,
            states=states,
            qos=pending.qos,
            partial=partial,
            gap=False,
        )


class PassthroughAssembler:
    """The assembler-less ablation: apply records as they arrive.

    No watermark (a tick closes the moment a newer one is seen, so
    delayed records of the old tick are lost), no deduplication
    (duplicates overwrite), no imputation (missing cells read 0.0 —
    the classic naive-consumer zero-fill that poisons the map), and no
    gap synthesis (skipped ticks never reach the controller at all).
    Interface-compatible with :class:`StreamAssembler` so the drills
    swap arms without touching the service.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.watermark = 0
        self.metrics = registry if registry is not None else MetricRegistry()
        self.header: Optional[dict] = None
        self._pending: Dict[int, _PendingTick] = {}
        self._known_cells: Dict[CellKey, None] = {}
        self._last_state: Dict[str, Tuple[str, bool, bool]] = {}
        self._max_seen: Optional[int] = None
        self._last_closed: Optional[int] = None

    @property
    def max_seen(self) -> Optional[int]:
        return self._max_seen

    @property
    def last_closed(self) -> Optional[int]:
        return self._last_closed

    def pending_ticks(self) -> List[int]:
        return sorted(self._pending)

    def summary(self) -> dict:
        return {}

    def offer(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "header":
            if self.header is None:
                self.header = dict(record)
                for container, c_kind in sorted(record.get("containers", {}).items()):
                    self._last_state.setdefault(
                        container, ("created", False, c_kind == "sensitive")
                    )
            return
        tick = record.get("tick")
        if not isinstance(tick, int):
            return
        if self._last_closed is not None and tick <= self._last_closed:
            return  # late: silently lost
        if self._max_seen is None or tick > self._max_seen:
            self._max_seen = tick
        pending = self._pending.setdefault(tick, _PendingTick())
        host = record.get("host", "host0")
        if kind == "sample":
            container = record.get("container", "")
            for metric, value in record.get("metrics", {}).items():
                key = (host, container, metric)
                pending.cells[key] = float(value)  # duplicates overwrite
                self._known_cells.setdefault(key, None)
        elif kind == "state":
            container = record.get("container", "")
            sensitive = bool(
                record.get(
                    "sensitive",
                    self._last_state.get(container, ("created", False, False))[2],
                )
            )
            pending.states[container] = (
                str(record.get("state", "running")),
                bool(record.get("finished", False)),
                sensitive,
            )
        elif kind == "qos":
            value = record.get("value")
            threshold = record.get("threshold")
            if value is not None and threshold is not None:
                pending.qos = (float(value), float(threshold))

    def due(self, force: bool = False) -> List[ClosedTick]:
        if self._max_seen is None:
            return []
        horizon = self._max_seen if force else self._max_seen - 1
        closed: List[ClosedTick] = []
        for tick in sorted(self._pending):
            if tick > horizon:
                break
            pending = self._pending.pop(tick)
            usage: Dict[str, Dict[str, float]] = {}
            for key in self._known_cells:
                cell_host, container, metric = key
                usage.setdefault(container, {})[metric] = pending.cells.get(key, 0.0)
            states = dict(self._last_state)
            states.update(pending.states)
            self._last_state = dict(states)
            closed.append(
                ClosedTick(
                    tick=tick,
                    host=(self.header or {}).get("host", "host0"),
                    usage=usage,
                    states=states,
                    qos=pending.qos,
                    partial=len(pending.cells) < len(self._known_cells),
                    gap=False,
                )
            )
            self._last_closed = tick
        return closed
