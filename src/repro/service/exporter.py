"""Expose live host state as Prometheus gauges for the scrape source.

:class:`UsageGaugeExporter` is the publishing half of the scrape
round trip: an engine middleware that mirrors each tick's snapshot
into a dedicated :class:`~repro.telemetry.registry.MetricRegistry` as
the ``<prefix>_*`` gauge families
:class:`~repro.service.stream.PrometheusScrapeSource` parses back:

=============================  =======================================
family                          meaning
=============================  =======================================
``<prefix>_tick{host}``         newest data tick in this exposition
``<prefix>_capacity{metric}``   host capacity per resource
``<prefix>_usage{...}``         per-container per-metric usage
``<prefix>_container_state``    1.0 on the current lifecycle state
``<prefix>_container_finished`` 1.0 once the hosted app finished
``<prefix>_qos{container}``     sensitive app's latest QoS value
``<prefix>_qos_threshold``      its violation threshold
=============================  =======================================

:meth:`scrape` renders the registry with
:func:`repro.telemetry.exporters.to_prometheus_text` — values use
exact round-trip formatting, so a scraped measurement equals the
snapshot's float bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.telemetry.exporters import to_prometheus_text
from repro.telemetry.registry import MetricRegistry

from repro.service.recording import qos_record

if TYPE_CHECKING:
    from repro.sim.host import Host, HostSnapshot
    from repro.workloads.base import Application

#: Lifecycle states every container's state family enumerates.
_STATES = ("created", "running", "paused", "stopped")


class UsageGaugeExporter:
    """Mirror host snapshots into scrapeable gauge families.

    Parameters
    ----------
    sensitive_app:
        Application whose QoS reports feed the ``_qos`` families;
        discovered from the host on the first tick when omitted.
    host_name / prefix:
        Labels matching what the paired
        :class:`~repro.service.stream.PrometheusScrapeSource` expects.
    """

    def __init__(
        self,
        sensitive_app: Optional["Application"] = None,
        host_name: str = "host0",
        prefix: str = "stayaway",
    ) -> None:
        self.registry = MetricRegistry()
        self.sensitive_app = sensitive_app
        self.host_name = host_name
        self.prefix = prefix
        self._capacity_done = False

    def on_tick(self, snapshot: "HostSnapshot", host: "Host") -> None:
        prefix = self.prefix
        if not self._capacity_done:
            for resource, value in host.capacity.items():
                self.registry.gauge(
                    f"{prefix}_capacity",
                    help="host capacity per resource",
                    labels={"metric": resource.value},
                ).set(value)
            if self.sensitive_app is None:
                sensitive = host.sensitive_containers()
                if sensitive:
                    self.sensitive_app = sensitive[0].app
            self._capacity_done = True

        self.registry.gauge(
            f"{prefix}_tick",
            help="newest data tick in this exposition",
            labels={"host": self.host_name},
        ).set(snapshot.tick)

        for name, usage in snapshot.usage.items():
            for resource, value in usage.items():
                self.registry.gauge(
                    f"{prefix}_usage",
                    help="per-container resource usage",
                    labels={
                        "host": self.host_name,
                        "container": name,
                        "metric": resource.value,
                    },
                ).set(value)

        for name, state in snapshot.states.items():
            container = host.containers.get(name)
            kind = (
                "sensitive"
                if container is not None and container.sensitive
                else "batch"
            )
            for candidate in _STATES:
                self.registry.gauge(
                    f"{prefix}_container_state",
                    help="1.0 on the container's current lifecycle state",
                    labels={
                        "container": name,
                        "state": candidate,
                        "container_kind": kind,
                    },
                ).set(1.0 if state.value == candidate else 0.0)
            self.registry.gauge(
                f"{prefix}_container_finished",
                help="1.0 once the hosted application finished",
                labels={"container": name},
            ).set(
                1.0
                if container is not None and container.app.finished
                else 0.0
            )

        if self.sensitive_app is not None:
            record = qos_record(snapshot.tick, self.sensitive_app, self.host_name)
            if record is not None:
                self.registry.gauge(
                    f"{prefix}_qos",
                    help="sensitive application's latest QoS value",
                    labels={"container": record["container"]},
                ).set(record["value"])
                self.registry.gauge(
                    f"{prefix}_qos_threshold",
                    help="QoS violation threshold",
                    labels={"container": record["container"]},
                ).set(record["threshold"])

    def scrape(self) -> str:
        """The current exposition text (the scrape source's callable)."""
        return to_prometheus_text(self.registry)
