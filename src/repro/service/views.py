"""Host/snapshot views over assembled stream state.

The :class:`~repro.core.controller.StayAway` controller was written
against the simulator's ``Host``/``HostSnapshot`` surface. Rather than
fork the controller for the service, this module rebuilds exactly the
slice of that surface the controller touches, backed by
:class:`~repro.service.assembler.ClosedTick` data:

* :class:`StreamApp` — the application shim (``name`` / ``finished`` /
  ``is_sensitive``); the sensitive one doubles as the controller's
  ``sensitive_app`` identity.
* :class:`ContainerView` — name, lifecycle state (the *real*
  :class:`~repro.sim.container.ContainerState` enum, so
  ``core.action``'s reconciliation comparisons hold), sensitivity and
  the hosted :class:`StreamApp`.
* :class:`HostView` — capacity, the containers dict,
  ``sensitive_containers``/``batch_containers`` and the
  ``pause_container``/``resume_container`` action surface. Actions are
  *optimistic*: the local view flips state immediately (the controller
  reasons over its intended world, exactly as the sim's instant
  signals behave) while the real command travels through the
  acknowledged actuator; the stream's own state records re-assert
  reality on every refresh, except for containers with an in-flight
  command (``pinned``), whose optimistic state wins until the command
  resolves.
* :class:`StreamQosChannel` — the QosTracker-compatible violation
  channel fed from ``qos`` wire records.

Snapshots handed to the controller are genuine
:class:`~repro.sim.host.HostSnapshot` value objects (the established
monitoring<->sim data boundary), so the collector code path is
byte-for-byte the in-process one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.monitoring.timeseries import Series

# Value types only: the service reads and fabricates the same
# snapshot/state/vector objects the monitoring boundary already
# exchanges with the simulator (baselined, like monitoring.collector).
from repro.sim.container import ContainerError, ContainerState
from repro.sim.host import HostSnapshot
from repro.sim.resources import Resource, ResourceVector

from repro.service.assembler import ClosedTick


@dataclass
class StreamApp:
    """Application shim behind a streamed container.

    The controller only ever asks an application for its ``name``,
    ``finished`` flag and (for the QoS tracker constructor it does not
    use here) ``is_sensitive`` — this is that surface, updated from
    ``state`` wire records.
    """

    name: str
    sensitive: bool = False
    finished: bool = False

    @property
    def is_sensitive(self) -> bool:
        return self.sensitive


@dataclass
class ContainerView:
    """One container as the stream describes it."""

    name: str
    app: StreamApp
    sensitive: bool = False
    state: ContainerState = ContainerState.CREATED

    @property
    def is_running(self) -> bool:
        return self.state is ContainerState.RUNNING

    @property
    def is_paused(self) -> bool:
        return self.state is ContainerState.PAUSED


@dataclass(frozen=True)
class _QosView:
    """A QoS report as streamed (mirrors ``workloads.base.QosReport``)."""

    value: float
    threshold: float

    @property
    def violated(self) -> bool:
        return self.value < self.threshold


class StreamQosChannel:
    """QosTracker-compatible violation channel fed from ``qos`` records.

    Passed to the controller as ``violation_detector=``; the service
    calls :meth:`ingest` for each closed tick that carried a QoS
    record, and the controller's ``qos.on_tick`` becomes a no-op (the
    stream, not the application object, is the reporting path).
    """

    def __init__(self, name: str = "stream") -> None:
        self.qos_series = Series(name=f"{name}:qos")
        self.violation_ticks: List[int] = []
        self._last_report: Optional[_QosView] = None

    def ingest(self, tick: int, value: float, threshold: float) -> None:
        """Record one streamed QoS report."""
        report = _QosView(value=value, threshold=threshold)
        self._last_report = report
        self.qos_series.append(tick, value)
        if report.violated:
            self.violation_ticks.append(tick)

    # -- QosTracker surface the controller consumes --------------------
    def on_tick(self, snapshot, host) -> None:  # noqa: ARG002 - interface
        """No-op: reports arrive from the stream, not the app object."""

    @property
    def last_report(self) -> Optional[_QosView]:
        return self._last_report

    @property
    def violation_now(self) -> bool:
        return self._last_report is not None and self._last_report.violated

    @property
    def violation_count(self) -> int:
        return len(self.violation_ticks)

    def violation_ratio(self) -> float:
        total = len(self.qos_series)
        if total == 0:
            return 0.0
        return len(self.violation_ticks) / total


def _capacity_from_header(capacity: Dict[str, float]) -> ResourceVector:
    values = {}
    for metric, value in capacity.items():
        try:
            values[Resource(metric)] = float(value)
        except ValueError:
            continue  # unknown metric family in the stream; ignore
    return ResourceVector.from_mapping(values)


def _state_from_wire(state: str) -> ContainerState:
    try:
        return ContainerState(state)
    except ValueError:
        return ContainerState.RUNNING


class HostView:
    """The controller-facing host, reconstructed from the stream.

    Parameters
    ----------
    header:
        The stream ``header`` record (host name, capacity, container
        kinds, sensitive container name).
    sensitive_app:
        The :class:`StreamApp` standing in for the protected
        application — the *same instance* handed to the controller as
        ``sensitive_app`` so identity-based mode classification works.
    submit:
        Callable ``submit(verb, container)`` the optimistic
        ``pause_container``/``resume_container`` calls forward to —
        the acknowledged-actuation entry point. ``None`` means local
        state only (replay against a recording needs no real actions).
    """

    def __init__(
        self,
        header: dict,
        sensitive_app: StreamApp,
        submit=None,
    ) -> None:
        self.name: str = header.get("host", "host0")
        self.capacity: ResourceVector = _capacity_from_header(
            header.get("capacity", {})
        )
        self._submit = submit
        self._sensitive_app = sensitive_app
        self._sensitive_name: str = header.get("sensitive", "")
        self._sensitive_bound = False
        self.containers: Dict[str, ContainerView] = {}
        for container, kind in sorted(header.get("containers", {}).items()):
            self._admit(container, sensitive=kind == "sensitive")

    def _admit(self, name: str, sensitive: bool) -> ContainerView:
        binds = sensitive and not self._sensitive_bound and (
            name == self._sensitive_name or not self._sensitive_name
        )
        if binds:
            self._sensitive_app.name = name
            self._sensitive_app.sensitive = True
            self._sensitive_bound = True
            app = self._sensitive_app
        else:
            app = StreamApp(name=name, sensitive=sensitive)
        view = ContainerView(name=name, app=app, sensitive=sensitive)
        self.containers[name] = view
        return view

    # -- Host surface the controller touches ----------------------------
    def container(self, name: str) -> ContainerView:
        return self.containers[name]

    def sensitive_containers(self) -> List[ContainerView]:
        return [c for c in self.containers.values() if c.sensitive]

    def batch_containers(self) -> List[ContainerView]:
        return [c for c in self.containers.values() if not c.sensitive]

    def pause_container(self, name: str) -> None:
        view = self.containers[name]
        if view.state is ContainerState.STOPPED:
            raise ContainerError(f"cannot pause stopped container {name!r}")
        already_paused = view.state is ContainerState.PAUSED
        view.state = ContainerState.PAUSED
        if self._submit is not None and not already_paused:
            self._submit("pause", name)

    def resume_container(self, name: str) -> None:
        view = self.containers[name]
        if view.state is ContainerState.STOPPED:
            raise ContainerError(f"cannot resume stopped container {name!r}")
        already_running = view.state is ContainerState.RUNNING
        view.state = ContainerState.RUNNING
        if self._submit is not None and not already_running:
            self._submit("resume", name)

    # -- stream refresh --------------------------------------------------
    def apply(
        self, closed: ClosedTick, pinned: Optional[Set[str]] = None
    ) -> HostSnapshot:
        """Fold one closed tick into the view; return its snapshot.

        ``pinned`` names containers with an in-flight actuator command:
        their locally-intended state is kept (the stream is reporting a
        world from before the command landed); everyone else's state is
        re-asserted from the stream — which is exactly how externally
        resumed containers become visible to ``ThrottleManager``'s
        reconciliation.
        """
        pinned = pinned or set()
        for name, (state, finished, sensitive) in sorted(closed.states.items()):
            view = self.containers.get(name)
            if view is None:
                view = self._admit(name, sensitive=sensitive)
            view.app.finished = bool(finished)
            if name not in pinned:
                view.state = _state_from_wire(state)

        usage: Dict[str, ResourceVector] = {}
        for name in self.containers:
            metrics = closed.usage.get(name)
            if metrics is None:
                usage[name] = ResourceVector.zero()
            else:
                usage[name] = _capacity_from_header(metrics)
        # Containers that streamed usage before any state record.
        for name, metrics in sorted(closed.usage.items()):
            if name not in usage:
                self._admit(name, sensitive=False)
                usage[name] = _capacity_from_header(metrics)

        states = {name: view.state for name, view in self.containers.items()}
        return HostSnapshot(
            tick=closed.tick,
            usage=usage,
            allocations={},
            states=states,
            swap_ratio=1.0,
        )
