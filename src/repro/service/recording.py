"""Record an in-process run as a replayable wire-record stream.

:class:`StreamRecorder` is an engine middleware: registered *before*
the controller it observes, it serializes exactly what a monitoring
agent on the host would publish — one ``header``, then per tick one
``sample`` record per container, one ``state`` record per container
and (when the sensitive application has produced a report) one
``qos`` record. The output JSONL replays through
:class:`~repro.service.stream.JsonlReplaySource` into a
:class:`~repro.service.controller_service.ControllerService`, and the
replay-determinism gate asserts the serviced controller makes the
same pause/resume decisions the in-process one did.

The helpers (:func:`header_record`, :func:`snapshot_records`,
:func:`qos_record`) are shared with the live sim-to-stream bridge in
:mod:`repro.experiments.stream_chaos`, so recorded and live streams
are bit-identical in shape.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

if TYPE_CHECKING:
    from repro.sim.host import Host, HostSnapshot
    from repro.workloads.base import Application


def header_record(host: "Host", host_name: str = "host0") -> dict:
    """The stream ``header`` for a host: capacity + container kinds."""
    return {
        "kind": "header",
        "host": host_name,
        "capacity": {
            resource.value: value for resource, value in host.capacity.items()
        },
        "containers": {
            name: ("sensitive" if container.sensitive else "batch")
            for name, container in sorted(host.containers.items())
        },
        "sensitive": next(
            (c.name for c in host.sensitive_containers()), ""
        ),
    }


def snapshot_records(
    snapshot: "HostSnapshot", host: "Host", host_name: str = "host0"
) -> List[dict]:
    """One tick's ``sample`` + ``state`` records from a live snapshot."""
    records: List[dict] = []
    for name in sorted(snapshot.usage):
        usage = snapshot.usage[name]
        records.append(
            {
                "kind": "sample",
                "tick": snapshot.tick,
                "host": host_name,
                "container": name,
                "metrics": {
                    resource.value: value for resource, value in usage.items()
                },
            }
        )
    for name in sorted(snapshot.states):
        state = snapshot.states[name]
        container = host.containers.get(name)
        records.append(
            {
                "kind": "state",
                "tick": snapshot.tick,
                "host": host_name,
                "container": name,
                "state": state.value,
                "finished": bool(
                    container is not None and container.app.finished
                ),
                "sensitive": bool(container is not None and container.sensitive),
            }
        )
    return records


def qos_record(
    tick: int, app: "Application", host_name: str = "host0"
) -> Optional[dict]:
    """The tick's ``qos`` record, or None before the app's first report."""
    report = app.qos_report()
    if report is None:
        return None
    return {
        "kind": "qos",
        "tick": tick,
        "host": host_name,
        "container": app.name,
        "value": float(report.value),
        "threshold": float(report.threshold),
    }


class StreamRecorder:
    """Middleware that captures a run as wire records.

    Parameters
    ----------
    sensitive_app:
        The application whose QoS reports become ``qos`` records;
        discovered from the host's sensitive containers on the first
        tick when omitted.
    host_name:
        Host label stamped on every record.
    """

    def __init__(
        self,
        sensitive_app: Optional["Application"] = None,
        host_name: str = "host0",
    ) -> None:
        self.host_name = host_name
        self.sensitive_app = sensitive_app
        self.records: List[dict] = []
        self._header_done = False

    def on_tick(self, snapshot: "HostSnapshot", host: "Host") -> None:
        if not self._header_done:
            self.records.append(header_record(host, self.host_name))
            if self.sensitive_app is None:
                sensitive = host.sensitive_containers()
                if sensitive:
                    self.sensitive_app = sensitive[0].app
            self._header_done = True
        self.records.extend(snapshot_records(snapshot, host, self.host_name))
        if self.sensitive_app is not None:
            record = qos_record(snapshot.tick, self.sensitive_app, self.host_name)
            if record is not None:
                self.records.append(record)

    def write(self, path: Union[str, Path]) -> Path:
        """Persist the captured stream as JSONL."""
        return write_stream_jsonl(path, self.records)


def write_stream_jsonl(
    path: Union[str, Path], records: List[dict]
) -> Path:
    """Write wire records as one-JSON-object-per-line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return path


def load_stream_jsonl(path: Union[str, Path]) -> List[dict]:
    """Read a stream-JSONL file back into wire records."""
    records: List[dict] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
