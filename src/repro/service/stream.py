"""Metric stream sources and the wire-record format.

The service's ingestion boundary is a list of plain JSON-safe dicts
("wire records") per poll — deliberately schema-light so the chaos
layer in :mod:`repro.sim.faults` can drop/reorder/duplicate/stall them
without importing this package. Record kinds:

``header``
    Once per stream (first, in a healthy stream): host name, capacity
    by metric, container kinds, and the sensitive container name.
``sample``
    One container's metric readings for one tick:
    ``{"kind": "sample", "tick": t, "host": h, "container": c,
    "metrics": {"cpu": ..., ...}}``. The assembler flattens these into
    per-``(tick, host, container, metric)`` cells — the deduplication
    key.
``state``
    Container lifecycle state (``running``/``paused``/``stopped``/
    ``created``) plus the application's ``finished`` flag for one tick.
``qos``
    The sensitive application's QoS report for one tick (``value`` +
    ``threshold``); absent on ticks where the app reported nothing.

Two production sources are provided: :class:`JsonlReplaySource` reads
a recorded run back (see :mod:`repro.service.recording`), and
:class:`PrometheusScrapeSource` polls a scrape callable and parses the
:func:`repro.telemetry.exporters.to_prometheus_text` exposition format
back into samples (:func:`parse_prometheus_text` is the round-trip
contract the exporter is tested against). :class:`QueueSource` is the
in-process bridge used by the live drills and the fleet stream cells.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union


class StreamError(RuntimeError):
    """A source failed to produce records (connection/parse trouble).

    The :class:`~repro.service.controller_service.ControllerService`
    treats this as a transient source outage: it backs off with
    exponential delay + jitter and calls :meth:`StreamSource.reconnect`
    before polling again.
    """


class StreamSource:
    """Base class for pollable record sources."""

    def poll(self) -> List[dict]:
        """Return the next batch of wire records (empty when idle)."""
        raise NotImplementedError

    def reconnect(self) -> None:
        """Re-establish the transport after a :class:`StreamError`."""

    @property
    def exhausted(self) -> bool:
        """True when the source will never produce records again."""
        return False


class QueueSource(StreamSource):
    """An in-process FIFO of wire records.

    Producers (the live-sim bridge, fleet stream cells, tests) call
    :meth:`push`; each :meth:`poll` drains everything pushed since the
    previous poll. ``fail_polls`` makes the next N polls raise
    :class:`StreamError` — the deterministic hook the reconnect/backoff
    tests and drills use.
    """

    def __init__(self) -> None:
        self._queue: List[dict] = []
        self._closed = False
        self.fail_polls = 0
        self.reconnects = 0

    def push(self, records: Iterable[dict]) -> None:
        """Enqueue records for the next poll."""
        self._queue.extend(records)

    def close(self) -> None:
        """Mark the source exhausted once the queue drains."""
        self._closed = True

    def poll(self) -> List[dict]:
        if self.fail_polls > 0:
            self.fail_polls -= 1
            raise StreamError("injected source failure")
        batch, self._queue = self._queue, []
        return batch

    def reconnect(self) -> None:
        self.reconnects += 1

    @property
    def exhausted(self) -> bool:
        return self._closed and not self._queue and self.fail_polls == 0


class JsonlReplaySource(StreamSource):
    """Replay a recorded run from stream-JSONL, one tick batch per poll.

    Parameters
    ----------
    path:
        File written by
        :func:`repro.service.recording.write_stream_jsonl` (or any
        JSONL of wire records).
    ticks_per_poll:
        Number of distinct data ticks delivered per :meth:`poll` —
        replay runs as fast as the consumer pulls; this only controls
        batch granularity (and therefore how the watermark advances).
    """

    def __init__(self, path: Union[str, Path], ticks_per_poll: int = 1) -> None:
        if ticks_per_poll < 1:
            raise ValueError("ticks_per_poll must be >= 1")
        self.path = Path(path)
        self.ticks_per_poll = ticks_per_poll
        self._records = self._load()
        self._cursor = 0

    def _load(self) -> List[dict]:
        records: List[dict] = []
        try:
            with self.path.open(encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise StreamError(
                            f"{self.path}:{line_number}: invalid JSON ({exc})"
                        ) from exc
                    if not isinstance(record, dict) or "kind" not in record:
                        raise StreamError(
                            f"{self.path}:{line_number}: not a wire record"
                        )
                    records.append(record)
        except OSError as exc:
            raise StreamError(f"cannot read {self.path}: {exc}") from exc
        return records

    def poll(self) -> List[dict]:
        if self._cursor >= len(self._records):
            return []
        batch: List[dict] = []
        ticks_seen: set = set()
        while self._cursor < len(self._records):
            record = self._records[self._cursor]
            tick = record.get("tick")
            if tick is not None:
                ticks_seen.add(tick)
                if len(ticks_seen) > self.ticks_per_poll:
                    break
            batch.append(record)
            self._cursor += 1
        return batch

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._records)


# -- Prometheus text exposition parsing ----------------------------------------

#: ``name{labels} value [timestamp]`` — the exposition sample line.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclass(frozen=True)
class PromSample:
    """One parsed exposition sample: name, sorted labels, value."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float

    def label(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Value of one label (``default`` when absent)."""
        for k, v in self.labels:
            if k == key:
                return v
        return default


def _unescape_label(value: str) -> str:
    return value.replace(r"\\", "\\").replace(r"\n", "\n").replace(r"\"", '"')


def parse_prometheus_text(text: str) -> List[PromSample]:
    """Parse the Prometheus text exposition format into samples.

    The inverse of :func:`repro.telemetry.exporters.to_prometheus_text`
    for every sample line it emits (``# HELP``/``# TYPE`` comments are
    skipped); metric names, label sets and values round-trip exactly —
    the contract ``tests/unit/test_stream_sources.py`` pins down.
    Raises :class:`StreamError` on malformed sample lines.
    """
    samples: List[PromSample] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise StreamError(f"line {line_number}: not an exposition sample: {raw!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (key, _unescape_label(value))
                for key, value in _LABEL_PAIR.findall(labels_text)
            )
        )
        value_text = match.group("value")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise StreamError(
                f"line {line_number}: invalid sample value {value_text!r}"
            ) from exc
        samples.append(PromSample(name=match.group("name"), labels=labels, value=value))
    return samples


class PrometheusScrapeSource(StreamSource):
    """Scrape-and-parse source over the usage-gauge exposition.

    Each poll calls ``scrape`` (a callable returning exposition text —
    typically reading an HTTP endpoint or a textfile the exporter
    writes), parses it with :func:`parse_prometheus_text` and converts
    the :class:`~repro.service.exporter.UsageGaugeExporter` families
    back into wire records:

    * ``<prefix>_usage{host=,container=,metric=}`` → ``sample`` cells,
    * ``<prefix>_container_state{...}`` / ``_finished`` → ``state``,
    * ``<prefix>_qos{...}`` / ``_qos_threshold`` → ``qos``,
    * ``<prefix>_capacity{metric=}`` → the stream ``header``,
    * ``<prefix>_tick`` → the data tick every record of this scrape
      carries.

    A scrape is one instant's view: scraping slower than the data tick
    advances simply yields gapped ticks, which the assembler imputes —
    the same partial-data semantics as any other source. Scrape
    failures (the callable raising ``OSError``/``ValueError``) surface
    as :class:`StreamError` for the reconnect path.
    """

    def __init__(self, scrape: Callable[[], str], prefix: str = "stayaway") -> None:
        self.scrape = scrape
        self.prefix = prefix
        self._header_sent = False
        self._last_tick: Optional[int] = None

    def poll(self) -> List[dict]:
        try:
            text = self.scrape()
        except (OSError, ValueError) as exc:
            raise StreamError(f"scrape failed: {exc}") from exc
        samples = parse_prometheus_text(text)
        by_name: Dict[str, List[PromSample]] = {}
        for sample in samples:
            by_name.setdefault(sample.name, []).append(sample)

        tick_samples = by_name.get(f"{self.prefix}_tick")
        if not tick_samples:
            return []
        tick = int(tick_samples[0].value)
        if self._last_tick is not None and tick <= self._last_tick:
            return []  # same scrape instant again; nothing new
        self._last_tick = tick

        records: List[dict] = []
        host = tick_samples[0].label("host", "host0")
        if not self._header_sent:
            records.append(self._header(host, by_name))
            self._header_sent = True

        cells: Dict[str, Dict[str, float]] = {}
        for sample in by_name.get(f"{self.prefix}_usage", ()):
            container = sample.label("container")
            metric = sample.label("metric")
            if container is None or metric is None:
                continue
            cells.setdefault(container, {})[metric] = sample.value
        for container, metrics in sorted(cells.items()):
            records.append(
                {
                    "kind": "sample",
                    "tick": tick,
                    "host": host,
                    "container": container,
                    "metrics": metrics,
                }
            )

        states: Dict[str, dict] = {}
        for sample in by_name.get(f"{self.prefix}_container_state", ()):
            container = sample.label("container")
            state = sample.label("state")
            if container is None or state is None or sample.value != 1.0:
                continue
            states.setdefault(container, {})["state"] = state
        for sample in by_name.get(f"{self.prefix}_container_finished", ()):
            container = sample.label("container")
            if container is None:
                continue
            states.setdefault(container, {})["finished"] = bool(sample.value)
        for container, info in sorted(states.items()):
            records.append(
                {
                    "kind": "state",
                    "tick": tick,
                    "host": host,
                    "container": container,
                    "state": info.get("state", "running"),
                    "finished": info.get("finished", False),
                }
            )

        qos_samples = by_name.get(f"{self.prefix}_qos", ())
        threshold_samples = by_name.get(f"{self.prefix}_qos_threshold", ())
        if qos_samples and threshold_samples:
            records.append(
                {
                    "kind": "qos",
                    "tick": tick,
                    "host": host,
                    "container": qos_samples[0].label("container", ""),
                    "value": qos_samples[0].value,
                    "threshold": threshold_samples[0].value,
                }
            )
        return records

    def _header(self, host: str, by_name: Dict[str, List[PromSample]]) -> dict:
        capacity = {
            sample.label("metric"): sample.value
            for sample in by_name.get(f"{self.prefix}_capacity", ())
            if sample.label("metric") is not None
        }
        containers: Dict[str, str] = {}
        for sample in by_name.get(f"{self.prefix}_container_state", ()):
            container = sample.label("container")
            kind = sample.label("container_kind")
            if container is not None and sample.value == 1.0:
                containers[container] = kind or "batch"
        sensitive = sorted(
            name for name, kind in containers.items() if kind == "sensitive"
        )
        return {
            "kind": "header",
            "host": host,
            "capacity": capacity,
            "containers": containers,
            "sensitive": sensitive[0] if sensitive else "",
        }
