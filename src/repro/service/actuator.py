"""Pluggable, acknowledged actuation.

In-process, a pause is a Python call that cannot be lost. A service's
pause is a message to a remote agent that absolutely can be: delivered
but unacknowledged, dropped outright, or executed twice. This module
makes every pause/resume an :class:`ActuatorCommand` with an explicit
acknowledgement contract:

* the backend's :meth:`Actuator.deliver` returns ``True`` (delivered
  and acked), ``None`` (delivered, ack pending/lost) or ``False``
  (delivery failed outright);
* the :class:`AckTracker` waits ``actuator_ack_timeout`` ticks for an
  ack, then redelivers with doubling backoff up to
  ``actuator_max_retries`` times;
* a command that exhausts its retries is **dead-lettered**: recorded
  in :attr:`AckTracker.dead_letters`, counted, and surfaced through
  the controller's event log as an ``ACTION_ESCALATION`` — the same
  operator-attention path :mod:`repro.core.action` uses for repair
  budgets, so one pager covers both.

Backends: :class:`SimHostActuator` applies commands to a live
simulator host (the drills' closed loop), :class:`RecordingActuator`
just logs them (dry runs, replay), :class:`NullActuator` acks
everything instantly (unit tests / pure-decision replay).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.telemetry.registry import MetricRegistry


class CommandStatus(enum.Enum):
    """Lifecycle of one actuation command."""

    PENDING = "pending"
    ACKED = "acked"
    DEAD_LETTERED = "dead-lettered"


@dataclass
class ActuatorCommand:
    """One pause/resume order and its acknowledgement bookkeeping."""

    command_id: int
    verb: str  # "pause" | "resume"
    container: str
    issued_tick: int
    status: CommandStatus = CommandStatus.PENDING
    attempts: int = 0
    next_attempt_tick: int = 0
    resolved_tick: Optional[int] = None

    @property
    def pending(self) -> bool:
        return self.status is CommandStatus.PENDING


class Actuator:
    """Backend interface: deliver one command attempt.

    Returns ``True`` when the command landed *and* was acknowledged,
    ``None`` when it was sent but no ack arrived (the tracker will
    retry), ``False`` when delivery failed outright (also retried —
    from the tracker's perspective an unacked send and a failed send
    differ only in the telemetry label).
    """

    name = "actuator"

    def deliver(self, command: ActuatorCommand, tick: int) -> Optional[bool]:
        raise NotImplementedError


class NullActuator(Actuator):
    """Acks everything instantly; actions affect nothing."""

    name = "null"

    def __init__(self) -> None:
        self.delivered: List[ActuatorCommand] = []

    def deliver(self, command: ActuatorCommand, tick: int) -> Optional[bool]:
        self.delivered.append(command)
        return True


@dataclass(frozen=True)
class RecordedAction:
    """One delivered command, as the recording backend logs it."""

    tick: int
    verb: str
    container: str
    command_id: int
    attempt: int


class RecordingActuator(Actuator):
    """Logs every delivery and acks it; the dry-run backend."""

    name = "recording"

    def __init__(self) -> None:
        self.actions: List[RecordedAction] = []

    def deliver(self, command: ActuatorCommand, tick: int) -> Optional[bool]:
        self.actions.append(
            RecordedAction(
                tick=tick,
                verb=command.verb,
                container=command.container,
                command_id=command.command_id,
                attempt=command.attempts,
            )
        )
        return True


class SimHostActuator(Actuator):
    """Applies commands to a live simulator host.

    The ``host`` is duck-typed (``pause_container``/``resume_container``
    /``containers``) — in practice a :class:`~repro.sim.host.Host`. An
    optional ``ack_filter(command, tick) -> bool`` decides whether the
    ack makes it back (the :class:`~repro.sim.faults.ActuatorAckDropper`
    chaos hook): when it returns False the action still *happened* on
    the host but the tracker sees no ack — the double-delivery case the
    idempotent pause/resume semantics absorb.
    """

    name = "sim"

    def __init__(
        self,
        host,
        ack_filter: Optional[Callable[[ActuatorCommand, int], bool]] = None,
    ) -> None:
        self.host = host
        self.ack_filter = ack_filter
        self.applied: List[RecordedAction] = []

    def deliver(self, command: ActuatorCommand, tick: int) -> Optional[bool]:
        container = self.host.containers.get(command.container)
        if container is None:
            return False
        try:
            if command.verb == "pause":
                if not container.is_paused:
                    self.host.pause_container(command.container)
            else:
                if container.is_paused:
                    self.host.resume_container(command.container)
        except Exception:  # sacheck: disable=SA108 -- actuation boundary: a failed signal is a retryable delivery failure, not a service crash
            return False
        self.applied.append(
            RecordedAction(
                tick=tick,
                verb=command.verb,
                container=command.container,
                command_id=command.command_id,
                attempt=command.attempts,
            )
        )
        if self.ack_filter is not None and not self.ack_filter(command, tick):
            return None  # action landed; ack lost in transit
        return True


class AckTracker:
    """Drives commands through deliver -> ack -> (retry) -> dead-letter.

    Parameters
    ----------
    actuator:
        The delivery backend.
    ack_timeout:
        Ticks to wait for an ack before redelivering.
    max_retries:
        Redelivery budget; attempt ``max_retries + 1`` failing
        dead-letters the command.
    backoff:
        Base backoff in ticks; retry *n* waits ``backoff * 2**(n-1)``.
    registry:
        Registry for the ``actuator.*`` counters.
    on_dead_letter:
        Callback ``(command, tick)`` fired once per dead-lettered
        command — the service uses it to raise the
        ``ACTION_ESCALATION`` event.
    """

    def __init__(
        self,
        actuator: Actuator,
        ack_timeout: int = 2,
        max_retries: int = 3,
        backoff: int = 1,
        registry: Optional[MetricRegistry] = None,
        on_dead_letter: Optional[Callable[[ActuatorCommand, int], None]] = None,
    ) -> None:
        if ack_timeout < 1:
            raise ValueError("ack_timeout must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff < 1:
            raise ValueError("backoff must be >= 1")
        self.actuator = actuator
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.on_dead_letter = on_dead_letter
        self.metrics = registry if registry is not None else MetricRegistry()
        self._c_submitted = self.metrics.counter(
            "actuator.submitted", help="pause/resume commands submitted"
        )
        self._c_acks = self.metrics.counter(
            "actuator.acks", help="commands acknowledged by the backend"
        )
        self._c_retries = self.metrics.counter(
            "actuator.retries", help="redelivery attempts after missing acks"
        )
        self._c_dead = self.metrics.counter(
            "actuator.dead_lettered", help="commands whose retry budget ran out"
        )
        self._next_id = 0
        self.commands: List[ActuatorCommand] = []
        self.dead_letters: List[ActuatorCommand] = []

    # -- introspection ----------------------------------------------------
    def pending(self) -> List[ActuatorCommand]:
        """Commands still awaiting an ack."""
        return [c for c in self.commands if c.pending]

    def pending_containers(self) -> Dict[str, str]:
        """``{container: verb}`` of the newest in-flight command each."""
        out: Dict[str, str] = {}
        for command in self.commands:
            if command.pending:
                out[command.container] = command.verb
        return out

    def summary(self) -> dict:
        return {
            "submitted": int(self._c_submitted.value),
            "acks": int(self._c_acks.value),
            "retries": int(self._c_retries.value),
            "dead_lettered": int(self._c_dead.value),
            "pending": len(self.pending()),
        }

    # -- lifecycle ---------------------------------------------------------
    def submit(self, tick: int, verb: str, container: str) -> ActuatorCommand:
        """Issue a command and attempt first delivery immediately.

        A newer command for the same container supersedes any pending
        older one (a resume overtaking an unacked pause must win — the
        controller's latest intent is the only one worth retrying).
        """
        if verb not in ("pause", "resume"):
            raise ValueError(f"unknown actuator verb: {verb!r}")
        for old in self.commands:
            if old.pending and old.container == container:
                old.status = CommandStatus.ACKED  # superseded; stop retrying
                old.resolved_tick = tick
        command = ActuatorCommand(
            command_id=self._next_id,
            verb=verb,
            container=container,
            issued_tick=tick,
        )
        self._next_id += 1
        self.commands.append(command)
        self._c_submitted.inc()
        self._attempt(command, tick)
        return command

    def _attempt(self, command: ActuatorCommand, tick: int) -> None:
        command.attempts += 1
        acked = self.actuator.deliver(command, tick)
        if acked is True:
            command.status = CommandStatus.ACKED
            command.resolved_tick = tick
            self._c_acks.inc()
            return
        # Unacked (None) or failed (False): schedule the next attempt
        # after the ack window plus exponential backoff.
        wait = self.ack_timeout + self.backoff * (2 ** (command.attempts - 1))
        command.next_attempt_tick = tick + wait

    def step(self, tick: int) -> None:
        """Retry overdue commands; dead-letter exhausted ones."""
        for command in self.commands:
            if not command.pending or tick < command.next_attempt_tick:
                continue
            if command.attempts > self.max_retries:
                self._dead_letter(command, tick)
                continue
            self._c_retries.inc()
            self._attempt(command, tick)
            if command.pending and command.attempts > self.max_retries:
                # Last permitted attempt also went unacked; don't keep
                # the command in limbo for another full window.
                command.next_attempt_tick = tick + self.ack_timeout

    def drain(self, tick: int) -> None:
        """Resolve every in-flight command before shutdown.

        Pending commands get one final delivery attempt; anything
        still unacked is dead-lettered so the service stops with zero
        unreconciled commands — every order is either acked or on the
        dead-letter log.
        """
        for command in self.pending():
            self._c_retries.inc()
            self._attempt(command, tick)
            if command.pending:
                self._dead_letter(command, tick)

    def _dead_letter(self, command: ActuatorCommand, tick: int) -> None:
        command.status = CommandStatus.DEAD_LETTERED
        command.resolved_tick = tick
        self.dead_letters.append(command)
        self._c_dead.inc()
        if self.on_dead_letter is not None:
            self.on_dead_letter(command, tick)
