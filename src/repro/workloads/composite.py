"""Composite workloads: sequences and intensity modulation.

Real batch pipelines chain heterogeneous stages (the paper's batch
applications are single programs, but a production queue runs one job
after another), and batch demand is sometimes itself load-driven. Two
combinators cover both:

* :class:`SequenceApplication` — run a list of applications back to
  back as one container workload (a job queue);
* :class:`ModulatedApplication` — scale another application's demand by
  a workload trace (a load-driven batch service).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.clock import SimulationClock
from repro.sim.contention import Allocation
from repro.sim.resources import ResourceVector
from repro.workloads.base import Application, ApplicationKind
from repro.workloads.traces import WorkloadTrace


class SequenceApplication(Application):
    """Run applications one after another inside one container.

    The sequence finishes when its last stage finishes. Stages must be
    batch applications with finite work (endless stages would starve
    their successors).
    """

    def __init__(
        self,
        stages: Sequence[Application],
        name: str = "job-queue",
        seed: int = 0,
    ) -> None:
        if not stages:
            raise ValueError("a sequence needs at least one stage")
        for stage in stages:
            if stage.is_sensitive:
                raise ValueError(
                    f"sequence stages must be batch apps, got sensitive "
                    f"{stage.name!r}"
                )
        super().__init__(
            name=name, kind=ApplicationKind.BATCH, seed=seed, noise_std=0.0
        )
        self.stages: List[Application] = list(stages)
        self._current = 0

    @property
    def current_stage(self) -> Optional[Application]:
        """The stage currently executing (None when all finished)."""
        while self._current < len(self.stages) and self.stages[self._current].finished:
            self._current += 1
        if self._current >= len(self.stages):
            return None
        return self.stages[self._current]

    @property
    def stage_index(self) -> int:
        """Index of the active stage (== len(stages) when done)."""
        self.current_stage  # advance past finished stages
        return self._current

    def demand(self, clock: SimulationClock) -> ResourceVector:
        stage = self.current_stage
        if stage is None:
            return ResourceVector.zero()
        return stage.demand(clock)

    def _on_advance(self, allocation: Allocation, clock: SimulationClock) -> None:
        stage = self.current_stage
        if stage is None:
            self._finish()
            return
        stage.advance(allocation, clock)
        if self.current_stage is None:
            self._finish()


class ModulatedApplication(Application):
    """Scale a wrapped application's demand by a workload trace.

    Progress semantics stay those of the wrapped app; only the demand
    amplitude is modulated, so a trough both lowers the load *and*
    slows the wrapped job's phase progression proportionally (the
    allocation's progress already reflects whatever the host granted).
    """

    def __init__(
        self,
        inner: Application,
        trace: WorkloadTrace,
        name: Optional[str] = None,
        floor: float = 0.0,
    ) -> None:
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        super().__init__(
            name=name if name is not None else f"modulated-{inner.name}",
            kind=inner.kind,
            seed=0,
            noise_std=0.0,
        )
        self.inner = inner
        self.trace = trace
        self.floor = floor

    def current_factor(self, clock: SimulationClock) -> float:
        """The demand multiplier at the current time."""
        return max(self.floor, self.trace.intensity(clock.now))

    def demand(self, clock: SimulationClock) -> ResourceVector:
        if self.inner.finished:
            return ResourceVector.zero()
        return self.inner.demand(clock).scaled(self.current_factor(clock))

    def _on_advance(self, allocation: Allocation, clock: SimulationClock) -> None:
        self.inner.advance(allocation, clock)
        if self.inner.finished:
            self._finish()

    def qos_report(self):
        return self.inner.qos_report()
