"""Client workload traces.

The paper motivates Stay-Away with the diurnal Wikipedia read workload
(Fig. 1, trace [5]): clear daily peaks and valleys, meaning a sensitive
service leaves large resource headroom during off-peak hours. The
original AWS-hosted trace is no longer published; we embed a 24-point
hourly shape matched to the well-known Wikipedia daily pattern (trough
around 06:00 UTC, peak in the evening) and synthesize multi-day traces
from it with per-sample noise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

#: Relative hourly read intensity for one day, normalized to peak = 1.0.
#: Shape: overnight trough (~45% of peak), morning ramp, evening peak —
#: the classic Wikipedia/diurnal web-traffic curve of the paper's Fig. 1.
WIKIPEDIA_HOURLY_SHAPE: List[float] = [
    0.62, 0.56, 0.51, 0.47, 0.45, 0.46,
    0.50, 0.57, 0.66, 0.74, 0.80, 0.84,
    0.87, 0.89, 0.90, 0.92, 0.94, 0.96,
    0.98, 1.00, 0.99, 0.93, 0.83, 0.71,
]


class WorkloadTrace:
    """A time-indexed client-load intensity in ``[0, 1]``-ish units.

    Samples are interpreted as intensities at uniformly spaced times
    ``sample_seconds`` apart; :meth:`intensity` linearly interpolates
    between samples and (optionally) wraps around, so a one-day trace
    can drive an arbitrarily long run.
    """

    def __init__(
        self,
        samples: Sequence[float],
        sample_seconds: float = 3600.0,
        wrap: bool = True,
    ) -> None:
        if len(samples) < 1:
            raise ValueError("a trace needs at least one sample")
        if sample_seconds <= 0:
            raise ValueError("sample_seconds must be positive")
        self.samples = np.asarray(samples, dtype=float)
        if np.any(self.samples < 0):
            raise ValueError("trace intensities must be non-negative")
        self.sample_seconds = float(sample_seconds)
        self.wrap = wrap

    @property
    def duration_seconds(self) -> float:
        """Length of one pass over the trace."""
        return len(self.samples) * self.sample_seconds

    def intensity(self, now_seconds: float) -> float:
        """Interpolated intensity at an absolute simulated time."""
        if now_seconds < 0:
            raise ValueError(f"time must be non-negative, got {now_seconds}")
        position = now_seconds / self.sample_seconds
        n = len(self.samples)
        if self.wrap:
            position = position % n
        else:
            position = min(position, n - 1)
        lower = int(np.floor(position))
        upper = (lower + 1) % n if self.wrap else min(lower + 1, n - 1)
        fraction = position - lower
        return float(
            (1.0 - fraction) * self.samples[lower % n] + fraction * self.samples[upper]
        )

    # -- constructors ----------------------------------------------------
    @classmethod
    def constant(cls, level: float = 1.0) -> "WorkloadTrace":
        """A flat trace (no workload variation)."""
        return cls([level, level], sample_seconds=3600.0)

    @classmethod
    def step(
        cls,
        levels: Sequence[float],
        step_seconds: float,
        wrap: bool = False,
    ) -> "WorkloadTrace":
        """Piecewise levels, each held for ``step_seconds``.

        Used to reproduce the paper's Fig. 13 timelines where workload
        intensity is varied in controlled steps.
        """
        expanded: List[float] = []
        for level in levels:
            expanded.extend([level, level])
        return cls(expanded, sample_seconds=step_seconds / 2.0, wrap=wrap)


def diurnal_trace(
    days: int = 4,
    samples_per_day: int = 24,
    base: float = 0.0,
    peak: float = 1.0,
    noise: float = 0.03,
    seed: Optional[int] = 7,
    shape: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Synthesize a multi-day diurnal intensity array.

    Parameters
    ----------
    days / samples_per_day:
        Output length is ``days * samples_per_day``.
    base / peak:
        The shape (normalized to max 1.0) is mapped to
        ``base + (peak - base) * shape``.
    noise:
        Relative Gaussian noise per sample (0 disables).
    shape:
        Optional custom daily shape; defaults to
        :data:`WIKIPEDIA_HOURLY_SHAPE` resampled to ``samples_per_day``.
    """
    if days < 1:
        raise ValueError("days must be >= 1")
    daily = np.asarray(shape if shape is not None else WIKIPEDIA_HOURLY_SHAPE, float)
    daily = daily / daily.max()
    if samples_per_day != len(daily):
        positions = np.linspace(0, len(daily), samples_per_day, endpoint=False)
        daily = np.interp(positions, np.arange(len(daily) + 1), np.append(daily, daily[0]))
    series = np.tile(daily, days)
    series = base + (peak - base) * series
    if noise > 0:
        rng = np.random.default_rng(seed)
        series = series * rng.normal(1.0, noise, size=series.shape)
    return np.clip(series, 0.0, None)


def wikipedia_trace(
    days: int = 4,
    sample_seconds: float = 3600.0,
    base: float = 0.35,
    peak: float = 1.0,
    noise: float = 0.03,
    seed: Optional[int] = 7,
) -> WorkloadTrace:
    """The paper's Fig. 1 workload as a :class:`WorkloadTrace`.

    Intensity is normalized so the daily peak is ``peak`` and the
    overnight trough lands near ``base`` (the Wikipedia trace's
    trough/peak ratio is roughly 0.45).
    """
    samples = diurnal_trace(
        days=days, samples_per_day=24, base=base, peak=peak, noise=noise, seed=seed
    )
    return WorkloadTrace(samples, sample_seconds=sample_seconds, wrap=True)
