"""CloudSuite Twitter influence ranking stand-in (batch).

The paper uses "Twitter influence ranking from the Cloud Suite
benchmark" as the phase-rich batch application: it "experiences a mix
of both CPU and memory intensive phases, and is throttled only during
its memory intensive phase" when co-located with a memory-sensitive
service (§7.2). We model it as a cyclic two-phase job:

* a **CPU phase** (graph scoring): compute-bound, modest footprint;
* a **memory phase** (adjacency scan): large resident set and heavy
  memory-bus traffic — the phase that can force the host to swap.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.resources import ResourceVector
from repro.workloads.base import PhasedApplication
from repro.workloads.phases import Phase, PhaseSchedule


class TwitterAnalysis(PhasedApplication):
    """CloudSuite Twitter-Analysis model.

    Parameters
    ----------
    cpu_phase_ticks / memory_phase_ticks:
        Work-tick lengths of the two alternating phases.
    total_work:
        Work ticks to completion; ``None`` cycles until stopped.
    """

    def __init__(
        self,
        name: str = "twitter-analysis",
        cpu_phase_ticks: float = 40.0,
        memory_phase_ticks: float = 25.0,
        total_work: Optional[float] = 2000.0,
        cpu_phase_cpu: float = 2.2,
        memory_phase_memory: float = 4200.0,
        seed: int = 29,
        noise_std: float = 0.03,
    ) -> None:
        cpu_phase = Phase(
            name="cpu",
            duration=cpu_phase_ticks,
            demand=ResourceVector(
                cpu=cpu_phase_cpu,
                memory=900.0,
                memory_bw=400.0,
                disk_io=3.0,
                network=5.0,
            ),
        )
        memory_phase = Phase(
            name="memory",
            duration=memory_phase_ticks,
            demand=ResourceVector(
                cpu=0.5,
                memory=memory_phase_memory,
                memory_bw=2800.0,
                disk_io=12.0,
                network=5.0,
            ),
        )
        schedule = PhaseSchedule([cpu_phase, memory_phase], cyclic=True)
        super().__init__(
            name=name,
            schedule=schedule,
            total_work=total_work,
            seed=seed,
            noise_std=noise_std,
        )
