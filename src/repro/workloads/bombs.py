"""Isolation-benchmark stressors: CPUBomb and MemoryBomb.

CPUBomb comes from the isolation benchmark suite the paper cites
(Matthews et al. [21]): spin loops saturating every core, no phase
changes ever — the paper's worst-case co-tenant ("it is impossible to
execute both VLC streaming and CPUBomb without violating the QoS",
§7.2).

MemoryBomb is the paper's custom synthetic: it "generates stress on
the memory subsystem by allocating large chunks of memory and
occasionally reading the allocated content" (§7.1). We model the
allocation ramp and the periodic read sweeps (memory-bandwidth spikes).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import SimulationClock
from repro.sim.resources import ResourceVector
from repro.workloads.base import Application, ApplicationKind, PhasedApplication
from repro.workloads.phases import Phase, PhaseSchedule


class CpuBomb(PhasedApplication):
    """Spin loops on every core; constant demand, no phases."""

    def __init__(
        self,
        name: str = "cpubomb",
        threads: float = 4.0,
        total_work: Optional[float] = None,
        seed: int = 31,
        noise_std: float = 0.01,
    ) -> None:
        demand = ResourceVector(
            cpu=threads, memory=64.0, memory_bw=100.0, disk_io=0.0, network=0.0
        )
        schedule = PhaseSchedule.single("spin", demand)
        super().__init__(
            name=name,
            schedule=schedule,
            total_work=total_work,
            seed=seed,
            noise_std=noise_std,
        )


class MemoryBomb(Application):
    """Allocate large chunks, occasionally sweep-read them.

    Parameters
    ----------
    target_mb:
        Resident set the bomb ramps up to.
    ramp_ticks:
        Work ticks to reach the target allocation.
    sweep_period / sweep_ticks:
        Every ``sweep_period`` work ticks the bomb spends
        ``sweep_ticks`` reading its allocation, spiking memory-bus and
        keeping the pages hot.
    """

    def __init__(
        self,
        name: str = "memorybomb",
        target_mb: float = 6000.0,
        ramp_ticks: float = 60.0,
        sweep_period: float = 30.0,
        sweep_ticks: float = 8.0,
        sweep_bandwidth: float = 5000.0,
        total_work: Optional[float] = None,
        seed: int = 37,
        noise_std: float = 0.02,
    ) -> None:
        super().__init__(
            name=name, kind=ApplicationKind.BATCH, seed=seed, noise_std=noise_std
        )
        if ramp_ticks <= 0:
            raise ValueError("ramp_ticks must be positive")
        self.target_mb = target_mb
        self.ramp_ticks = ramp_ticks
        self.sweep_period = sweep_period
        self.sweep_ticks = sweep_ticks
        self.sweep_bandwidth = sweep_bandwidth
        self.total_work = total_work

    def in_sweep(self) -> bool:
        """True while the bomb is in a read-sweep window."""
        if self.work_done < self.ramp_ticks:
            return False
        position = (self.work_done - self.ramp_ticks) % self.sweep_period
        return position < self.sweep_ticks

    def demand(self, clock: SimulationClock) -> ResourceVector:
        if self._finished:
            return ResourceVector.zero()
        allocated = self.target_mb * min(1.0, self.work_done / self.ramp_ticks)
        if self.in_sweep():
            base = ResourceVector(
                cpu=0.6,
                memory=allocated,
                memory_bw=self.sweep_bandwidth,
                disk_io=0.0,
                network=0.0,
            )
        else:
            base = ResourceVector(
                cpu=0.25,
                memory=allocated,
                memory_bw=300.0,
                disk_io=0.0,
                network=0.0,
            )
        return self._jitter(base)

    def _on_advance(self, allocation, clock) -> None:
        if self.total_work is not None and self.work_done >= self.total_work:
            self._finish()
