"""The memcached-backed analytics Webservice (latency-sensitive).

The paper's second sensitive application is "a Webservice ... for
analysing and serving data. It consists of a Memcached layer for
in-memory data storage and performs analytics, if necessary, before
serving the data" over the CONFINE open dataset, exercised with
CPU-intensive, memory-intensive and mixed workloads (§7.1).

Our model exposes the same three workload types. The memcached layer
pins a large resident set, so memory-hungry co-tenants (Twitter-Analysis
in its memory phase, MemoryBomb) push the host into overcommit and the
swap penalty degrades response throughput — reproducing the paper's key
observation that "Twitter-Analysis [interferes] only when its memory
operation is intensive enough to force the OS to swap pages of
Webservice to disk" (§7.2).

QoS is the transaction completion ratio: offered transactions per
second times the granted progress, normalized by the offer.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.sim.clock import SimulationClock
from repro.sim.contention import Allocation
from repro.sim.resources import ResourceVector
from repro.workloads.base import Application, ApplicationKind, QosReport
from repro.workloads.traces import WorkloadTrace


class WebserviceWorkload(enum.Enum):
    """The three request mixes of §7.1."""

    CPU = "cpu"
    MEMORY = "memory"
    MIX = "mix"


#: Per-workload demand at intensity 1.0. The memory-intensive mix keeps
#: a much larger working set hot in memcached and hammers the memory
#: bus; the CPU mix is dominated by per-request analytics compute.
_WORKLOAD_PEAK_DEMAND = {
    WebserviceWorkload.CPU: ResourceVector(
        cpu=3.6, memory=2400.0, memory_bw=900.0, disk_io=6.0, network=180.0
    ),
    WebserviceWorkload.MEMORY: ResourceVector(
        cpu=1.1, memory=4600.0, memory_bw=3200.0, disk_io=10.0, network=220.0
    ),
    WebserviceWorkload.MIX: ResourceVector(
        cpu=2.2, memory=3500.0, memory_bw=2000.0, disk_io=8.0, network=200.0
    ),
}

#: Fraction of the peak resident set that stays pinned (memcached keeps
#: its slab allocation) even when request intensity drops. Low-intensity
#: periods therefore open real memory headroom — the low-utilization
#: valleys Stay-Away exploits (§1).
_RESIDENT_FLOOR = 0.7


class Webservice(Application):
    """Analytics webservice with a memcached in-memory layer.

    Parameters
    ----------
    workload:
        Which request mix drives the service.
    trace:
        Offered-load intensity over time; defaults to constant.
    offered_tps:
        Transactions per second offered at intensity 1.0 (only a
        reporting scale; QoS is the completion *ratio*).
    qos_threshold:
        Minimum acceptable completion ratio.
    duration:
        Serving window in wall-clock ticks; ``None`` serves forever.
    """

    def __init__(
        self,
        workload: WebserviceWorkload = WebserviceWorkload.MIX,
        name: Optional[str] = None,
        trace: Optional[WorkloadTrace] = None,
        offered_tps: float = 1000.0,
        qos_threshold: float = 0.9,
        duration: Optional[int] = None,
        seed: int = 17,
        noise_std: float = 0.03,
    ) -> None:
        if isinstance(workload, str):
            workload = WebserviceWorkload(workload)
        super().__init__(
            name=name if name is not None else f"webservice-{workload.value}",
            kind=ApplicationKind.SENSITIVE,
            seed=seed,
            noise_std=noise_std,
        )
        self.workload = workload
        self.trace = trace if trace is not None else WorkloadTrace.constant(1.0)
        self.offered_tps = offered_tps
        self.qos_threshold = qos_threshold
        self.duration = duration
        self.completed_tps_series: List[float] = []
        self._last_report: Optional[QosReport] = None

    def current_intensity(self, clock: SimulationClock) -> float:
        """Offered-load intensity at the current simulated time."""
        return self.trace.intensity(clock.now)

    def demand(self, clock: SimulationClock) -> ResourceVector:
        if self._finished:
            return ResourceVector.zero()
        intensity = self.current_intensity(clock)
        peak = _WORKLOAD_PEAK_DEMAND[self.workload]
        resident_fraction = _RESIDENT_FLOOR + (1.0 - _RESIDENT_FLOOR) * intensity
        base = ResourceVector(
            cpu=peak.cpu * intensity,
            memory=peak.memory * resident_fraction,
            memory_bw=peak.memory_bw * intensity,
            disk_io=peak.disk_io * intensity,
            network=peak.network * intensity,
        )
        return self._jitter(base)

    def _on_advance(self, allocation: Allocation, clock: SimulationClock) -> None:
        intensity = self.current_intensity(clock)
        completed = self.offered_tps * intensity * allocation.progress
        self.completed_tps_series.append(completed)
        self._last_report = QosReport(
            value=allocation.progress, threshold=self.qos_threshold
        )
        if self.duration is not None and self.elapsed_ticks >= self.duration:
            self._finish()

    def qos_report(self) -> Optional[QosReport]:
        return self._last_report
