"""Phase schedules.

The paper defines a *phase change* as "a change in the major share of
resource consumed by an application" (§1) — e.g. an application that is
CPU-intensive for a while and I/O-intensive later. Stay-Away exploits
phase changes of batch applications (throttle only in the harmful
phase) and detects phase changes of the sensitive application (to
decide when resuming a batch app is safe).

A :class:`PhaseSchedule` is an ordered list of :class:`Phase` entries,
optionally cyclic. Phase position advances with *work done* rather than
wall-clock time: a SIGSTOPped or CPU-starved application progresses
through its phases more slowly, exactly as a real program would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.sim.resources import ResourceVector


@dataclass(frozen=True)
class Phase:
    """One demand regime of an application.

    Parameters
    ----------
    name:
        Human-readable phase label ("cpu", "memory-scan", ...).
    duration:
        Phase length in ticks of *useful work* (at full progress the
        phase lasts exactly this many ticks).
    demand:
        Resource demand per tick while in this phase.
    """

    name: str
    duration: float
    demand: ResourceVector

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"phase {self.name!r} must have positive duration")


class PhaseSchedule:
    """An ordered, optionally cyclic, sequence of phases.

    Position within the schedule is measured in accumulated work ticks.
    """

    def __init__(self, phases: Sequence[Phase], cyclic: bool = True) -> None:
        if not phases:
            raise ValueError("a schedule needs at least one phase")
        self.phases: List[Phase] = list(phases)
        self.cyclic = cyclic
        self._total = sum(phase.duration for phase in self.phases)

    @property
    def cycle_length(self) -> float:
        """Total work ticks for one pass over all phases."""
        return self._total

    def phase_at(self, position: float) -> Phase:
        """The phase active at the given work position.

        For non-cyclic schedules positions past the end stay in the
        final phase (the application is expected to finish around then).
        """
        if position < 0:
            raise ValueError(f"position must be non-negative, got {position}")
        if self.cyclic:
            position = position % self._total
        elif position >= self._total:
            return self.phases[-1]
        cumulative = 0.0
        for phase in self.phases:
            cumulative += phase.duration
            if position < cumulative:
                return phase
        return self.phases[-1]

    def phase_index_at(self, position: float) -> int:
        """Index of the active phase (see :meth:`phase_at`)."""
        phase = self.phase_at(position)
        return self.phases.index(phase)

    def boundaries(self) -> List[Tuple[float, str]]:
        """``(start_position, phase_name)`` for each phase of one cycle."""
        out: List[Tuple[float, str]] = []
        position = 0.0
        for phase in self.phases:
            out.append((position, phase.name))
            position += phase.duration
        return out

    @classmethod
    def single(cls, name: str, demand: ResourceVector) -> "PhaseSchedule":
        """A schedule consisting of one endless phase."""
        return cls([Phase(name=name, duration=float("inf"), demand=demand)], cyclic=False)
