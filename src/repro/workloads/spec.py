"""SPEC CPU2006 soplex stand-in (batch).

Soplex is a simplex-based linear-programming solver. As a co-tenant it
presents the pattern the paper reports in Fig. 5: a steady, CPU-bound
demand with a *gradually drifting* memory footprint as the solver's
basis factorizations grow — producing the "linear trajectory with a
consistent orientation and slightly varying step length" in the mapped
state space.
"""

from __future__ import annotations

from repro.sim.clock import SimulationClock
from repro.sim.resources import ResourceVector
from repro.workloads.base import PhasedApplication
from repro.workloads.phases import Phase, PhaseSchedule


class Soplex(PhasedApplication):
    """SPEC CPU2006 450.soplex model.

    Parameters
    ----------
    total_work:
        Work ticks to completion.
    cpu:
        Steady CPU demand in cores.
    memory_start / memory_end:
        Resident set drifts linearly between these bounds over the run
        (the gradual-transition driver).
    """

    def __init__(
        self,
        name: str = "soplex",
        total_work: float = 900.0,
        cpu: float = 1.0,
        memory_start: float = 400.0,
        memory_end: float = 1400.0,
        memory_bw_start: float = 700.0,
        memory_bw_end: float = 1600.0,
        seed: int = 23,
        noise_std: float = 0.02,
    ) -> None:
        base = ResourceVector(
            cpu=cpu,
            memory=memory_start,
            memory_bw=memory_bw_start,
            disk_io=2.0,
            network=0.0,
        )
        schedule = PhaseSchedule(
            [Phase(name="simplex", duration=total_work, demand=base)], cyclic=False
        )
        super().__init__(
            name=name,
            schedule=schedule,
            total_work=total_work,
            seed=seed,
            noise_std=noise_std,
        )
        self.cpu = cpu
        self.memory_start = memory_start
        self.memory_end = memory_end
        self.memory_bw_start = memory_bw_start
        self.memory_bw_end = memory_bw_end

    def base_demand(self, clock: SimulationClock) -> ResourceVector:
        if self.total_work is None or self.total_work <= 0:
            fraction = 0.0
        else:
            fraction = min(1.0, self.work_done / self.total_work)
        memory = self.memory_start + (self.memory_end - self.memory_start) * fraction
        memory_bw = (
            self.memory_bw_start
            + (self.memory_bw_end - self.memory_bw_start) * fraction
        )
        return ResourceVector(
            cpu=self.cpu,
            memory=memory,
            memory_bw=memory_bw,
            disk_io=2.0,
            network=0.0,
        )
