"""Name → workload factory registry.

Benchmarks and examples refer to workloads by the names the paper uses
("soplex", "twitter-analysis", "cpubomb", ...). The registry builds a
fresh, independently seeded instance per call so repeated experiments
do not share state.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.workloads.base import Application
from repro.workloads.bombs import CpuBomb, MemoryBomb
from repro.workloads.cloudsuite import TwitterAnalysis
from repro.workloads.spec import Soplex
from repro.workloads.traces import WorkloadTrace
from repro.workloads.vlc import VlcStreamingServer, VlcTranscoder
from repro.workloads.webservice import Webservice, WebserviceWorkload

_FACTORIES: Dict[str, Callable[..., Application]] = {
    "vlc-streaming": lambda **kw: VlcStreamingServer(**kw),
    "vlc-transcoding": lambda **kw: VlcTranscoder(**kw),
    "webservice-cpu": lambda **kw: Webservice(workload=WebserviceWorkload.CPU, **kw),
    "webservice-memory": lambda **kw: Webservice(
        workload=WebserviceWorkload.MEMORY, **kw
    ),
    "webservice-mix": lambda **kw: Webservice(workload=WebserviceWorkload.MIX, **kw),
    "soplex": lambda **kw: Soplex(**kw),
    "twitter-analysis": lambda **kw: TwitterAnalysis(**kw),
    "cpubomb": lambda **kw: CpuBomb(**kw),
    "memorybomb": lambda **kw: MemoryBomb(**kw),
}

#: Names of all batch workloads in the registry.
BATCH_WORKLOADS: List[str] = [
    "vlc-transcoding",
    "soplex",
    "twitter-analysis",
    "cpubomb",
    "memorybomb",
]

#: Names of all sensitive workloads in the registry.
SENSITIVE_WORKLOADS: List[str] = [
    "vlc-streaming",
    "webservice-cpu",
    "webservice-memory",
    "webservice-mix",
]


def available_workloads() -> List[str]:
    """All registered workload names."""
    return sorted(_FACTORIES)


def make_workload(
    name: str, seed: Optional[int] = None, trace: Optional[WorkloadTrace] = None, **kwargs
) -> Application:
    """Build a fresh workload instance by registry name.

    Parameters
    ----------
    name:
        Registry name (see :func:`available_workloads`).
    seed:
        Optional RNG seed override.
    trace:
        Optional workload-intensity trace (only meaningful for the
        trace-driven sensitive applications).
    kwargs:
        Forwarded to the workload constructor.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from None
    if seed is not None:
        kwargs["seed"] = seed
    if trace is not None:
        kwargs["trace"] = trace
    return factory(**kwargs)
