"""Workload models: the applications the paper co-locates.

Latency-sensitive applications
------------------------------
* :class:`~repro.workloads.vlc.VlcStreamingServer` — the instrumented
  VLC 2.0.5 streaming server; QoS = real-time transcoding rate.
* :class:`~repro.workloads.webservice.Webservice` — the memcached-backed
  analytics webservice with CPU-intensive, memory-intensive and mixed
  workloads; QoS = transaction completion rate.

Best-effort batch applications
------------------------------
* :class:`~repro.workloads.spec.Soplex` — SPEC CPU2006 soplex stand-in.
* :class:`~repro.workloads.cloudsuite.TwitterAnalysis` — CloudSuite
  Twitter influence ranking stand-in (alternating CPU/memory phases).
* :class:`~repro.workloads.bombs.CpuBomb` /
  :class:`~repro.workloads.bombs.MemoryBomb` — isolation-benchmark
  stressors.
* :class:`~repro.workloads.vlc.VlcTranscoder` — offline VLC transcoding.

All models are *phase-driven*: each application walks through a
schedule of resource-demand phases, optionally modulated by a client
workload trace (diurnal Wikipedia-style traffic, §1 Fig. 1).
"""

from repro.workloads.base import (
    Application,
    ApplicationKind,
    PhasedApplication,
    QosReport,
)
from repro.workloads.bombs import CpuBomb, MemoryBomb
from repro.workloads.cloudsuite import TwitterAnalysis
from repro.workloads.composite import ModulatedApplication, SequenceApplication
from repro.workloads.phases import Phase, PhaseSchedule
from repro.workloads.registry import available_workloads, make_workload
from repro.workloads.spec import Soplex
from repro.workloads.traces import (
    WIKIPEDIA_HOURLY_SHAPE,
    WorkloadTrace,
    diurnal_trace,
    wikipedia_trace,
)
from repro.workloads.vlc import VlcStreamingServer, VlcTranscoder
from repro.workloads.webservice import Webservice, WebserviceWorkload

__all__ = [
    "Application",
    "ApplicationKind",
    "CpuBomb",
    "MemoryBomb",
    "ModulatedApplication",
    "SequenceApplication",
    "Phase",
    "PhaseSchedule",
    "PhasedApplication",
    "QosReport",
    "Soplex",
    "TwitterAnalysis",
    "VlcStreamingServer",
    "VlcTranscoder",
    "Webservice",
    "WebserviceWorkload",
    "WIKIPEDIA_HOURLY_SHAPE",
    "WorkloadTrace",
    "available_workloads",
    "diurnal_trace",
    "make_workload",
    "wikipedia_trace",
]
