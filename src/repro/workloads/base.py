"""Application base classes.

Two execution disciplines exist:

* **Work-based** (batch jobs): internal state — phase position,
  completion — advances with the *progress* the host granted. A starved
  or paused batch job simply takes longer, like a real SIGSTOPped
  process.
* **Real-time** (servers): the application must serve whatever load
  arrives each wall-clock tick. Starvation does not stretch its
  lifetime; it degrades its QoS instead (dropped frames, slow
  responses).

Sensitive applications additionally expose a :class:`QosReport` every
tick. Stay-Away "relies on the application to report whenever a QoS
violation happens" (§3.1) — this is that reporting channel.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sim.clock import SimulationClock
from repro.sim.contention import Allocation
from repro.sim.resources import Resource, ResourceVector
from repro.workloads.phases import PhaseSchedule


class ApplicationKind(enum.Enum):
    """The paper's two-class taxonomy (§2.1)."""

    SENSITIVE = "sensitive"
    BATCH = "batch"


@dataclass(frozen=True)
class QosReport:
    """One tick's QoS reading from a sensitive application.

    Attributes
    ----------
    value:
        Normalized achieved service level (1.0 = full service).
    threshold:
        The minimum acceptable value; below it is a violation.
    violated:
        True when ``value < threshold``.
    """

    value: float
    threshold: float

    @property
    def violated(self) -> bool:
        return self.value < self.threshold


class Application(abc.ABC):
    """Base class for every workload model.

    Parameters
    ----------
    name:
        Application name (also used as default container name).
    kind:
        Sensitive or batch.
    seed:
        Seed for the application's private RNG (demand jitter).
    noise_std:
        Relative standard deviation of multiplicative demand noise.
        Real applications never draw perfectly flat resource curves;
        a few percent of jitter keeps mapped states realistically
        clustered rather than degenerate points.
    """

    def __init__(
        self,
        name: str,
        kind: ApplicationKind,
        seed: int = 0,
        noise_std: float = 0.02,
    ) -> None:
        self.name = name
        self.kind = kind
        self.noise_std = noise_std
        self.rng = np.random.default_rng(seed)
        self.work_done: float = 0.0
        self.elapsed_ticks: int = 0
        self._finished = False

    # -- interface used by the container --------------------------------
    @abc.abstractmethod
    def demand(self, clock: SimulationClock) -> ResourceVector:
        """Resource demand for the upcoming tick."""

    def advance(self, allocation: Allocation, clock: SimulationClock) -> None:
        """Consume one tick's allocation."""
        self.elapsed_ticks += 1
        self.work_done += allocation.progress
        self._on_advance(allocation, clock)

    def _on_advance(self, allocation: Allocation, clock: SimulationClock) -> None:
        """Subclass hook; called from :meth:`advance`."""

    @property
    def finished(self) -> bool:
        """True once the application has no more work (servers: stream ended)."""
        return self._finished

    def _finish(self) -> None:
        self._finished = True

    # -- helpers ---------------------------------------------------------
    def _jitter(self, vector: ResourceVector) -> ResourceVector:
        """Apply multiplicative Gaussian noise to a demand vector."""
        if self.noise_std <= 0:
            return vector
        factors = self.rng.normal(1.0, self.noise_std, size=5)
        values = {}
        for (resource, value), factor in zip(vector.items(), factors):
            values[resource] = max(0.0, value * factor)
        return ResourceVector.from_mapping(values)

    @property
    def is_sensitive(self) -> bool:
        return self.kind is ApplicationKind.SENSITIVE

    def qos_report(self) -> Optional[QosReport]:
        """Latest QoS reading; ``None`` for applications that report none."""
        return None


class PhasedApplication(Application):
    """A batch application driven by a phase schedule.

    Work (and therefore phase position) advances with granted progress.
    The job finishes after ``total_work`` accumulated work ticks.
    """

    def __init__(
        self,
        name: str,
        schedule: PhaseSchedule,
        total_work: Optional[float] = None,
        kind: ApplicationKind = ApplicationKind.BATCH,
        seed: int = 0,
        noise_std: float = 0.02,
    ) -> None:
        super().__init__(name=name, kind=kind, seed=seed, noise_std=noise_std)
        self.schedule = schedule
        self.total_work = total_work
        self.phase_transitions: List[float] = []
        self._last_phase_name: Optional[str] = None

    def current_phase_name(self) -> str:
        """Name of the phase the application is currently in."""
        return self.schedule.phase_at(self.work_done).name

    def base_demand(self, clock: SimulationClock) -> ResourceVector:
        """Demand of the current phase before jitter; subclass hook."""
        return self.schedule.phase_at(self.work_done).demand

    def demand(self, clock: SimulationClock) -> ResourceVector:
        if self._finished:
            return ResourceVector.zero()
        return self._jitter(self.base_demand(clock))

    def _on_advance(self, allocation: Allocation, clock: SimulationClock) -> None:
        phase_name = self.current_phase_name()
        if phase_name != self._last_phase_name:
            if self._last_phase_name is not None:
                self.phase_transitions.append(self.work_done)
            self._last_phase_name = phase_name
        if self.total_work is not None and self.work_done >= self.total_work:
            self._finish()
