"""VLC models: the streaming server (sensitive) and the transcoder (batch).

The paper instruments VLC 2.0.5 streaming a movie in real time; "the
minimum transcoding rate required to provide real time viewing without
any loss of frames at the server side is defined as the QoS threshold"
(§7.1). Our model captures exactly that contract:

* the server must transcode ``required_fps`` frames every second of
  wall-clock time;
* its achieved rate is ``required_fps * progress`` where ``progress``
  is the satisfaction ratio granted by the host;
* a QoS violation is reported whenever the achieved rate falls below
  the threshold fraction of the required rate.

Stream complexity / concurrent client load is modulated by a workload
trace, so the CPU demand varies over the run the way a real streaming
session's does.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.clock import SimulationClock
from repro.sim.contention import Allocation
from repro.sim.resources import ResourceVector
from repro.workloads.base import Application, ApplicationKind, PhasedApplication, QosReport
from repro.workloads.phases import Phase, PhaseSchedule
from repro.workloads.traces import WorkloadTrace


class VlcStreamingServer(Application):
    """Real-time VLC streaming server (latency-sensitive).

    Parameters
    ----------
    trace:
        Client/scene-complexity intensity over time (defaults to a
        constant full-intensity stream).
    required_fps:
        Frames per second the stream needs for uninterrupted playback.
    cpu_peak:
        CPU cores demanded at intensity 1.0. Sized so that, at peak, a
        moderately CPU-hungry batch co-tenant pushes the host past
        saturation — the contention regime of the paper's Figs. 8-9.
    qos_threshold:
        Fraction of the required rate below which the application
        reports a QoS violation.
    duration:
        Stream length in ticks (wall-clock); ``None`` streams forever.
    """

    def __init__(
        self,
        name: str = "vlc-streaming",
        trace: Optional[WorkloadTrace] = None,
        required_fps: float = 25.0,
        cpu_peak: float = 3.0,
        memory_mb: float = 512.0,
        memory_bw_peak: float = 800.0,
        network_peak: float = 120.0,
        qos_threshold: float = 0.95,
        duration: Optional[int] = None,
        seed: int = 11,
        noise_std: float = 0.03,
    ) -> None:
        super().__init__(
            name=name, kind=ApplicationKind.SENSITIVE, seed=seed, noise_std=noise_std
        )
        self.trace = trace if trace is not None else WorkloadTrace.constant(1.0)
        self.required_fps = required_fps
        self.cpu_peak = cpu_peak
        self.memory_mb = memory_mb
        self.memory_bw_peak = memory_bw_peak
        self.network_peak = network_peak
        self.qos_threshold = qos_threshold
        self.duration = duration
        self.achieved_rate_series: List[float] = []
        self._last_report: Optional[QosReport] = None

    def current_intensity(self, clock: SimulationClock) -> float:
        """Stream intensity at the current simulated time."""
        return self.trace.intensity(clock.now)

    def demand(self, clock: SimulationClock) -> ResourceVector:
        if self._finished:
            return ResourceVector.zero()
        intensity = self.current_intensity(clock)
        base = ResourceVector(
            cpu=self.cpu_peak * intensity,
            memory=self.memory_mb,
            memory_bw=self.memory_bw_peak * intensity,
            disk_io=8.0 * intensity,
            network=self.network_peak * intensity,
        )
        return self._jitter(base)

    def _on_advance(self, allocation: Allocation, clock: SimulationClock) -> None:
        achieved = self.required_fps * allocation.progress
        self.achieved_rate_series.append(achieved)
        self._last_report = QosReport(
            value=allocation.progress, threshold=self.qos_threshold
        )
        if self.duration is not None and self.elapsed_ticks >= self.duration:
            self._finish()

    def qos_report(self) -> Optional[QosReport]:
        return self._last_report


class VlcTranscoder(PhasedApplication):
    """Offline VLC transcoding job (batch, work-based).

    A transcode saturates roughly two cores with steady memory-bus and
    disk traffic and "experiences minimal phase transitions during
    isolated execution" (§7.1) — the paper pairs it with CPUBomb for
    the instantaneous-transition illustration (Fig. 6).
    """

    def __init__(
        self,
        name: str = "vlc-transcoding",
        total_work: float = 600.0,
        cpu: float = 1.8,
        seed: int = 13,
        noise_std: float = 0.03,
    ) -> None:
        demand = ResourceVector(
            cpu=cpu, memory=420.0, memory_bw=900.0, disk_io=30.0, network=0.0
        )
        schedule = PhaseSchedule(
            [Phase(name="transcode", duration=total_work, demand=demand)],
            cyclic=False,
        )
        super().__init__(
            name=name,
            schedule=schedule,
            total_work=total_work,
            seed=seed,
            noise_std=noise_std,
        )
