"""Standard scenario runners.

Each runner instantiates the scenario fresh, wires the appropriate
controller (none / Stay-Away / reactive), runs the engine and returns a
:class:`RunResult` with the aligned QoS and utilization series the
evaluation figures are made of.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.utilization import UtilizationComparison, compare_utilization
from repro.baselines.gmm_threshold import GmmThresholdDetector, GmmThresholdModel
from repro.baselines.no_prevention import NoPrevention
from repro.baselines.qclouds import QCloudsLike
from repro.baselines.reactive import ReactiveThrottler
from repro.core.config import StayAwayConfig
from repro.core.controller import StayAway
from repro.core.template import MapTemplate
from repro.experiments.scenarios import BuiltScenario, Scenario
from repro.monitoring.qos import QosTracker
from repro.sim.engine import SimulationEngine
from repro.sim.host import HostSnapshot


@dataclass
class RunResult:
    """Outcome of one scenario run under one policy.

    Attributes
    ----------
    scenario:
        The scenario description that was run.
    policy:
        "isolated" / "unmanaged" / "stayaway" / "reactive".
    built:
        The instantiated host and applications.
    snapshots:
        Per-tick host snapshots.
    qos:
        The sensitive application's QoS tracker.
    controller:
        The Stay-Away controller when ``policy`` is ``"stayaway"`` or
        ``"hybrid"``.
    reactive:
        The reactive baseline when ``policy == "reactive"``.
    qclouds:
        The Q-Clouds-style baseline when ``policy == "qclouds"``.
    gmm:
        The GMM threshold baseline when ``policy == "gmm"``.
    """

    scenario: Scenario
    policy: str
    built: BuiltScenario
    snapshots: List[HostSnapshot]
    qos: QosTracker
    controller: Optional[StayAway] = None
    reactive: Optional[ReactiveThrottler] = None
    qclouds: Optional[QCloudsLike] = None
    gmm: Optional[GmmThresholdDetector] = None

    def utilization(self) -> np.ndarray:
        """Machine CPU utilization series in [0, 1]."""
        capacity = self.built.host.capacity
        return np.asarray(
            [snapshot.cpu_utilization(capacity) for snapshot in self.snapshots]
        )

    def qos_values(self) -> np.ndarray:
        """Normalized QoS series of the sensitive application."""
        return self.qos.qos_series.values

    def violation_ratio(self) -> float:
        """Fraction of reported ticks in QoS violation."""
        return self.qos.violation_ratio()

    def batch_work_done(self) -> float:
        """Total work completed by all batch applications."""
        return float(sum(app.work_done for app in self.built.batch_apps))

    def alarm_ticks(self) -> List[int]:
        """Ticks where the run's detector flagged impending contention.

        Alarm streams exist for the detector-bearing policies
        (``stayaway``/``hybrid`` via the controller, ``gmm`` via the
        threshold detector); other policies return an empty list.
        """
        if self.controller is not None:
            return list(self.controller.alarm_ticks)
        if self.gmm is not None:
            return list(self.gmm.alarm_ticks)
        return []

    @property
    def telemetry(self):
        """The controller's :class:`~repro.telemetry.Telemetry` (None
        for policies without a Stay-Away controller)."""
        return self.controller.telemetry if self.controller is not None else None


def run_scenario(
    scenario: Scenario,
    policy: str = "stayaway",
    config: Optional[StayAwayConfig] = None,
    template: Optional[MapTemplate] = None,
    cooldown: int = 20,
    telemetry=None,
    pre_middlewares=(),
) -> RunResult:
    """Run a scenario under a named policy.

    Parameters
    ----------
    policy:
        One of ``"isolated"``, ``"unmanaged"``, ``"stayaway"``,
        ``"reactive"``, ``"qclouds"``, ``"gmm"``, ``"hybrid"``.
        ``"gmm"`` runs the standalone GMM threshold baseline
        (``config.enabled=False`` puts it in alarm-only shadow mode);
        ``"hybrid"`` is the Stay-Away controller with
        ``detector_mode="hybrid"`` and a
        :class:`~repro.baselines.gmm_threshold.GmmThresholdModel`
        voting in the predict stage.
    config / template:
        Stay-Away configuration and optional map template.
    cooldown:
        Resume cooldown for the reactive baseline.
    telemetry:
        Optional pre-built :class:`~repro.telemetry.Telemetry` handed
        to the Stay-Away controller (ignored for other policies);
        lets callers aggregate several runs into one registry.
    pre_middlewares:
        Middlewares registered *before* the policy's own (observers
        like :class:`~repro.service.recording.StreamRecorder` that
        must see each snapshot pre-actuation).
    """
    requested_policy = policy
    if policy == "isolated":
        built = scenario.build(include_batch=False)
    else:
        built = scenario.build(include_batch=True)

    if policy == "hybrid":
        # Sugar for the head-to-head study: Stay-Away with the GMM
        # verdict voting alongside the trajectory predictor.
        base = config if config is not None else StayAwayConfig()
        config = dataclasses.replace(base, detector_mode="hybrid")
        policy = "stayaway"

    engine = SimulationEngine(built.host)
    for middleware in pre_middlewares:
        engine.add_middleware(middleware)
    controller: Optional[StayAway] = None
    reactive: Optional[ReactiveThrottler] = None
    qclouds: Optional[QCloudsLike] = None
    gmm: Optional[GmmThresholdDetector] = None

    if policy == "stayaway":
        if config is not None and config.detector_mode == "gmm":
            raise ValueError(
                "detector_mode='gmm' is the standalone threshold baseline; "
                "run it with policy='gmm' instead of policy='stayaway'"
            )
        aux_detector = None
        if config is not None and config.detector_mode == "hybrid":
            aux_detector = GmmThresholdModel(config)
        controller = StayAway(
            built.sensitive_app,
            config=config,
            template=template,
            telemetry=telemetry,
            aux_detector=aux_detector,
        )
        engine.add_middleware(controller)
        qos = controller.qos
    elif policy == "gmm":
        gmm_config = config if config is not None else StayAwayConfig()
        gmm = GmmThresholdDetector(
            built.sensitive_app, config=gmm_config, actuate=gmm_config.enabled
        )
        engine.add_middleware(gmm)
        qos = gmm.qos
    elif policy == "reactive":
        reactive = ReactiveThrottler(built.sensitive_app, cooldown=cooldown)
        engine.add_middleware(reactive)
        qos = reactive.qos
    elif policy == "qclouds":
        # Q-Clouds needs a shares-aware scheduler to boost against.
        from repro.sim.contention import WeightedWaterFillModel

        built.host.contention = WeightedWaterFillModel()
        qclouds = QCloudsLike(built.sensitive_app)
        engine.add_middleware(qclouds)
        qos = qclouds.qos
    elif policy in ("unmanaged", "isolated"):
        engine.add_middleware(NoPrevention())
        qos = QosTracker(built.sensitive_app)
        engine.add_middleware(qos)
    else:
        raise ValueError(f"unknown policy {policy!r}")

    result = engine.run(ticks=scenario.ticks)
    return RunResult(
        scenario=scenario,
        policy=requested_policy,
        built=built,
        snapshots=result.snapshots,
        qos=qos,
        controller=controller,
        reactive=reactive,
        qclouds=qclouds,
        gmm=gmm,
    )


def run_isolated(scenario: Scenario) -> RunResult:
    """Sensitive application alone (utilization baseline)."""
    return run_scenario(scenario, policy="isolated")


def run_unmanaged(scenario: Scenario) -> RunResult:
    """Co-location with no mitigation (the paper's 'without Stay-Away')."""
    return run_scenario(scenario, policy="unmanaged")


def run_stayaway(
    scenario: Scenario,
    config: Optional[StayAwayConfig] = None,
    template: Optional[MapTemplate] = None,
    telemetry=None,
) -> RunResult:
    """Co-location managed by Stay-Away."""
    return run_scenario(
        scenario,
        policy="stayaway",
        config=config,
        template=template,
        telemetry=telemetry,
    )


def run_reactive(scenario: Scenario, cooldown: int = 20) -> RunResult:
    """Co-location managed by the reactive-only ablation baseline."""
    return run_scenario(scenario, policy="reactive", cooldown=cooldown)


def run_gmm(scenario: Scenario, config: Optional[StayAwayConfig] = None) -> RunResult:
    """Co-location managed by the GMM threshold-learning baseline."""
    return run_scenario(scenario, policy="gmm", config=config)


def run_hybrid(scenario: Scenario, config: Optional[StayAwayConfig] = None) -> RunResult:
    """Stay-Away with the GMM verdict voting in the predict stage."""
    return run_scenario(scenario, policy="hybrid", config=config)


@dataclass
class TrioResult:
    """The standard three-way comparison behind Figs. 8-12.

    Attributes
    ----------
    isolated / unmanaged / stayaway:
        The three runs.
    utilization:
        Gained-utilization comparison (upper band = unmanaged, lower
        band = Stay-Away).
    """

    isolated: RunResult
    unmanaged: RunResult
    stayaway: RunResult
    utilization: UtilizationComparison


def run_trio(
    scenario: Scenario, config: Optional[StayAwayConfig] = None
) -> TrioResult:
    """Run isolated + unmanaged + Stay-Away and compare utilization."""
    isolated = run_isolated(scenario)
    unmanaged = run_unmanaged(scenario)
    stayaway = run_stayaway(scenario, config=config)
    comparison = compare_utilization(
        isolated.snapshots,
        unmanaged.snapshots,
        stayaway.snapshots,
        capacity=isolated.built.host.capacity,
    )
    return TrioResult(
        isolated=isolated,
        unmanaged=unmanaged,
        stayaway=stayaway,
        utilization=comparison,
    )
