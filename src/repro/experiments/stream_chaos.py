"""Stream-transport chaos drills for the controller service.

The service stack (:mod:`repro.service`) claims two things worth
drilling, and this module drills both against the live simulator:

* **Replay determinism** — an in-process run recorded as wire records
  and replayed through :class:`~repro.service.controller_service.
  ControllerService` must reproduce the in-process controller's
  pause/resume decision sequence *exactly*
  (:func:`check_replay_determinism`).
* **Fault tolerance** — under seeded transport faults (drop, reorder,
  duplicate, stall, lost acks) the watermark assembler must keep the
  sensitive application's ground-truth QoS close to the fault-free
  run, while the assembler-less :class:`~repro.service.assembler.
  PassthroughAssembler` arm deviates much further — either by letting
  violations through or by over-throttling the batch tier into a
  large utilization shortfall (:func:`run_stream_comparison`).

The live topology mirrors a real deployment split across processes:
a :class:`SimStreamBridge` middleware publishes every engine tick as
wire records (the same :mod:`repro.service.recording` helpers the
recorder uses, so recorded and live streams are bit-identical in
shape) into a :class:`~repro.service.stream.QueueSource`; the service
polls that queue through a chain of seeded fault wrappers from
:mod:`repro.sim.faults`; its decisions travel back to the *live* host
through a :class:`~repro.service.actuator.SimHostActuator`. An
independent :class:`~repro.monitoring.qos.QosTracker` rides the
engine outside the stream entirely, so every arm is measured by the
same ground-truth instrument regardless of what its stream shows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import StayAwayConfig
from repro.core.controller import StayAway
from repro.experiments.scenarios import BuiltScenario, Scenario
from repro.monitoring.qos import QosTracker
from repro.sim.engine import SimulationEngine
from repro.sim.faults import (
    ActuatorAckDropper,
    StreamDropper,
    StreamDuplicator,
    StreamReorderer,
    StreamStaller,
)
from repro.service import (
    ControllerService,
    PassthroughAssembler,
    QueueSource,
    SimHostActuator,
    StreamRecorder,
    decision_sequence,
)
from repro.service.recording import header_record, qos_record, snapshot_records

#: Safety bound on post-run flush cycles (reorderer-held records drain
#: within ``max_delay`` polls; anything beyond this is a wrapper bug).
_FLUSH_CYCLE_CAP = 256


@dataclass(frozen=True)
class StreamChaosMix:
    """Knobs of the seeded stream-transport fault cocktail.

    Parameters
    ----------
    seed:
        Base seed; each wrapper derives its own offset and every fault
        decision is a pure function of ``(seed, tick, record)``, so
        the fault script is identical across the arms under
        comparison.
    drop:
        Per-record probability a tick-bearing record is lost.
    reorder / reorder_max_delay:
        Per-record probability a record is delayed ``1..max_delay``
        polls (arriving behind newer ticks).
    duplicate:
        Per-record probability of an at-least-once redelivery.
    stall_windows:
        ``(start, end)`` poll-index windows during which the transport
        goes silent (data delayed, not lost) — what the service's
        stall-deadline degradation watches for.
    ack_drop:
        Probability a pause/resume lands but its ack is lost, forcing
        the tracker through its retry path.
    """

    seed: int = 0
    drop: float = 0.05
    reorder: float = 0.1
    reorder_max_delay: int = 3
    duplicate: float = 0.1
    stall_windows: Tuple[Tuple[int, int], ...] = ()
    ack_drop: float = 0.0


class SimStreamBridge:
    """Middleware publishing live ticks as wire records, then pumping.

    Registered on the engine, it plays the monitoring agent: one
    ``header`` on the first tick, then per tick the ``sample`` /
    ``state`` / ``qos`` records, pushed into ``sink`` (the queue at
    the bottom of the fault chain). It then runs one service cycle, so
    the service's clock advances with the host's — lagging by the
    watermark, exactly as a remote controller would.
    """

    def __init__(self, service, sink, sensitive_app=None, host_name="host0"):
        self.service = service
        self.sink = sink
        self.sensitive_app = sensitive_app
        self.host_name = host_name
        self._header_done = False

    def on_tick(self, snapshot, host) -> None:
        records: List[dict] = []
        if not self._header_done:
            records.append(header_record(host, self.host_name))
            if self.sensitive_app is None:
                sensitive = host.sensitive_containers()
                if sensitive:
                    self.sensitive_app = sensitive[0].app
            self._header_done = True
        records.extend(snapshot_records(snapshot, host, self.host_name))
        if self.sensitive_app is not None:
            record = qos_record(snapshot.tick, self.sensitive_app, self.host_name)
            if record is not None:
                records.append(record)
        self.sink.push(records)
        self.service.pump()


@dataclass
class StreamDrillResult:
    """Outcome of one stream chaos drill arm.

    Attributes
    ----------
    scenario / mix:
        What was run; ``mix`` is None in the fault-free arm.
    built / service / audit:
        The instantiated scenario, the serviced controller, and the
        ground-truth QoS instrument riding outside the stream.
    injectors:
        The installed fault wrappers by name, for fault-census
        assertions.
    ack_dropper:
        The ack filter, when the mix drops acks.
    passthrough:
        True in the assembler-less ablation arm.
    """

    scenario: Scenario
    mix: Optional[StreamChaosMix]
    built: BuiltScenario
    service: ControllerService
    audit: QosTracker
    injectors: Dict[str, object] = field(default_factory=dict)
    ack_dropper: Optional[ActuatorAckDropper] = None
    passthrough: bool = False

    def violation_ratio(self) -> float:
        """Ground-truth fraction of reported ticks in violation."""
        return self.audit.violation_ratio()

    def batch_work(self) -> float:
        """Total work the batch applications retired (the paper's
        utilization axis — what over-throttling silently destroys)."""
        return sum(app.work_done for app in self.built.batch_apps)

    def faults_injected(self) -> int:
        """Total transport + ack faults the script actually fired."""
        total = 0
        dropper = self.injectors.get("dropper")
        if dropper is not None:
            total += len(dropper.dropped)
        reorderer = self.injectors.get("reorderer")
        if reorderer is not None:
            total += len(reorderer.delayed)
        duplicator = self.injectors.get("duplicator")
        if duplicator is not None:
            total += len(duplicator.duplicated)
        staller = self.injectors.get("staller")
        if staller is not None:
            total += len(staller.stalled_polls)
        if self.ack_dropper is not None:
            total += len(self.ack_dropper.dropped_acks)
        return total

    def unreconciled_commands(self) -> int:
        """Commands neither acked nor dead-lettered after drain (want 0)."""
        return len(self.service.tracker.pending())

    def summary(self) -> dict:
        stream = self.service.summary()["telemetry"].get("stream", {})
        return {
            "arm": (
                "fault-free"
                if self.mix is None
                else ("passthrough" if self.passthrough else "assembled")
            ),
            "violation_ratio": self.violation_ratio(),
            "batch_work": self.batch_work(),
            "decisions": len(self.service.decision_sequence()),
            "faults_injected": self.faults_injected(),
            "unreconciled_commands": self.unreconciled_commands(),
            "dead_letters": len(self.service.tracker.dead_letters),
            "stream": stream,
        }


def run_stream_drill(
    scenario: Scenario,
    mix: Optional[StreamChaosMix] = None,
    config: Optional[StayAwayConfig] = None,
    passthrough: bool = False,
) -> StreamDrillResult:
    """Run one scenario with the controller behind a (faulty) stream.

    ``mix=None`` is the fault-free arm: the same stream topology with
    no wrappers installed — the baseline the chaos gate compares
    against. ``passthrough=True`` swaps in the assembler-less
    :class:`~repro.service.assembler.PassthroughAssembler` (the
    ablation arm); everything else, including the fault script, is
    identical.
    """
    config = config if config is not None else StayAwayConfig()
    built = scenario.build(include_batch=True)
    host = built.host

    queue = QueueSource()
    source = queue
    injectors: Dict[str, object] = {}
    ack_dropper: Optional[ActuatorAckDropper] = None
    if mix is not None:
        if mix.drop > 0:
            source = injectors["dropper"] = StreamDropper(
                source, seed=mix.seed + 11, probability=mix.drop
            )
        if mix.reorder > 0:
            source = injectors["reorderer"] = StreamReorderer(
                source,
                seed=mix.seed + 13,
                probability=mix.reorder,
                max_delay=mix.reorder_max_delay,
            )
        if mix.duplicate > 0:
            source = injectors["duplicator"] = StreamDuplicator(
                source, seed=mix.seed + 17, probability=mix.duplicate
            )
        if mix.stall_windows:
            source = injectors["staller"] = StreamStaller(
                source, windows=list(mix.stall_windows)
            )
        if mix.ack_drop > 0:
            ack_dropper = ActuatorAckDropper(
                seed=mix.seed + 19, probability=mix.ack_drop
            )

    actuator = SimHostActuator(host, ack_filter=ack_dropper)
    assembler = PassthroughAssembler() if passthrough else None
    service = ControllerService(
        source, actuator=actuator, config=config, assembler=assembler
    )
    service.start()

    audit = QosTracker(built.sensitive_app)
    bridge = SimStreamBridge(service, queue, sensitive_app=built.sensitive_app)
    engine = SimulationEngine(host)
    engine.add_middleware(bridge)
    engine.add_middleware(audit)
    engine.run(ticks=scenario.ticks)

    # The host is done: close the transport, let held/delayed records
    # drain, then resolve every in-flight actuator command.
    queue.close()
    service.run(max_cycles=_FLUSH_CYCLE_CAP)

    return StreamDrillResult(
        scenario=scenario,
        mix=mix,
        built=built,
        service=service,
        audit=audit,
        injectors=injectors,
        ack_dropper=ack_dropper,
        passthrough=passthrough,
    )


@dataclass
class StreamComparison:
    """Three arms under the identical live scenario and fault script.

    Degradation is measured as *deviation from the fault-free arm*,
    not as raw violation ratio. The naive passthrough arm does not
    fail by letting violations through — its zero-filled cells poison
    the state map into chronic over-throttling, which buys an
    artificially *low* violation ratio by starving the batch tier (a
    large :meth:`StreamDrillResult.batch_work` shortfall). Either
    distortion — excess violations or phantom throttling — is a
    departure from the controller's intended behavior, and deviation
    from the fault-free run captures both directions.
    """

    fault_free: StreamDrillResult
    assembled: StreamDrillResult
    passthrough: StreamDrillResult

    def degradation(self) -> float:
        """Assembled-arm violation ratio relative to fault-free.

        The chaos gate's headline number: ``<= 2.0`` means the
        watermark assembler held the line. When the fault-free arm is
        violation-free, any assembled violation counts as infinite
        degradation (and 0/0 is a clean 1.0).
        """
        base = self.fault_free.violation_ratio()
        assembled = self.assembled.violation_ratio()
        if base == 0.0:
            return 1.0 if assembled == 0.0 else float("inf")
        return assembled / base

    def deviation(self, arm: StreamDrillResult) -> float:
        """|arm violation ratio - fault-free violation ratio|."""
        return abs(arm.violation_ratio() - self.fault_free.violation_ratio())

    def assembler_better(self) -> bool:
        """True when the assembled arm tracks fault-free behavior
        strictly closer than the assembler-less arm does."""
        return self.deviation(self.assembled) < self.deviation(self.passthrough)

    def summary(self) -> dict:
        return {
            "fault_free": self.fault_free.summary(),
            "assembled": self.assembled.summary(),
            "passthrough": self.passthrough.summary(),
            "degradation": self.degradation(),
            "assembled_deviation": self.deviation(self.assembled),
            "passthrough_deviation": self.deviation(self.passthrough),
            "assembler_better": self.assembler_better(),
        }


def run_stream_comparison(
    scenario: Scenario,
    mix: Optional[StreamChaosMix] = None,
    config: Optional[StayAwayConfig] = None,
) -> StreamComparison:
    """Run fault-free, assembled+faults and passthrough+faults arms.

    Scenario seeds and the fault script are shared, so any difference
    between the assembled and passthrough arms is attributable to the
    watermark assembler alone.
    """
    mix = mix if mix is not None else StreamChaosMix()
    return StreamComparison(
        fault_free=run_stream_drill(scenario, mix=None, config=config),
        assembled=run_stream_drill(scenario, mix=mix, config=config),
        passthrough=run_stream_drill(
            scenario, mix=mix, config=config, passthrough=True
        ),
    )


# ---------------------------------------------------------------------------
# Replay determinism: recorded wire stream vs the in-process controller
# ---------------------------------------------------------------------------

def record_reference(
    scenario: Scenario, config: Optional[StayAwayConfig] = None
) -> Tuple[List[dict], List[dict], StayAway]:
    """Run a scenario in-process and capture its wire-record stream.

    Returns ``(records, decisions, controller)`` — the recorder's
    output, the in-process controller's decision sequence (the replay
    gate's reference) and the controller itself for deeper assertions.
    The recorder is registered *before* the controller so it captures
    the same snapshot the controller acts on, pre-actuation.
    """
    built = scenario.build(include_batch=True)
    controller = StayAway(built.sensitive_app, config=config)
    recorder = StreamRecorder(sensitive_app=built.sensitive_app)
    engine = SimulationEngine(built.host)
    engine.add_middleware(recorder)
    engine.add_middleware(controller)
    engine.run(ticks=scenario.ticks)
    return recorder.records, decision_sequence(controller), controller


def replay_records(
    records: List[dict], config: Optional[StayAwayConfig] = None
) -> ControllerService:
    """Replay wire records through a fresh service, to completion."""
    source = QueueSource()
    source.push(records)
    source.close()
    service = ControllerService(source, config=config)
    service.run()
    return service


def check_replay_determinism(
    scenario: Scenario, config: Optional[StayAwayConfig] = None
) -> dict:
    """The replay-determinism gate: record, replay, diff decisions.

    ``match`` is True iff the replayed service produced the identical
    THROTTLE/RESUME/PROBE_RESUME sequence (same ticks, same kinds,
    same targets) as the in-process controller — plus a clean-stream
    sanity check: a lossless replay must not count a single dropped,
    duplicated, late or imputed record.
    """
    records, reference, _ = record_reference(scenario, config=config)
    service = replay_records(records, config=config)
    replayed = service.decision_sequence()
    stream = service.summary()["telemetry"].get("stream", {})
    clean = all(
        stream.get(key, 0) == 0
        for key in ("dropped", "duplicated", "late", "imputed")
    )
    return {
        "reference_decisions": len(reference),
        "replayed_decisions": len(replayed),
        "match": replayed == reference,
        "clean_stream": clean,
        "first_divergence": next(
            (
                i
                for i, (a, b) in enumerate(zip(reference, replayed))
                if a != b
            ),
            None,
        )
        if replayed != reference
        else None,
        "stream": stream,
    }


__all__ = [
    "SimStreamBridge",
    "StreamChaosMix",
    "StreamComparison",
    "StreamDrillResult",
    "check_replay_determinism",
    "record_reference",
    "replay_records",
    "run_stream_comparison",
    "run_stream_drill",
]
