"""Chaos experiments: run Stay-Away on a deliberately hostile host.

The resilience layer (sensor guard, degraded modes, reconciliation) is
only worth its complexity if it measurably protects the sensitive
application when everything misbehaves at once. This module wires the
full seeded fault mix from :mod:`repro.sim.faults` around a scenario —
sensor corruption between host and controller, QoS-report dropout,
flapping batch containers, lossy actuators, demand spikes — runs it,
and reports the QoS damage plus the resilience layer's own telemetry.

The headline comparison (:func:`run_chaos_comparison`, used by
``benchmarks/bench_robustness_chaos.py``) runs the identical fault
script twice: once with the resilience layer on (default config) and
once with it off (``sensor_guard=False``, ``degraded_mode=False``,
``reconcile_actions=False``). Same seeds, same faults — any difference
in violation ratio is attributable to the resilience layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.config import StayAwayConfig
from repro.core.controller import StayAway
from repro.experiments.scenarios import BuiltScenario, Scenario
from repro.sim.engine import SimulationEngine
from repro.sim.faults import (
    ActuatorFaultInjector,
    ContainerFlapper,
    DemandSpiker,
    InvariantChecker,
    QosDropout,
    SensorCorruptor,
)


@dataclass(frozen=True)
class ChaosMix:
    """Knobs of the seeded fault cocktail.

    Parameters
    ----------
    seed:
        Base seed; each injector derives its own offset so the fault
        script is identical across policies under comparison.
    sensor_corruption:
        Per-tick probability of a corrupted observation (NaN/Inf,
        negative, spike or frozen replay).
    qos_dropout:
        Per-report probability of a swallowed QoS report.
    flap / kill / restart:
        Per-tick probabilities of external pause-toggle, kill and
        supervisor-restart on each batch container.
    actuator_loss:
        Probability a pause/resume signal is silently dropped.
    spike_windows / spike_factor:
        Demand-spike windows for the sensitive application.
    """

    seed: int = 0
    sensor_corruption: float = 0.05
    qos_dropout: float = 0.05
    flap: float = 0.01
    kill: float = 0.0
    restart: float = 0.01
    actuator_loss: float = 0.2
    spike_windows: Tuple[Tuple[int, int], ...] = ()
    spike_factor: float = 2.0


class CrashGuard:
    """Middleware wrapper isolating controller crashes.

    An unguarded controller fed NaN measurements can die outright (the
    MDS placement asserts on non-finite distances). On a real host that
    means the runtime process is gone: nothing resumes the containers
    it paused and nothing protects the sensitive application anymore.
    This wrapper reproduces that: after the first uncaught exception
    the controller is never invoked again — only its QoS tracker keeps
    observing so the violation accounting stays comparable.
    """

    def __init__(self, controller: StayAway) -> None:
        self.controller = controller
        self.crashed_at: Optional[int] = None
        self.error: Optional[str] = None

    def on_tick(self, snapshot, host) -> None:
        if self.crashed_at is not None:
            self.controller.qos.on_tick(snapshot, host)
            return
        try:
            self.controller.on_tick(snapshot, host)
        except Exception as exc:  # noqa: BLE001 — any crash kills the runtime
            self.crashed_at = snapshot.tick
            self.error = repr(exc)


@dataclass
class ChaosResult:
    """Outcome of one chaos run.

    Attributes
    ----------
    scenario / mix:
        What was run and under which fault cocktail.
    built:
        The instantiated host and applications.
    controller:
        The Stay-Away controller that survived (or didn't).
    checker:
        The invariant checker that rode along.
    corruptor / flapper / qos_dropout / actuators / spiker:
        The injectors, for fault-census assertions.
    """

    scenario: Scenario
    mix: ChaosMix
    built: BuiltScenario
    controller: StayAway
    checker: InvariantChecker
    corruptor: SensorCorruptor
    flapper: ContainerFlapper
    qos_dropout: QosDropout
    actuators: ActuatorFaultInjector
    crash_guard: Optional[CrashGuard] = None
    spiker: Optional[DemandSpiker] = None
    faults_injected: int = 0

    @property
    def crashed_at(self) -> Optional[int]:
        """Tick the controller died at (None = survived the run)."""
        return None if self.crash_guard is None else self.crash_guard.crashed_at

    def violation_ratio(self) -> float:
        """Fraction of reported ticks in QoS violation."""
        return self.controller.qos.violation_ratio()

    def summary(self) -> dict:
        """Controller summary + fault census + invariant verdict."""
        return {
            "controller": self.controller.summary(),
            "violation_ratio": self.violation_ratio(),
            "crashed_at": self.crashed_at,
            "faults": {
                "sensor_corruptions": len(self.corruptor.corrupted_ticks),
                "qos_reports_dropped": self.qos_dropout.dropped_reports,
                "container_flaps": len(self.flapper.fired),
                "actuator_drops": len(self.actuators.dropped_signals),
                "total": self.faults_injected,
            },
            "invariants": self.checker.summary(),
        }


def unguarded_config(config: Optional[StayAwayConfig] = None) -> StayAwayConfig:
    """The same controller with the entire resilience layer disabled."""
    base = config if config is not None else StayAwayConfig()
    return replace(
        base, sensor_guard=False, degraded_mode=False, reconcile_actions=False
    )


def run_chaos(
    scenario: Scenario,
    mix: Optional[ChaosMix] = None,
    config: Optional[StayAwayConfig] = None,
) -> ChaosResult:
    """Run a scenario under the chaos mix with a Stay-Away controller.

    Middleware order matters and encodes the threat model:

    1. the **flapper** fires first, so the controller's reconciliation
       sees external drift the same period it happens;
    2. the **controller** observes through the **corruptor** (only its
       view is corrupted — the host truth is intact);
    3. the **invariant checker** runs last, auditing the controller's
       bookkeeping against the host truth after every period.
    """
    mix = mix if mix is not None else ChaosMix()
    built = scenario.build(include_batch=True)
    host = built.host

    controller = StayAway(built.sensitive_app, config=config)
    crash_guard = CrashGuard(controller)
    corruptor = SensorCorruptor(
        crash_guard, seed=mix.seed + 11, probability=mix.sensor_corruption
    )
    qos_dropout = QosDropout(
        built.sensitive_app, probability=mix.qos_dropout, seed=mix.seed + 23
    )
    batch_names = [container.name for container in host.batch_containers()]
    flapper = ContainerFlapper(
        batch_names,
        seed=mix.seed + 37,
        flap_probability=mix.flap,
        kill_probability=mix.kill,
        restart_probability=mix.restart,
    )
    actuators = ActuatorFaultInjector(
        host, seed=mix.seed + 41, probability=mix.actuator_loss
    ).install()
    spiker = (
        DemandSpiker(
            built.sensitive_app,
            windows=list(mix.spike_windows),
            factor=mix.spike_factor,
        )
        if mix.spike_windows
        else None
    )
    checker = InvariantChecker(controller)

    engine = SimulationEngine(host)
    engine.add_middleware(flapper)
    engine.add_middleware(corruptor)  # wraps the controller
    engine.add_middleware(checker)
    try:
        engine.run(ticks=scenario.ticks)
    finally:
        actuators.remove()
        qos_dropout.remove()
        if spiker is not None:
            spiker.remove()

    faults = (
        len(corruptor.corrupted_ticks)
        + qos_dropout.dropped_reports
        + len(flapper.fired)
        + len(actuators.dropped_signals)
    )
    return ChaosResult(
        scenario=scenario,
        mix=mix,
        built=built,
        controller=controller,
        checker=checker,
        corruptor=corruptor,
        flapper=flapper,
        qos_dropout=qos_dropout,
        actuators=actuators,
        crash_guard=crash_guard,
        spiker=spiker,
        faults_injected=faults,
    )


@dataclass
class ChaosComparison:
    """Resilient vs unguarded controller under the identical fault script."""

    resilient: ChaosResult
    unguarded: ChaosResult

    @property
    def improvement(self) -> float:
        """Absolute violation-ratio reduction from the resilience layer."""
        return self.unguarded.violation_ratio() - self.resilient.violation_ratio()

    def summary(self) -> dict:
        return {
            "resilient": self.resilient.summary(),
            "unguarded": self.unguarded.summary(),
            "improvement": self.improvement,
        }


def run_chaos_comparison(
    scenario: Scenario,
    mix: Optional[ChaosMix] = None,
    config: Optional[StayAwayConfig] = None,
) -> ChaosComparison:
    """Run the same seeded chaos twice: resilience on vs off."""
    resilient = run_chaos(scenario, mix=mix, config=config)
    unguarded = run_chaos(scenario, mix=mix, config=unguarded_config(config))
    return ChaosComparison(resilient=resilient, unguarded=unguarded)


__all__ = [
    "ChaosComparison",
    "ChaosMix",
    "ChaosResult",
    "CrashGuard",
    "run_chaos",
    "run_chaos_comparison",
    "unguarded_config",
]
