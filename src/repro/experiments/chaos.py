"""Chaos experiments: run Stay-Away on a deliberately hostile host.

The resilience layer (sensor guard, degraded modes, reconciliation) is
only worth its complexity if it measurably protects the sensitive
application when everything misbehaves at once. This module wires the
full seeded fault mix from :mod:`repro.sim.faults` around a scenario —
sensor corruption between host and controller, QoS-report dropout,
flapping batch containers, lossy actuators, demand spikes — runs it,
and reports the QoS damage plus the resilience layer's own telemetry.

The headline comparison (:func:`run_chaos_comparison`, used by
``benchmarks/bench_robustness_chaos.py``) runs the identical fault
script twice: once with the resilience layer on (default config) and
once with it off (``sensor_guard=False``, ``degraded_mode=False``,
``reconcile_actions=False``). Same seeds, same faults — any difference
in violation ratio is attributable to the resilience layer.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.config import StayAwayConfig
from repro.core.controller import StayAway
from repro.experiments.scenarios import BuiltScenario, Scenario
from repro.fleet import FleetCoordinator
from repro.sim.cluster import MIGRATION_IN_FLIGHT, Cluster
from repro.sim.container import Container
from repro.sim.engine import SimulationEngine
from repro.sim.faults import (
    ActuatorFaultInjector,
    ContainerFlapper,
    DemandSpiker,
    HostCrashInjector,
    InvariantChecker,
    ModelPoisoner,
    QosDropout,
    SensorCorruptor,
    StageExceptionInjector,
    TelemetryBlackout,
)
from repro.sim.host import Host
from repro.workloads.registry import make_workload


@dataclass(frozen=True)
class ChaosMix:
    """Knobs of the seeded fault cocktail.

    Parameters
    ----------
    seed:
        Base seed; each injector derives its own offset so the fault
        script is identical across policies under comparison.
    sensor_corruption:
        Per-tick probability of a corrupted observation (NaN/Inf,
        negative, spike or frozen replay).
    qos_dropout:
        Per-report probability of a swallowed QoS report.
    flap / kill / restart:
        Per-tick probabilities of external pause-toggle, kill and
        supervisor-restart on each batch container.
    actuator_loss:
        Probability a pause/resume signal is silently dropped.
    spike_windows / spike_factor:
        Demand-spike windows for the sensitive application.
    """

    seed: int = 0
    sensor_corruption: float = 0.05
    qos_dropout: float = 0.05
    flap: float = 0.01
    kill: float = 0.0
    restart: float = 0.01
    actuator_loss: float = 0.2
    spike_windows: Tuple[Tuple[int, int], ...] = ()
    spike_factor: float = 2.0


@dataclass(frozen=True)
class ControllerCrash:
    """Forensics of an uncaught controller exception.

    Attributes
    ----------
    tick:
        Tick the runtime died at.
    error_type / message:
        Exception class name and message.
    fault:
        The injected fault's name (``InjectedStageError.fault_name``)
        when the crash was caused by a known injector, else None.
    trace:
        The deepest frame of the traceback (``file:line in func``).
    """

    tick: int
    error_type: str
    message: str
    fault: Optional[str] = None
    trace: Optional[str] = None


class CrashGuard:
    """Middleware wrapper isolating controller crashes.

    An unguarded controller fed NaN measurements can die outright (the
    MDS placement asserts on non-finite distances). On a real host that
    means the runtime process is gone: nothing resumes the containers
    it paused and nothing protects the sensitive application anymore.
    This wrapper reproduces that: after the first uncaught exception
    the controller is never invoked again — only its QoS tracker keeps
    observing so the violation accounting stays comparable. The crash's
    full context (tick, exception, injected-fault name, deepest frame)
    is retained in :attr:`crash` for the experiment report.
    """

    def __init__(self, controller: StayAway) -> None:
        self.controller = controller
        self.crash: Optional[ControllerCrash] = None

    @property
    def crashed_at(self) -> Optional[int]:
        """Tick of the fatal exception (None = still alive)."""
        return None if self.crash is None else self.crash.tick

    @property
    def error(self) -> Optional[str]:
        """``ErrorType: message`` of the fatal exception, if any."""
        if self.crash is None:
            return None
        return f"{self.crash.error_type}: {self.crash.message}"

    def on_tick(self, snapshot, host) -> None:
        if self.crash is not None:
            self.controller.qos.on_tick(snapshot, host)
            return
        try:
            self.controller.on_tick(snapshot, host)
        except Exception as exc:  # sacheck: disable=SA108 -- models the dead runtime: any uncaught controller exception kills the process for the rest of the run
            frames = traceback.extract_tb(exc.__traceback__)
            deepest = frames[-1] if frames else None
            self.crash = ControllerCrash(
                tick=snapshot.tick,
                error_type=type(exc).__name__,
                message=str(exc),
                fault=getattr(exc, "fault_name", None),
                trace=(
                    f"{deepest.filename}:{deepest.lineno} in {deepest.name}"
                    if deepest is not None
                    else None
                ),
            )


@dataclass
class ChaosResult:
    """Outcome of one chaos run.

    Attributes
    ----------
    scenario / mix:
        What was run and under which fault cocktail.
    built:
        The instantiated host and applications.
    controller:
        The Stay-Away controller that survived (or didn't).
    checker:
        The invariant checker that rode along.
    corruptor / flapper / qos_dropout / actuators / spiker:
        The injectors, for fault-census assertions.
    """

    scenario: Scenario
    mix: ChaosMix
    built: BuiltScenario
    controller: StayAway
    checker: InvariantChecker
    corruptor: SensorCorruptor
    flapper: ContainerFlapper
    qos_dropout: QosDropout
    actuators: ActuatorFaultInjector
    crash_guard: Optional[CrashGuard] = None
    spiker: Optional[DemandSpiker] = None
    faults_injected: int = 0

    @property
    def crashed_at(self) -> Optional[int]:
        """Tick the controller died at (None = survived the run)."""
        return None if self.crash_guard is None else self.crash_guard.crashed_at

    def violation_ratio(self) -> float:
        """Fraction of reported ticks in QoS violation."""
        return self.controller.qos.violation_ratio()

    def summary(self) -> dict:
        """Controller summary + fault census + invariant verdict."""
        return {
            "controller": self.controller.summary(),
            "violation_ratio": self.violation_ratio(),
            "crashed_at": self.crashed_at,
            "faults": {
                "sensor_corruptions": len(self.corruptor.corrupted_ticks),
                "qos_reports_dropped": self.qos_dropout.dropped_reports,
                "container_flaps": len(self.flapper.fired),
                "actuator_drops": len(self.actuators.dropped_signals),
                "total": self.faults_injected,
            },
            "invariants": self.checker.summary(),
        }


def unguarded_config(config: Optional[StayAwayConfig] = None) -> StayAwayConfig:
    """The same controller with the entire resilience layer disabled."""
    base = config if config is not None else StayAwayConfig()
    return replace(
        base, sensor_guard=False, degraded_mode=False, reconcile_actions=False
    )


def run_chaos(
    scenario: Scenario,
    mix: Optional[ChaosMix] = None,
    config: Optional[StayAwayConfig] = None,
) -> ChaosResult:
    """Run a scenario under the chaos mix with a Stay-Away controller.

    Middleware order matters and encodes the threat model:

    1. the **flapper** fires first, so the controller's reconciliation
       sees external drift the same period it happens;
    2. the **controller** observes through the **corruptor** (only its
       view is corrupted — the host truth is intact);
    3. the **invariant checker** runs last, auditing the controller's
       bookkeeping against the host truth after every period.
    """
    mix = mix if mix is not None else ChaosMix()
    built = scenario.build(include_batch=True)
    host = built.host

    controller = StayAway(built.sensitive_app, config=config)
    crash_guard = CrashGuard(controller)
    corruptor = SensorCorruptor(
        crash_guard, seed=mix.seed + 11, probability=mix.sensor_corruption
    )
    qos_dropout = QosDropout(
        built.sensitive_app, probability=mix.qos_dropout, seed=mix.seed + 23
    )
    batch_names = [container.name for container in host.batch_containers()]
    flapper = ContainerFlapper(
        batch_names,
        seed=mix.seed + 37,
        flap_probability=mix.flap,
        kill_probability=mix.kill,
        restart_probability=mix.restart,
    )
    actuators = ActuatorFaultInjector(
        host, seed=mix.seed + 41, probability=mix.actuator_loss
    ).install()
    spiker = (
        DemandSpiker(
            built.sensitive_app,
            windows=list(mix.spike_windows),
            factor=mix.spike_factor,
        )
        if mix.spike_windows
        else None
    )
    checker = InvariantChecker(controller)

    engine = SimulationEngine(host)
    engine.add_middleware(flapper)
    engine.add_middleware(corruptor)  # wraps the controller
    engine.add_middleware(checker)
    try:
        engine.run(ticks=scenario.ticks)
    finally:
        actuators.remove()
        qos_dropout.remove()
        if spiker is not None:
            spiker.remove()

    faults = (
        len(corruptor.corrupted_ticks)
        + qos_dropout.dropped_reports
        + len(flapper.fired)
        + len(actuators.dropped_signals)
    )
    return ChaosResult(
        scenario=scenario,
        mix=mix,
        built=built,
        controller=controller,
        checker=checker,
        corruptor=corruptor,
        flapper=flapper,
        qos_dropout=qos_dropout,
        actuators=actuators,
        crash_guard=crash_guard,
        spiker=spiker,
        faults_injected=faults,
    )


@dataclass
class ChaosComparison:
    """Resilient vs unguarded controller under the identical fault script."""

    resilient: ChaosResult
    unguarded: ChaosResult

    @property
    def improvement(self) -> float:
        """Absolute violation-ratio reduction from the resilience layer."""
        return self.unguarded.violation_ratio() - self.resilient.violation_ratio()

    def summary(self) -> dict:
        return {
            "resilient": self.resilient.summary(),
            "unguarded": self.unguarded.summary(),
            "improvement": self.improvement,
        }


def run_chaos_comparison(
    scenario: Scenario,
    mix: Optional[ChaosMix] = None,
    config: Optional[StayAwayConfig] = None,
) -> ChaosComparison:
    """Run the same seeded chaos twice: resilience on vs off."""
    resilient = run_chaos(scenario, mix=mix, config=config)
    unguarded = run_chaos(scenario, mix=mix, config=unguarded_config(config))
    return ChaosComparison(resilient=resilient, unguarded=unguarded)


# ---------------------------------------------------------------------------
# Recovery drills: controller-internal faults, containment on vs off
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ContainmentMix:
    """Knobs of the seeded controller-internal fault cocktail.

    Parameters
    ----------
    seed:
        Base seed; both injectors derive per-tick decisions from it so
        the fault script is identical across policy variants.
    stage_fault:
        Per-period probability that a targeted stage raises.
    stages:
        Stages the probabilistic injector targets.
    fault_windows:
        Scripted ``(start, end, stage)`` windows during which the stage
        fails every period — the deterministic outage that drives a
        breaker through trip, cooldown and recovery.
    poison:
        Per-period probability of one model-poisoning mutation.
    poison_kinds:
        Poison kinds to draw from (None = all).
    """

    seed: int = 0
    stage_fault: float = 0.02
    stages: Tuple[str, ...] = ("map", "predict")
    fault_windows: Tuple[Tuple[int, int, str], ...] = ()
    poison: float = 0.02
    poison_kinds: Optional[Tuple[str, ...]] = None


def uncontained_config(config: Optional[StayAwayConfig] = None) -> StayAwayConfig:
    """The same controller with fault containment disabled.

    No exception firewall, no circuit breakers, no model-health
    watchdog — a stage exception propagates and (under
    :class:`CrashGuard`) kills the runtime, exactly like the naive
    implementation.
    """
    base = config if config is not None else StayAwayConfig()
    return replace(base, fault_containment=False, model_watchdog=False)


@dataclass
class RecoveryDrillResult:
    """Outcome of one recovery drill.

    Attributes
    ----------
    scenario / mix:
        What was run and under which internal-fault cocktail.
    built / controller / checker:
        The instantiated scenario, the controller and the riding
        invariant checker.
    crash_guard:
        Crash forensics (an uncontained run usually dies here).
    injector / poisoner:
        The fault injectors, for fault-census assertions.
    """

    scenario: Scenario
    mix: ContainmentMix
    built: BuiltScenario
    controller: StayAway
    checker: InvariantChecker
    crash_guard: CrashGuard
    injector: StageExceptionInjector
    poisoner: ModelPoisoner

    @property
    def crashed_at(self) -> Optional[int]:
        """Tick the controller died at (None = survived the run)."""
        return self.crash_guard.crashed_at

    @property
    def crash(self) -> Optional[ControllerCrash]:
        """Full crash forensics, if the run died."""
        return self.crash_guard.crash

    def violation_ratio(self) -> float:
        """Fraction of reported ticks in QoS violation."""
        return self.controller.qos.violation_ratio()

    def recovery_times(self) -> list:
        """Trip-to-reset durations (ticks) across all stage breakers."""
        if self.controller.breakers is None:
            return []
        times: list = []
        for breaker in self.controller.breakers.breakers.values():
            times.extend(breaker.recovery_times())
        return times

    def summary(self) -> dict:
        """Controller summary + fault census + containment verdict."""
        times = self.recovery_times()
        containment = self.controller.summary()["telemetry"]["containment"]
        return {
            "controller": self.controller.summary(),
            "violation_ratio": self.violation_ratio(),
            "crashed_at": self.crashed_at,
            "crash": (
                None
                if self.crash is None
                else {
                    "tick": self.crash.tick,
                    "error_type": self.crash.error_type,
                    "message": self.crash.message,
                    "fault": self.crash.fault,
                    "trace": self.crash.trace,
                }
            ),
            "faults": {
                "stage_faults": len(self.injector.fired),
                "poisons": len(self.poisoner.fired),
                "total": len(self.injector.fired) + len(self.poisoner.fired),
            },
            "containment": containment,
            "recovery": {
                "recoveries": len(times),
                "mean_recovery_ticks": (sum(times) / len(times)) if times else 0.0,
                "max_recovery_ticks": max(times) if times else 0,
            },
            "invariants": self.checker.summary(),
        }


def run_recovery_drill(
    scenario: Scenario,
    mix: Optional[ContainmentMix] = None,
    config: Optional[StayAwayConfig] = None,
) -> RecoveryDrillResult:
    """Run a scenario under controller-internal faults.

    Unlike :func:`run_chaos` the environment is healthy — the faults
    live *inside* the controller: stages raise on schedule and the
    learned model is silently poisoned. What is being drilled is the
    containment machinery (firewall, breakers, watchdog), or — with
    :func:`uncontained_config` — its absence.
    """
    mix = mix if mix is not None else ContainmentMix()
    built = scenario.build(include_batch=True)
    host = built.host

    controller = StayAway(built.sensitive_app, config=config)
    crash_guard = CrashGuard(controller)
    injector = StageExceptionInjector(
        controller,
        seed=mix.seed + 53,
        probability=mix.stage_fault,
        stages=mix.stages,
    )
    for start, end, stage in mix.fault_windows:
        injector.during(start, end, stage)
    injector.install()
    poisoner = ModelPoisoner(
        controller,
        seed=mix.seed + 67,
        probability=mix.poison,
        kinds=mix.poison_kinds,
    )
    checker = InvariantChecker(controller)

    engine = SimulationEngine(host)
    engine.add_middleware(crash_guard)
    # The checker audits the controller's own bookkeeping, so it runs
    # before the poisoner: damage injected this tick is the watchdog's
    # to find next period, not an instant invariant breach.
    engine.add_middleware(checker)
    engine.add_middleware(poisoner)
    try:
        engine.run(ticks=scenario.ticks)
    finally:
        injector.remove()

    return RecoveryDrillResult(
        scenario=scenario,
        mix=mix,
        built=built,
        controller=controller,
        checker=checker,
        crash_guard=crash_guard,
        injector=injector,
        poisoner=poisoner,
    )


@dataclass
class RecoveryComparison:
    """Contained vs uncontained controller under identical internal faults."""

    contained: RecoveryDrillResult
    uncontained: RecoveryDrillResult

    @property
    def improvement(self) -> float:
        """Absolute violation-ratio reduction from fault containment."""
        return self.uncontained.violation_ratio() - self.contained.violation_ratio()

    def summary(self) -> dict:
        return {
            "contained": self.contained.summary(),
            "uncontained": self.uncontained.summary(),
            "improvement": self.improvement,
        }


def run_recovery_comparison(
    scenario: Scenario,
    mix: Optional[ContainmentMix] = None,
    config: Optional[StayAwayConfig] = None,
) -> RecoveryComparison:
    """Run the same seeded internal-fault script twice: containment on vs off."""
    contained = run_recovery_drill(scenario, mix=mix, config=config)
    uncontained = run_recovery_drill(
        scenario, mix=mix, config=uncontained_config(config)
    )
    return RecoveryComparison(contained=contained, uncontained=uncontained)


# ---------------------------------------------------------------------------
# Fleet drills: host-failure chaos against the fleet coordinator
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FleetMix:
    """Knobs of one seeded fleet chaos drill.

    Parameters
    ----------
    hosts:
        Fleet size. Hosts cycle through four flavours (``i % 4``):
        heavily bombed, lightly bombed, sensitive-only, and an empty
        spare — the spare capacity is what gives a migrating
        coordinator something a per-host controller does not have.
    ticks:
        Chaos phase length.
    drain_ticks:
        Quiet ticks appended after the chaos phase (no new crashes) so
        in-flight migrations reach a terminal state before the
        no-orphan invariant is checked.
    seed:
        Base seed; crash and blackout decisions derive from it per
        ``(tick, host)`` so the fault script is identical across arms.
    host_crash:
        Per-host per-tick crash probability during the chaos phase.
    recovery_ticks:
        Ticks a crashed host stays down before auto-recovery.
    max_down_fraction:
        Cap on simultaneously down hosts.
    blackout:
        Per-host per-tick probability that the coordinator's telemetry
        for that host goes dark (host itself stays up).
    """

    hosts: int = 12
    ticks: int = 240
    drain_ticks: int = 80
    seed: int = 0
    host_crash: float = 0.002
    recovery_ticks: int = 30
    max_down_fraction: float = 0.3
    blackout: float = 0.01

    def __post_init__(self) -> None:
        if self.hosts < 2:
            raise ValueError("a fleet needs at least 2 hosts")
        if self.ticks < 1 or self.drain_ticks < 0:
            raise ValueError("ticks must be >= 1 and drain_ticks >= 0")


def build_fleet(mix: FleetMix, engine: str = "scalar") -> Tuple[Cluster, dict]:
    """A heterogeneous fleet: bombed, clean and spare hosts.

    Returns the cluster and the ``{host: sensitive app}`` mapping the
    coordinator (or the per-host arm) needs. Each host gets fresh,
    independently seeded application instances. ``engine`` selects the
    cluster stepping path (``"scalar"`` per-host loops, ``"vector"``
    one batched contention resolve per tick — identical snapshots).
    """
    hosts = {}
    sensitive = {}
    for i in range(mix.hosts):
        name = f"host-{i:03d}"
        host = Host()
        flavour = i % 4
        if flavour != 3:
            app = make_workload("webservice-mix", seed=mix.seed + 1000 + i)
            app.name = f"svc-{i:03d}"
            host.add_container(Container(name=app.name, app=app, sensitive=True))
            sensitive[name] = app
        if flavour == 0:
            for j, bomb_kind in enumerate(("cpubomb", "memorybomb")):
                bomb = make_workload(bomb_kind, seed=mix.seed + 2000 + 10 * i + j)
                bomb.name = f"{bomb_kind}-{i:03d}"
                host.add_container(Container(name=bomb.name, app=bomb))
        elif flavour == 1:
            bomb = make_workload("cpubomb", seed=mix.seed + 3000 + i)
            bomb.name = f"cpubomb-{i:03d}"
            host.add_container(Container(name=bomb.name, app=bomb))
        hosts[name] = host
    return Cluster(hosts=hosts, engine=engine), sensitive


class FleetQosAudit:
    """Arm-independent fleet QoS bookkeeping.

    Polls every sensitive app's (idempotent) QoS report each tick,
    outside any blackout wrapper, so all policy arms are measured by
    the same instrument: blacking out the *coordinator's* view must not
    black out the experiment's.
    """

    def __init__(self, sensitive: dict) -> None:
        self.sensitive = dict(sensitive)
        self.reports = 0
        self.violations = 0

    def on_cluster_tick(self, snapshots, cluster) -> None:
        for host_name, app in self.sensitive.items():
            if host_name not in snapshots:
                continue  # host down: no service, but also no report
            report = app.qos_report()
            if report is None:
                continue
            self.reports += 1
            if report.violated:
                self.violations += 1

    def violation_ratio(self) -> float:
        """Fraction of polled reports in violation."""
        if self.reports == 0:
            return 0.0
        return self.violations / self.reports


class ClusterCrashGuard:
    """Catch the first exception escaping a cluster middleware.

    The fleet analogue of :class:`CrashGuard`: the drill must finish
    and report even when the coordinator dies, because "the coordinator
    stayed crash-free end to end" is an assertion the benchmark makes,
    not an assumption it is allowed to bake in. After the first
    exception the inner middleware is never driven again — a dead
    control plane, frozen at its moment of death.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.crashed_at: Optional[int] = None
        self.error: Optional[BaseException] = None

    def on_cluster_tick(self, snapshots, cluster) -> None:
        if self.crashed_at is not None:
            return
        try:
            self.inner.on_cluster_tick(snapshots, cluster)
        except Exception as exc:  # sacheck: disable=SA108 -- crash forensics: the drill must record any coordinator death and keep the cluster running to the end
            self.crashed_at = cluster.clock.tick - 1
            self.error = exc


@dataclass
class FleetDrillResult:
    """Outcome of one fleet chaos drill arm.

    Attributes
    ----------
    mix / arm:
        What was run; arm is ``coordinator`` / ``per-host`` / ``none``.
    cluster / coordinator / audit / crash_injector:
        The run's machinery, for assertions and summaries. The
        coordinator is None in the ``none`` arm.
    guard:
        The :class:`ClusterCrashGuard` around the coordinator (None in
        the ``none`` arm); ``guard.crashed_at`` is the crash-free
        assertion's evidence.
    """

    mix: FleetMix
    arm: str
    cluster: Cluster
    coordinator: Optional[FleetCoordinator]
    audit: FleetQosAudit
    crash_injector: HostCrashInjector
    guard: Optional[ClusterCrashGuard] = None

    @property
    def crashed_at(self) -> Optional[int]:
        """Tick the coordinator died at (None = survived or no arm)."""
        return self.guard.crashed_at if self.guard is not None else None

    def violation_ratio(self) -> float:
        """Fleet-wide sensitive QoS violation ratio (audit instrument)."""
        return self.audit.violation_ratio()

    def orphaned_migrations(self) -> list:
        """Cluster migration records stuck ``in-flight`` after the run."""
        return [
            record
            for record in self.cluster.migrations
            if record.outcome == MIGRATION_IN_FLIGHT
        ]

    def summary(self) -> dict:
        out = {
            "arm": self.arm,
            "hosts": len(self.cluster.hosts),
            "violation_ratio": self.violation_ratio(),
            "crashed_at": self.crashed_at,
            "crashes": self.crash_injector.summary(),
            "migration_records": len(self.cluster.migrations),
            "orphaned_migrations": len(self.orphaned_migrations()),
        }
        if self.coordinator is not None:
            out.update(self.coordinator.summary())
        return out


def run_fleet_drill(
    mix: Optional[FleetMix] = None,
    arm: str = "coordinator",
    config: Optional[StayAwayConfig] = None,
) -> FleetDrillResult:
    """Run one fleet arm under the seeded host-failure script.

    Arms: ``coordinator`` (per-host controllers + scoring + supervised
    migration), ``per-host`` (identical controllers, migration
    disabled) and ``none`` (no prevention at all). The crash/blackout
    script depends only on ``(seed, tick, host)``, so all three arms
    see the same outages. ``config.engine_mode`` picks the cluster
    stepping path (scalar reference or batched vector resolve).
    """
    mix = mix if mix is not None else FleetMix()
    if arm not in ("coordinator", "per-host", "none"):
        raise ValueError(f"unknown arm {arm!r}")
    config = config if config is not None else StayAwayConfig(telemetry=False)
    cluster, sensitive = build_fleet(mix, engine=config.engine_mode)

    audit = FleetQosAudit(sensitive)
    cluster.add_middleware(audit)

    coordinator: Optional[FleetCoordinator] = None
    guard: Optional[ClusterCrashGuard] = None
    if arm != "none":
        coordinator = FleetCoordinator(
            sensitive, config=config, migrate=(arm == "coordinator")
        )
        target = coordinator
        if mix.blackout > 0:
            target = TelemetryBlackout(
                coordinator, seed=mix.seed + 11, probability=mix.blackout
            )
        guard = ClusterCrashGuard(target)
        cluster.add_middleware(guard)

    crash_injector = HostCrashInjector(
        seed=mix.seed + 23,
        probability=mix.host_crash,
        recovery_ticks=mix.recovery_ticks,
        max_down_fraction=mix.max_down_fraction,
    )
    cluster.add_middleware(crash_injector)

    cluster.run(mix.ticks)
    # Drain: stop injecting, let recoveries land and migrations settle.
    crash_injector.probability = 0.0
    cluster.run(mix.drain_ticks)

    return FleetDrillResult(
        mix=mix,
        arm=arm,
        cluster=cluster,
        coordinator=coordinator,
        audit=audit,
        crash_injector=crash_injector,
        guard=guard,
    )


@dataclass
class FleetComparison:
    """All three fleet arms under the identical fault script."""

    coordinator: FleetDrillResult
    per_host: FleetDrillResult
    none: FleetDrillResult

    @property
    def improvement(self) -> float:
        """Violation-ratio reduction of coordinator over per-host-only."""
        return (
            self.per_host.violation_ratio() - self.coordinator.violation_ratio()
        )

    def summary(self) -> dict:
        return {
            "coordinator": self.coordinator.summary(),
            "per_host": self.per_host.summary(),
            "none": self.none.summary(),
            "improvement": self.improvement,
        }


def run_fleet_comparison(
    mix: Optional[FleetMix] = None,
    config: Optional[StayAwayConfig] = None,
) -> FleetComparison:
    """Run the same seeded host-failure script across all three arms."""
    return FleetComparison(
        coordinator=run_fleet_drill(mix, arm="coordinator", config=config),
        per_host=run_fleet_drill(mix, arm="per-host", config=config),
        none=run_fleet_drill(mix, arm="none", config=config),
    )


__all__ = [
    "ChaosComparison",
    "ChaosMix",
    "ChaosResult",
    "ClusterCrashGuard",
    "ContainmentMix",
    "ControllerCrash",
    "CrashGuard",
    "FleetComparison",
    "FleetDrillResult",
    "FleetMix",
    "FleetQosAudit",
    "RecoveryComparison",
    "RecoveryDrillResult",
    "build_fleet",
    "run_chaos",
    "run_chaos_comparison",
    "run_fleet_comparison",
    "run_fleet_drill",
    "run_recovery_drill",
    "run_recovery_comparison",
    "uncontained_config",
    "unguarded_config",
]
