"""Parameter sweeps over scenarios and configurations.

The ablation benches and the sensitivity analyses all follow the same
pattern: vary one knob, rerun the scenario, collect a few scalar
metrics. :func:`sweep_config` and :func:`sweep_scenarios` centralize
that loop with deterministic seeding and uniform result records.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import StayAwayConfig
from repro.experiments.runner import RunResult, run_scenario
from repro.experiments.scenarios import Scenario


@dataclass(frozen=True)
class SweepPoint:
    """One sweep evaluation.

    Attributes
    ----------
    label:
        Human-readable knob setting ("n_samples=5").
    value:
        The raw knob value.
    metrics:
        Extracted scalar metrics.
    """

    label: str
    value: Any
    metrics: Dict[str, float]


def default_metrics(result: RunResult) -> Dict[str, float]:
    """The standard metric set: QoS, violations, utilization, batch work."""
    qos = result.qos_values()
    metrics = {
        "violation_ratio": result.violation_ratio(),
        "mean_utilization": float(result.utilization().mean()),
        "batch_work": result.batch_work_done(),
    }
    # No QoS samples means "nothing measured", not "worst possible QoS";
    # NaN keeps the two distinguishable (rendered as an em-dash).
    metrics["mean_qos"] = float(qos.mean()) if qos.size else float("nan")
    if result.controller is not None:
        metrics["outcome_accuracy"] = result.controller.predictor.outcome_accuracy()
        metrics["throttles"] = float(result.controller.throttle.throttle_count)
        metrics["beta"] = result.controller.throttle.beta
    return metrics


def sweep_config(
    scenario: Scenario,
    parameter: str,
    values: Sequence[Any],
    base_config: Optional[StayAwayConfig] = None,
    metrics: Callable[[RunResult], Dict[str, float]] = default_metrics,
) -> List[SweepPoint]:
    """Sweep one StayAwayConfig field across ``values``.

    Each point reruns the scenario under Stay-Away with only that field
    changed (plus a seed that stays fixed, so differences are
    attributable to the knob).
    """
    base = base_config if base_config is not None else StayAwayConfig()
    if parameter not in {f.name for f in dataclasses.fields(StayAwayConfig)}:
        raise ValueError(f"unknown StayAwayConfig field {parameter!r}")
    points: List[SweepPoint] = []
    for value in values:
        config = dataclasses.replace(base, **{parameter: value})
        result = run_scenario(scenario, policy="stayaway", config=config)
        points.append(
            SweepPoint(
                label=f"{parameter}={value}",
                value=value,
                metrics=metrics(result),
            )
        )
    return points


def sweep_scenarios(
    scenarios: Iterable[Tuple[str, Scenario]],
    policy: str = "stayaway",
    config: Optional[StayAwayConfig] = None,
    metrics: Callable[[RunResult], Dict[str, float]] = default_metrics,
) -> List[SweepPoint]:
    """Evaluate one policy across many ``(label, scenario)`` pairs."""
    points: List[SweepPoint] = []
    for label, scenario in scenarios:
        result = run_scenario(scenario, policy=policy, config=config)
        points.append(
            SweepPoint(label=label, value=label, metrics=metrics(result))
        )
    return points


def sweep_table(points: Sequence[SweepPoint]) -> str:
    """Render sweep points as an aligned text table."""
    from repro.analysis.reports import ascii_table

    if not points:
        return "(empty sweep)"
    # Mixed-policy sweeps yield heterogeneous metric sets (only the
    # stayaway points carry controller metrics); the columns are the
    # union, and a metric a point never measured renders as an em-dash
    # rather than a fabricated 0.0.
    metric_names = sorted({name for point in points for name in point.metrics})

    def cell(point: SweepPoint, name: str) -> str:
        value = point.metrics.get(name)
        if value is None or value != value:
            return "—"
        return f"{value:.4g}"

    rows = [
        [point.label] + [cell(point, name) for name in metric_names]
        for point in points
    ]
    return ascii_table(["setting"] + metric_names, rows)
