"""Experiment harness: scenario builders and standard runners.

Every evaluation figure/table boils down to "co-locate sensitive app X
with batch app(s) Y under trace Z and compare policies". This package
centralizes that recipe so the benchmarks, the examples and the
integration tests all drive the exact same machinery:

* :class:`~repro.experiments.scenarios.Scenario` — a declarative
  description of one co-location experiment;
* :mod:`repro.experiments.runner` — run a scenario isolated / unmanaged
  / under Stay-Away / under the ablation baselines, returning aligned
  QoS and utilization series;
* :mod:`repro.experiments.headtohead` — the detector head-to-head
  study: geometry vs GMM thresholds vs hybrid, scored for precision,
  recall, false-positive rate and violation lead-time.
"""

from repro.experiments.chaos import (
    ChaosComparison,
    ChaosMix,
    ChaosResult,
    run_chaos,
    run_chaos_comparison,
    unguarded_config,
)
from repro.experiments.headtohead import (
    DETECTOR_ARMS,
    ArmResult,
    HeadToHead,
    quick_suite,
    run_arm,
    run_headtohead,
    run_study,
    standard_suite,
    study_table,
)
from repro.experiments.runner import (
    RunResult,
    TrioResult,
    run_gmm,
    run_hybrid,
    run_isolated,
    run_reactive,
    run_scenario,
    run_stayaway,
    run_trio,
    run_unmanaged,
)
from repro.experiments.recorder import RunRecorder, TickRecord
from repro.experiments.scenarios import BuiltScenario, Scenario
from repro.experiments.sweep import (
    SweepPoint,
    sweep_config,
    sweep_scenarios,
    sweep_table,
)

__all__ = [
    "ArmResult",
    "BuiltScenario",
    "ChaosComparison",
    "ChaosMix",
    "ChaosResult",
    "DETECTOR_ARMS",
    "HeadToHead",
    "RunRecorder",
    "RunResult",
    "Scenario",
    "SweepPoint",
    "TickRecord",
    "TrioResult",
    "quick_suite",
    "run_arm",
    "run_headtohead",
    "run_study",
    "standard_suite",
    "study_table",
    "sweep_config",
    "sweep_scenarios",
    "sweep_table",
    "run_chaos",
    "run_chaos_comparison",
    "run_gmm",
    "run_hybrid",
    "run_isolated",
    "run_reactive",
    "run_scenario",
    "run_stayaway",
    "run_trio",
    "run_unmanaged",
    "unguarded_config",
]
