"""Experiment harness: scenario builders and standard runners.

Every evaluation figure/table boils down to "co-locate sensitive app X
with batch app(s) Y under trace Z and compare policies". This package
centralizes that recipe so the benchmarks, the examples and the
integration tests all drive the exact same machinery:

* :class:`~repro.experiments.scenarios.Scenario` — a declarative
  description of one co-location experiment;
* :mod:`repro.experiments.runner` — run a scenario isolated / unmanaged
  / under Stay-Away / under the ablation baselines, returning aligned
  QoS and utilization series.
"""

from repro.experiments.chaos import (
    ChaosComparison,
    ChaosMix,
    ChaosResult,
    run_chaos,
    run_chaos_comparison,
    unguarded_config,
)
from repro.experiments.runner import (
    RunResult,
    TrioResult,
    run_isolated,
    run_reactive,
    run_scenario,
    run_stayaway,
    run_trio,
    run_unmanaged,
)
from repro.experiments.recorder import RunRecorder, TickRecord
from repro.experiments.scenarios import BuiltScenario, Scenario
from repro.experiments.sweep import (
    SweepPoint,
    sweep_config,
    sweep_scenarios,
    sweep_table,
)

__all__ = [
    "BuiltScenario",
    "ChaosComparison",
    "ChaosMix",
    "ChaosResult",
    "RunRecorder",
    "RunResult",
    "Scenario",
    "SweepPoint",
    "TickRecord",
    "TrioResult",
    "sweep_config",
    "sweep_scenarios",
    "sweep_table",
    "run_chaos",
    "run_chaos_comparison",
    "run_isolated",
    "run_reactive",
    "run_scenario",
    "run_stayaway",
    "run_trio",
    "run_unmanaged",
    "unguarded_config",
]
