"""Declarative co-location scenarios.

A :class:`Scenario` captures everything that defines one experiment:
the sensitive workload, the batch co-tenants (Table 1 combinations are
just multi-entry batch lists), the client trace, the run length and the
host. :meth:`Scenario.build` instantiates fresh application objects so
a scenario can be rerun under different policies without state leaking
between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.sim.container import Container
from repro.sim.host import Host
from repro.sim.resources import ResourceVector
from repro.workloads.base import Application
from repro.workloads.registry import make_workload
from repro.workloads.traces import WorkloadTrace, wikipedia_trace


@dataclass(frozen=True)
class BuiltScenario:
    """Instantiated host + applications, ready to run.

    Attributes
    ----------
    host:
        A fresh host with all containers admitted.
    sensitive_app:
        The (single) sensitive application instance.
    batch_apps:
        The batch application instances, in scenario order.
    """

    host: Host
    sensitive_app: Application
    batch_apps: Tuple[Application, ...]


@dataclass(frozen=True)
class Scenario:
    """One co-location experiment description.

    Parameters
    ----------
    sensitive:
        Registry name of the sensitive workload.
    batches:
        Registry names of the batch co-tenants ("Batch-1" of Table 1 is
        ``("twitter-analysis", "soplex")``).
    ticks:
        Run length in ticks.
    batch_start:
        Tick at which batch containers begin executing (the paper's
        staggered lifecycles: the sensitive service is already running
        when the batch job is scheduled).
    trace:
        Client-load trace for the sensitive app; ``None`` selects a
        one-day Wikipedia diurnal trace compressed to the run length.
    sensitive_kwargs / batch_kwargs:
        Extra constructor arguments (``batch_kwargs[i]`` applies to
        ``batches[i]``).
    capacity:
        Host capacity override (defaults to the paper's testbed).
    seed:
        Base RNG seed; each application derives its own offset.
    """

    sensitive: str = "vlc-streaming"
    batches: Tuple[str, ...] = ("cpubomb",)
    ticks: int = 1200
    batch_start: int = 60
    trace: Optional[WorkloadTrace] = None
    sensitive_kwargs: Dict = field(default_factory=dict)
    batch_kwargs: Tuple[Dict, ...] = ()
    capacity: Optional[ResourceVector] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ValueError("ticks must be >= 1")
        if self.batch_start < 0:
            raise ValueError("batch_start must be >= 0")
        if self.batch_kwargs and len(self.batch_kwargs) != len(self.batches):
            raise ValueError(
                f"{len(self.batch_kwargs)} batch_kwargs for {len(self.batches)} batches"
            )

    def default_trace(self) -> WorkloadTrace:
        """One diurnal day compressed into the scenario's run length.

        The trough is deepened (base 0.05) relative to the raw
        Wikipedia shape so a single compressed day exhibits the clear
        low-utilization valleys the paper's multi-day trace shows.
        """
        sample_seconds = max(1.0, self.ticks / 24.0)
        return wikipedia_trace(
            days=2, sample_seconds=sample_seconds, base=0.05, seed=self.seed + 7
        )

    def with_batches(self, *batches: str) -> "Scenario":
        """A copy of this scenario with different batch co-tenants."""
        return replace(self, batches=tuple(batches), batch_kwargs=())

    def build(self, include_batch: bool = True) -> BuiltScenario:
        """Instantiate fresh applications and a fresh host.

        Parameters
        ----------
        include_batch:
            When False only the sensitive container is admitted (the
            isolated-utilization baseline).
        """
        trace = self.trace if self.trace is not None else self.default_trace()
        sensitive_app = make_workload(
            self.sensitive,
            seed=self.seed + 100,
            trace=trace,
            **dict(self.sensitive_kwargs),
        )
        host = Host(capacity=self.capacity)
        host.add_container(
            Container(name=sensitive_app.name, app=sensitive_app, sensitive=True)
        )
        batch_apps: List[Application] = []
        if include_batch:
            for i, batch_name in enumerate(self.batches):
                kwargs = dict(self.batch_kwargs[i]) if self.batch_kwargs else {}
                app = make_workload(batch_name, seed=self.seed + 200 + i, **kwargs)
                # Distinct container names even when the same workload
                # appears twice.
                container_name = app.name if app.name not in host.containers else (
                    f"{app.name}-{i}"
                )
                app.name = container_name
                host.add_container(
                    Container(
                        name=container_name,
                        app=app,
                        sensitive=False,
                        start_tick=self.batch_start,
                    )
                )
                batch_apps.append(app)
        return BuiltScenario(
            host=host, sensitive_app=sensitive_app, batch_apps=tuple(batch_apps)
        )
