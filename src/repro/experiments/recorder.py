"""Run recording: serialize a run's observable history for offline analysis.

A :class:`RunRecorder` middleware captures per-tick host usage, QoS and
controller state into plain records that can be written to JSON-lines
and reloaded later — useful for comparing runs across code versions,
shipping reproduction artifacts, or debugging a single interesting run
without rerunning it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.controller import StayAway
from repro.sim.host import Host, HostSnapshot
from repro.sim.resources import Resource


@dataclass(frozen=True)
class TickRecord:
    """One tick's observable state, JSON-safe."""

    tick: int
    usage: Dict[str, Dict[str, float]]
    states: Dict[str, str]
    swap_ratio: float
    qos: Optional[float] = None
    violated: Optional[bool] = None
    throttling: Optional[bool] = None
    mapped_coords: Optional[List[float]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "usage": self.usage,
            "states": self.states,
            "swap_ratio": self.swap_ratio,
            "qos": self.qos,
            "violated": self.violated,
            "throttling": self.throttling,
            "mapped_coords": self.mapped_coords,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TickRecord":
        return cls(
            tick=int(data["tick"]),
            usage={k: dict(v) for k, v in data["usage"].items()},
            states=dict(data["states"]),
            swap_ratio=float(data["swap_ratio"]),
            qos=data.get("qos"),
            violated=data.get("violated"),
            throttling=data.get("throttling"),
            mapped_coords=data.get("mapped_coords"),
        )


class RunRecorder:
    """Middleware capturing every tick into :class:`TickRecord` entries.

    Parameters
    ----------
    controller:
        Optional Stay-Away controller; when given, QoS, violation,
        throttle status and the latest mapped coordinates are recorded
        alongside the raw host state.
    """

    def __init__(self, controller: Optional[StayAway] = None) -> None:
        self.controller = controller
        self.records: List[TickRecord] = []

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """Capture one tick (register after the controller middleware)."""
        usage = {
            name: {
                resource.value: vector.get(resource) for resource in Resource
            }
            for name, vector in snapshot.usage.items()
        }
        states = {name: state.value for name, state in snapshot.states.items()}
        qos = violated = throttling = coords = None
        if self.controller is not None:
            report = self.controller.qos.last_report
            if report is not None:
                qos = report.value
                violated = report.violated
            throttling = self.controller.throttle.throttling
            if self.controller.trajectory:
                last = self.controller.trajectory[-1]
                if last.tick == snapshot.tick:
                    coords = [float(last.coords[0]), float(last.coords[1])]
        self.records.append(
            TickRecord(
                tick=snapshot.tick,
                usage=usage,
                states=states,
                swap_ratio=snapshot.swap_ratio,
                qos=qos,
                violated=violated,
                throttling=throttling,
                mapped_coords=coords,
            )
        )

    # -- persistence --------------------------------------------------------
    def save_jsonl(self, path: Union[str, Path]) -> Path:
        """Write one JSON object per tick."""
        path = Path(path)
        with path.open("w") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return path

    @staticmethod
    def load_jsonl(path: Union[str, Path]) -> List[TickRecord]:
        """Read records written by :meth:`save_jsonl`."""
        records: List[TickRecord] = []
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(TickRecord.from_dict(json.loads(line)))
        return records

    # -- quick accessors ----------------------------------------------------
    def qos_values(self) -> List[float]:
        """All non-None QoS readings in tick order."""
        return [r.qos for r in self.records if r.qos is not None]

    def throttled_ticks(self) -> List[int]:
        """Ticks during which the controller was throttling."""
        return [r.tick for r in self.records if r.throttling]
