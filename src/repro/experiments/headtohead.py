"""Head-to-head detector study: geometry vs GMM thresholds vs hybrid.

ROADMAP item: test the paper's central bet — that MDS geometry over
mapped states predicts interference better than threshold rules —
against a production-grade detector, the per-utilization-bin GMM
threshold learner (:mod:`repro.baselines.gmm_threshold`).

The protocol per (scenario, arm):

1. **Shadow run** — the arm's detector observes but never actuates
   (``config.enabled=False``), so the ground-truth violation episodes
   unfold exactly as in an unmanaged run. The alarm stream is scored
   against those episodes with
   :func:`~repro.analysis.accuracy.score_detector`: precision, recall,
   false-positive rate and violation lead-time in ticks.
2. **Actuated run** — the same arm with actuation on; its violation
   ratio measures what the detector's alarms are worth once they drive
   the pause/resume surface.

Because no shadow detector acts, all three arms score against the
*same* unfolding of the scenario — the comparison is apples-to-apples
by construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.accuracy import DetectorScorecard, score_detector
from repro.core.config import StayAwayConfig
from repro.experiments.runner import RunResult, run_scenario
from repro.experiments.scenarios import Scenario

#: The study's detector arms, in report order.
DETECTOR_ARMS: Tuple[str, ...] = ("geometry", "gmm", "hybrid")

#: Policy each arm runs under.
_ARM_POLICY: Dict[str, str] = {
    "geometry": "stayaway",
    "gmm": "gmm",
    "hybrid": "hybrid",
}

#: Default alarm-to-violation credit window (ticks).
DEFAULT_HORIZON = 12


def standard_suite(ticks: int = 1200, seed: int = 0) -> List[Tuple[str, Scenario]]:
    """The full head-to-head scenario suite.

    Covers every sensitive archetype against CPU, memory-subsystem and
    trace-driven batch co-tenants — the same workload families the
    paper's evaluation figures use.
    """
    return [
        (
            "vlc+cpubomb",
            Scenario(sensitive="vlc-streaming", batches=("cpubomb",),
                     ticks=ticks, seed=seed),
        ),
        (
            "vlc+twitter",
            Scenario(sensitive="vlc-streaming", batches=("twitter-analysis",),
                     ticks=ticks, seed=seed + 1),
        ),
        (
            "vlc+membomb",
            Scenario(sensitive="vlc-streaming", batches=("memorybomb",),
                     ticks=ticks, seed=seed + 2),
        ),
        (
            "webcpu+cpubomb",
            Scenario(sensitive="webservice-cpu", batches=("cpubomb",),
                     ticks=ticks, seed=seed + 3),
        ),
        (
            "webmem+membomb",
            Scenario(sensitive="webservice-memory", batches=("memorybomb",),
                     ticks=ticks, seed=seed + 4),
        ),
        (
            "webmix+soplex",
            Scenario(sensitive="webservice-mix", batches=("soplex", "cpubomb"),
                     ticks=ticks, seed=seed + 5),
        ),
    ]


def quick_suite(ticks: int = 400, seed: int = 0) -> List[Tuple[str, Scenario]]:
    """A two-scenario subset for CI smoke runs."""
    return standard_suite(ticks=ticks, seed=seed)[:2]


@dataclass(frozen=True)
class ArmResult:
    """One detector arm on one scenario.

    Attributes
    ----------
    arm:
        "geometry" / "gmm" / "hybrid".
    scorecard:
        Alarm-quality scores from the shadow run.
    violation_ratio:
        QoS-violation ratio of the *actuated* run.
    throttles:
        Throttle rounds the actuated run fired.
    shadow / actuated:
        The underlying runs (kept for figures and debugging).
    """

    arm: str
    scorecard: DetectorScorecard
    violation_ratio: float
    throttles: int
    shadow: RunResult
    actuated: RunResult


@dataclass(frozen=True)
class HeadToHead:
    """All arms of one scenario, ready for the study table."""

    label: str
    scenario: Scenario
    arms: Dict[str, ArmResult]

    def hybrid_no_worse(self) -> bool:
        """The acceptance gate: hybrid's violation ratio must not
        exceed geometry-only's on this scenario."""
        return (
            self.arms["hybrid"].violation_ratio
            <= self.arms["geometry"].violation_ratio
        )


def _arm_config(arm: str, base: Optional[StayAwayConfig], enabled: bool) -> StayAwayConfig:
    config = base if base is not None else StayAwayConfig()
    mode = {"geometry": "geometry", "gmm": "gmm", "hybrid": "hybrid"}[arm]
    return dataclasses.replace(config, detector_mode=mode, enabled=enabled)


def run_arm(
    scenario: Scenario,
    arm: str,
    config: Optional[StayAwayConfig] = None,
    horizon: int = DEFAULT_HORIZON,
) -> ArmResult:
    """Shadow-score one arm on one scenario, then measure it actuated."""
    if arm not in DETECTOR_ARMS:
        raise ValueError(f"unknown detector arm {arm!r}; have {DETECTOR_ARMS}")
    policy = _ARM_POLICY[arm]
    shadow = run_scenario(
        scenario, policy=policy, config=_arm_config(arm, config, enabled=False)
    )
    scorecard = score_detector(
        shadow.alarm_ticks(),
        shadow.qos.violation_ticks,
        total_ticks=scenario.ticks,
        detector=arm,
        horizon=horizon,
    )
    actuated = run_scenario(
        scenario, policy=policy, config=_arm_config(arm, config, enabled=True)
    )
    if actuated.controller is not None:
        throttles = actuated.controller.throttle.throttle_count
    elif actuated.gmm is not None:
        throttles = actuated.gmm.throttle_count
    else:
        throttles = 0
    return ArmResult(
        arm=arm,
        scorecard=scorecard,
        violation_ratio=actuated.violation_ratio(),
        throttles=throttles,
        shadow=shadow,
        actuated=actuated,
    )


def run_headtohead(
    label: str,
    scenario: Scenario,
    config: Optional[StayAwayConfig] = None,
    horizon: int = DEFAULT_HORIZON,
    arms: Sequence[str] = DETECTOR_ARMS,
) -> HeadToHead:
    """All detector arms on one scenario."""
    results = {
        arm: run_arm(scenario, arm, config=config, horizon=horizon) for arm in arms
    }
    return HeadToHead(label=label, scenario=scenario, arms=results)


def run_study(
    suite: Optional[Sequence[Tuple[str, Scenario]]] = None,
    config: Optional[StayAwayConfig] = None,
    horizon: int = DEFAULT_HORIZON,
) -> List[HeadToHead]:
    """The full study: every suite scenario under every arm."""
    suite = suite if suite is not None else standard_suite()
    return [
        run_headtohead(label, scenario, config=config, horizon=horizon)
        for label, scenario in suite
    ]


def _fmt(value: float, spec: str = ".3f") -> str:
    """NaN-aware cell formatting (— for 'no data', matching sweep_table)."""
    if value != value:
        return "—"
    return format(value, spec)


def study_table(results: Sequence[HeadToHead]) -> str:
    """Render the study as the head-to-head comparison table."""
    from repro.analysis.reports import ascii_table

    rows = []
    for result in results:
        for arm in DETECTOR_ARMS:
            if arm not in result.arms:
                continue
            arm_result = result.arms[arm]
            card = arm_result.scorecard
            rows.append([
                result.label,
                arm,
                _fmt(card.precision),
                _fmt(card.recall),
                _fmt(card.false_positive_rate, ".4f"),
                _fmt(card.mean_lead_time, ".1f"),
                f"{arm_result.violation_ratio:.2%}",
                arm_result.throttles,
            ])
    return ascii_table(
        ["scenario", "detector", "precision", "recall", "fp rate",
         "lead ticks", "violations", "throttles"],
        rows,
    )
