"""Paper-figure builders: turn run results into SVG graphics.

Each function mirrors one figure family of the evaluation:

* :func:`state_space_figure` — Figs. 5-7, 17-18: the 2-D map with modes,
  safe/violation states and violation-range discs;
* :func:`qos_figure` — Figs. 8-9, 14-16: normalized QoS over time with
  the threshold line, with/without Stay-Away;
* :func:`gained_utilization_figure` — Figs. 10-11: upper (unmanaged)
  and lower (Stay-Away) gain bands;
* :func:`timeline_figure` — Fig. 13: sensitive stress plus batch
  execution/throttle bands.

All return SVG strings; pass ``path`` to also write the file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.analysis.svg import PALETTE, Plot
from repro.core.controller import StayAway
from repro.trajectory.modes import ExecutionMode

_MODE_COLORS: Dict[ExecutionMode, str] = {
    ExecutionMode.IDLE: "#999999",
    ExecutionMode.SENSITIVE_ONLY: PALETTE[0],
    ExecutionMode.BATCH_ONLY: PALETTE[2],
    ExecutionMode.COLOCATED: PALETTE[1],
}


def _maybe_save(svg: str, path: Optional[Union[str, Path]]) -> str:
    if path is not None:
        Path(path).write_text(svg)
    return svg


def state_space_figure(
    controller: StayAway,
    title: str = "Mapped state space",
    show_ranges: bool = True,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """The 2-D map: per-mode trajectory points, violation states + ranges."""
    plot = Plot(title=title, xlabel="x", ylabel="y", width=640, height=480)

    by_mode: Dict[ExecutionMode, list] = {}
    for point in controller.trajectory:
        by_mode.setdefault(point.mode, []).append(point.coords)
    for mode, coords in by_mode.items():
        coords = np.vstack(coords)
        plot.scatter(
            coords[:, 0], coords[:, 1],
            label=mode.value, color=_MODE_COLORS[mode], marker_size=2.2,
        )

    space = controller.state_space
    violations = space.violation_indices
    if violations.size:
        violation_coords = space.coords[violations]
        plot.scatter(
            violation_coords[:, 0], violation_coords[:, 1],
            label="violation-state", color="#D55E00", marker_size=4.5,
        )
        if show_ranges:
            # Render each violation-range disc as a sampled circle.
            for center, radius in space.violation_ranges():
                if radius <= 0:
                    continue
                theta = np.linspace(0, 2 * np.pi, 48)
                plot.line(
                    center[0] + radius * np.cos(theta),
                    center[1] + radius * np.sin(theta),
                    color="#D55E00",
                )
    return _maybe_save(plot.render(), path)


def qos_figure(
    unmanaged_qos: np.ndarray,
    stayaway_qos: np.ndarray,
    threshold: float,
    title: str = "Normalized QoS",
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Figs. 8-9 / 14-16: QoS with and without Stay-Away vs the threshold."""
    plot = Plot(title=title, xlabel="time (ticks)", ylabel="normalized QoS")
    unmanaged_qos = np.asarray(unmanaged_qos, float)
    stayaway_qos = np.asarray(stayaway_qos, float)
    if unmanaged_qos.size:
        plot.line(np.arange(unmanaged_qos.size), unmanaged_qos,
                  label="without Stay-Away", color=PALETTE[3])
    if stayaway_qos.size:
        plot.line(np.arange(stayaway_qos.size), stayaway_qos,
                  label="with Stay-Away", color=PALETTE[0])
    plot.hline(threshold, label="QoS threshold")
    return _maybe_save(plot.render(), path)


def gained_utilization_figure(
    unmanaged_gain: np.ndarray,
    stayaway_gain: np.ndarray,
    title: str = "Gained utilization",
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Figs. 10-11: the two gain bands in percentage points."""
    plot = Plot(title=title, xlabel="time (ticks)",
                ylabel="gained utilization (pp)")
    unmanaged_gain = np.asarray(unmanaged_gain, float)
    stayaway_gain = np.asarray(stayaway_gain, float)
    x = np.arange(unmanaged_gain.size)
    if unmanaged_gain.size:
        plot.band(x, np.zeros_like(unmanaged_gain), unmanaged_gain,
                  label="upper band (no prevention)", color=PALETTE[3])
    if stayaway_gain.size:
        plot.band(np.arange(stayaway_gain.size),
                  np.zeros_like(stayaway_gain), stayaway_gain,
                  label="lower band (Stay-Away)", color=PALETTE[0])
    return _maybe_save(plot.render(), path)


def timeline_figure(
    controller: StayAway,
    title: str = "Execution timeline",
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Fig. 13: sensitive stress curve + batch throttle shading."""
    plot = Plot(title=title, xlabel="time (ticks)", ylabel="stress (1 - QoS)")
    qos = controller.qos.qos_series
    if len(qos):
        plot.line(qos.ticks, 1.0 - qos.values, label="sensitive stress",
                  color=PALETTE[3])
    throttled = [
        (point.tick, point.throttling) for point in controller.trajectory
    ]
    if throttled:
        ticks = np.asarray([tick for tick, _ in throttled], float)
        running = np.asarray(
            [0.0 if is_throttled else 1.0 for _, is_throttled in throttled]
        )
        # Batch execution shading as a 0/0.15-height band at the bottom.
        plot.band(ticks, np.zeros_like(running), running * 0.15,
                  label="batch executing", color=PALETTE[2])
    return _maybe_save(plot.render(), path)
