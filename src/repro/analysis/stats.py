"""Small statistics helpers used by the analysis code and benches.

Implemented here (rather than pulling a stats dependency) because the
needs are narrow: summary statistics with bootstrap confidence
intervals for run-level metrics, and a couple of robust estimators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Mean with a bootstrap confidence interval.

    Attributes
    ----------
    mean / median / std:
        Standard moments of the sample.
    ci_low / ci_high:
        Bootstrap percentile confidence interval of the mean.
    n:
        Sample size.
    """

    mean: float
    median: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.4g} (95% CI [{self.ci_low:.4g}, {self.ci_high:.4g}],"
            f" n={self.n})"
        )


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: Optional[int] = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``values``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if values.size == 1:
        return float(values[0]), float(values[0])
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


def summarize(values: Sequence[float], confidence: float = 0.95) -> SummaryStats:
    """Full summary with bootstrap CI."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    ci_low, ci_high = bootstrap_mean_ci(values, confidence=confidence)
    return SummaryStats(
        mean=float(values.mean()),
        median=float(np.median(values)),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        ci_low=ci_low,
        ci_high=ci_high,
        n=int(values.size),
    )


def median_absolute_deviation(values: Sequence[float]) -> float:
    """Robust spread estimator (MAD, unscaled)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("empty sample")
    return float(np.median(np.abs(values - np.median(values))))


def mann_whitney_u(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[float, float]:
    """Mann-Whitney U statistic and a normal-approximation p-value.

    Used to check whether two run populations (e.g. violation ratios
    across seeds under two policies) differ. Two-sided.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    combined = np.concatenate([a, b])
    ranks = np.empty_like(combined)
    order = np.argsort(combined, kind="mergesort")
    sorted_values = combined[order]
    # Midranks for ties.
    i = 0
    position = 1.0
    while i < sorted_values.size:
        j = i
        while j + 1 < sorted_values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        midrank = (position + position + (j - i)) / 2.0
        ranks[order[i:j + 1]] = midrank
        position += j - i + 1
        i = j + 1
    rank_sum_a = ranks[: a.size].sum()
    u_a = rank_sum_a - a.size * (a.size + 1) / 2.0
    mean_u = a.size * b.size / 2.0
    std_u = np.sqrt(a.size * b.size * (a.size + b.size + 1) / 12.0)
    if std_u == 0:
        return float(u_a), 1.0
    z = (u_a - mean_u) / std_u
    # Two-sided p from the standard normal.
    from math import erfc, sqrt

    p = erfc(abs(z) / sqrt(2.0))
    return float(u_a), float(p)
