"""QoS statistics over a run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.monitoring.qos import QosTracker


def normalized_qos_series(tracker: QosTracker) -> np.ndarray:
    """The sensitive application's normalized QoS per reported tick.

    1.0 means full service; the violation threshold is the app's
    ``qos_threshold`` — the horizontal line in Figs. 8-9 and 14-16.
    """
    return tracker.qos_series.values


@dataclass(frozen=True)
class QosStats:
    """Summary of a run's QoS behaviour.

    Attributes
    ----------
    ticks:
        Reported ticks.
    mean_qos:
        Mean normalized QoS.
    min_qos:
        Worst tick.
    violations:
        Number of violating ticks.
    violation_ratio:
        Fraction of ticks in violation.
    early_violation_ratio:
        Fraction of all violations that happened in the first
        ``early_window`` ticks — the paper's observation that with
        Stay-Away "most violations seen are in the early phase of
        execution" (§7.2).
    """

    ticks: int
    mean_qos: float
    min_qos: float
    violations: int
    violation_ratio: float
    early_violation_ratio: float


def compute_qos_stats(
    tracker: QosTracker, early_window: Optional[int] = None
) -> QosStats:
    """Summarize a tracker's QoS history.

    Parameters
    ----------
    early_window:
        Tick horizon defining "early" violations; defaults to the first
        quarter of the run.
    """
    values = tracker.qos_series.values
    ticks = values.size
    if ticks == 0:
        return QosStats(0, 0.0, 0.0, 0, 0.0, 0.0)
    if early_window is None:
        early_window = max(1, ticks // 4)
    first_tick = int(tracker.qos_series.ticks[0])
    early_cutoff = first_tick + early_window
    violations = tracker.violation_count
    early = sum(1 for tick in tracker.violation_ticks if tick < early_cutoff)
    return QosStats(
        ticks=ticks,
        mean_qos=float(values.mean()),
        min_qos=float(values.min()),
        violations=violations,
        violation_ratio=violations / ticks,
        early_violation_ratio=(early / violations) if violations else 0.0,
    )
