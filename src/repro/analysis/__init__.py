"""Analysis: utilization, QoS statistics, prediction accuracy, reports.

These are the measurement tools the evaluation (§7) is built from:
machine-utilization series and gained-utilization bands (Figs. 10-12),
normalized QoS series and violation statistics (Figs. 8-9, 14-16),
prediction-accuracy summaries (§3.2.3's >90% claim) and plain-text
table/series rendering for the benchmark harness output.
"""

from repro.analysis.accuracy import (
    AccuracySummary,
    DetectorScorecard,
    score_detector,
    summarize_accuracy,
    violation_episodes,
)
from repro.analysis.qos_stats import QosStats, compute_qos_stats, normalized_qos_series
from repro.analysis.reports import (
    ascii_table,
    render_scatter,
    render_series,
    render_timeline_bands,
)
from repro.analysis.figures import (
    gained_utilization_figure,
    qos_figure,
    state_space_figure,
    timeline_figure,
)
from repro.analysis.stats import (
    SummaryStats,
    bootstrap_mean_ci,
    mann_whitney_u,
    median_absolute_deviation,
    summarize,
)
from repro.analysis.svg import Plot, SvgCanvas
from repro.analysis.utilization import (
    UtilizationComparison,
    compare_utilization,
    gained_utilization_series,
    utilization_series,
)

__all__ = [
    "AccuracySummary",
    "DetectorScorecard",
    "score_detector",
    "violation_episodes",
    "Plot",
    "QosStats",
    "SummaryStats",
    "SvgCanvas",
    "UtilizationComparison",
    "ascii_table",
    "bootstrap_mean_ci",
    "mann_whitney_u",
    "median_absolute_deviation",
    "render_scatter",
    "summarize",
    "compare_utilization",
    "compute_qos_stats",
    "gained_utilization_figure",
    "qos_figure",
    "state_space_figure",
    "timeline_figure",
    "gained_utilization_series",
    "normalized_qos_series",
    "render_series",
    "render_timeline_bands",
    "summarize_accuracy",
    "utilization_series",
]
