"""Machine utilization and the gained-utilization metric.

"Gained utilisation is the gain in utilisation in comparison to
executing VLC streaming service without any co-location" (§7.2). We
compute machine CPU utilization per tick and subtract the isolated
baseline, yielding the paper's percentage-point band series; the upper
band is the unmanaged co-location, the lower band is Stay-Away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.host import HostSnapshot
from repro.sim.resources import ResourceVector


def utilization_series(
    snapshots: Sequence[HostSnapshot], capacity: ResourceVector
) -> np.ndarray:
    """Machine CPU utilization in [0, 1] per tick."""
    return np.asarray(
        [snapshot.cpu_utilization(capacity) for snapshot in snapshots], dtype=float
    )


def gained_utilization_series(
    colocated: np.ndarray, isolated: np.ndarray
) -> np.ndarray:
    """Percentage-point utilization gain of a co-located run vs isolated.

    Series are truncated to the shorter length (runs may end at
    slightly different ticks).
    """
    colocated = np.asarray(colocated, dtype=float)
    isolated = np.asarray(isolated, dtype=float)
    n = min(colocated.size, isolated.size)
    return (colocated[:n] - isolated[:n]) * 100.0


@dataclass(frozen=True)
class UtilizationComparison:
    """Gained-utilization summary across management policies.

    Attributes
    ----------
    isolated_mean:
        Mean machine utilization of the sensitive-only baseline, [0, 1].
    unmanaged_gain_mean / stayaway_gain_mean:
        Mean percentage-point gains of the two co-located runs (the
        upper and lower bands of Figs. 10-11).
    unmanaged_series / stayaway_series:
        Full per-tick gain series.
    """

    isolated_mean: float
    unmanaged_gain_mean: float
    stayaway_gain_mean: float
    unmanaged_series: np.ndarray
    stayaway_series: np.ndarray

    @property
    def gain_capture_ratio(self) -> float:
        """Fraction of the unmanaged gain Stay-Away retained."""
        if self.unmanaged_gain_mean <= 0:
            return 0.0
        return self.stayaway_gain_mean / self.unmanaged_gain_mean


def compare_utilization(
    isolated: Sequence[HostSnapshot],
    unmanaged: Sequence[HostSnapshot],
    stayaway: Sequence[HostSnapshot],
    capacity: ResourceVector,
) -> UtilizationComparison:
    """Build the Figs. 10-12 comparison from three runs' snapshots."""
    isolated_util = utilization_series(isolated, capacity)
    unmanaged_util = utilization_series(unmanaged, capacity)
    stayaway_util = utilization_series(stayaway, capacity)
    unmanaged_gain = gained_utilization_series(unmanaged_util, isolated_util)
    stayaway_gain = gained_utilization_series(stayaway_util, isolated_util)
    return UtilizationComparison(
        isolated_mean=float(isolated_util.mean()) if isolated_util.size else 0.0,
        unmanaged_gain_mean=float(unmanaged_gain.mean()) if unmanaged_gain.size else 0.0,
        stayaway_gain_mean=float(stayaway_gain.mean()) if stayaway_gain.size else 0.0,
        unmanaged_series=unmanaged_gain,
        stayaway_series=stayaway_gain,
    )
