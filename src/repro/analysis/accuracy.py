"""Prediction-accuracy summaries (§3.2.3's >90% claim)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.prediction import AccuracyRecord
from repro.trajectory.modes import ExecutionMode


@dataclass(frozen=True)
class AccuracySummary:
    """Prediction accuracy over a run.

    Attributes
    ----------
    settled:
        Number of predictions that could be verified (no action
        intervened before the next observation).
    outcome_accuracy:
        Fraction whose violation/no-violation verdict matched reality.
    position_accuracy:
        Fraction whose expected position landed within the tolerance
        (in units of the mode's mean step length).
    per_mode_outcome:
        Outcome accuracy per execution mode.
    """

    settled: int
    outcome_accuracy: float
    position_accuracy: float
    per_mode_outcome: Dict[str, float]


def summarize_accuracy(
    records: Sequence[AccuracyRecord], tolerance_steps: float = 2.0
) -> AccuracySummary:
    """Aggregate a predictor's accuracy ledger."""
    if not records:
        return AccuracySummary(0, 0.0, 0.0, {})
    outcome_hits = sum(1 for record in records if record.outcome_correct)
    position_hits = sum(
        1
        for record in records
        if record.position_error <= tolerance_steps * record.step_scale
    )
    per_mode: Dict[str, float] = {}
    for mode in ExecutionMode:
        mode_records = [record for record in records if record.mode is mode]
        if mode_records:
            per_mode[mode.value] = sum(
                1 for record in mode_records if record.outcome_correct
            ) / len(mode_records)
    return AccuracySummary(
        settled=len(records),
        outcome_accuracy=outcome_hits / len(records),
        position_accuracy=position_hits / len(records),
        per_mode_outcome=per_mode,
    )
