"""Prediction-accuracy summaries (§3.2.3's >90% claim) and detector scorecards."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.prediction import AccuracyRecord
from repro.trajectory.modes import ExecutionMode


@dataclass(frozen=True)
class AccuracySummary:
    """Prediction accuracy over a run.

    Attributes
    ----------
    settled:
        Number of predictions that could be verified (no action
        intervened before the next observation).
    outcome_accuracy:
        Fraction whose violation/no-violation verdict matched reality.
    position_accuracy:
        Fraction whose expected position landed within the tolerance
        (in units of the mode's mean step length).
    per_mode_outcome:
        Outcome accuracy per execution mode.
    """

    settled: int
    outcome_accuracy: float
    position_accuracy: float
    per_mode_outcome: Dict[str, float]


def summarize_accuracy(
    records: Sequence[AccuracyRecord], tolerance_steps: float = 2.0
) -> AccuracySummary:
    """Aggregate a predictor's accuracy ledger."""
    if not records:
        return AccuracySummary(0, 0.0, 0.0, {})
    outcome_hits = sum(1 for record in records if record.outcome_correct)
    position_hits = sum(
        1
        for record in records
        if record.position_error <= tolerance_steps * record.step_scale
    )
    per_mode: Dict[str, float] = {}
    for mode in ExecutionMode:
        mode_records = [record for record in records if record.mode is mode]
        if mode_records:
            per_mode[mode.value] = sum(
                1 for record in mode_records if record.outcome_correct
            ) / len(mode_records)
    return AccuracySummary(
        settled=len(records),
        outcome_accuracy=outcome_hits / len(records),
        position_accuracy=position_hits / len(records),
        per_mode_outcome=per_mode,
    )


def violation_episodes(
    violation_ticks: Sequence[int], merge_gap: int = 5
) -> List[Tuple[int, int]]:
    """Group violating ticks into maximal ``(start, end)`` episodes.

    Consecutive violations separated by at most ``merge_gap`` clean
    ticks belong to one episode (a brief recovery inside a contention
    storm is not a new event).
    """
    if merge_gap < 0:
        raise ValueError("merge_gap must be non-negative")
    ticks = sorted(set(int(t) for t in violation_ticks))
    episodes: List[Tuple[int, int]] = []
    for tick in ticks:
        if episodes and tick - episodes[-1][1] <= merge_gap + 1:
            episodes[-1] = (episodes[-1][0], tick)
        else:
            episodes.append((tick, tick))
    return episodes


@dataclass(frozen=True)
class DetectorScorecard:
    """Alarm-stream quality of one detector against ground truth.

    The head-to-head study scores each detector's *shadow* run (alarms
    recorded, no actuation) against the violation episodes that
    actually unfolded. An alarm is a true positive when a violation
    episode starts within ``horizon`` ticks (or is already ongoing);
    an episode counts as detected when any alarm fired between
    ``horizon`` ticks before its start and its end.

    Attributes
    ----------
    detector:
        Arm label ("geometry" / "gmm" / "hybrid").
    alarms / episodes:
        Total alarms raised and ground-truth violation episodes.
    true_positives / false_positives:
        Alarm classification under the horizon rule.
    detected_episodes:
        Episodes with at least one alarm in their detection window.
    precision:
        ``tp / alarms`` (NaN when no alarm fired).
    recall:
        ``detected / episodes`` (NaN when nothing violated).
    false_positive_rate:
        False alarms per clean tick — ticks outside every episode's
        detection window.
    mean_lead_time:
        Mean ticks between the earliest in-window alarm and episode
        start, over detected episodes (alarms during the episode score
        a lead of 0; NaN when nothing was detected).
    """

    detector: str
    alarms: int
    episodes: int
    true_positives: int
    false_positives: int
    detected_episodes: int
    precision: float
    recall: float
    false_positive_rate: float
    mean_lead_time: float


def score_detector(
    alarm_ticks: Sequence[int],
    violation_ticks: Sequence[int],
    total_ticks: int,
    detector: str = "detector",
    horizon: int = 12,
    merge_gap: int = 5,
) -> DetectorScorecard:
    """Score an alarm stream against observed violation episodes."""
    if total_ticks < 1:
        raise ValueError("total_ticks must be >= 1")
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    alarms = sorted(set(int(t) for t in alarm_ticks))
    episodes = violation_episodes(violation_ticks, merge_gap=merge_gap)

    windows = [(start - horizon, end) for start, end in episodes]
    true_positives = sum(
        1
        for alarm in alarms
        if any(lo <= alarm <= hi for lo, hi in windows)
    )
    false_positives = len(alarms) - true_positives

    detected = 0
    lead_times: List[float] = []
    for (start, end), (lo, hi) in zip(episodes, windows):
        in_window = [alarm for alarm in alarms if lo <= alarm <= hi]
        if not in_window:
            continue
        detected += 1
        lead_times.append(float(max(0, start - in_window[0])))

    covered = set()
    for lo, hi in windows:
        covered.update(range(max(lo, 0), min(hi, total_ticks - 1) + 1))
    clean_ticks = max(total_ticks - len(covered), 1)

    return DetectorScorecard(
        detector=detector,
        alarms=len(alarms),
        episodes=len(episodes),
        true_positives=true_positives,
        false_positives=false_positives,
        detected_episodes=detected,
        precision=(
            true_positives / len(alarms) if alarms else float("nan")
        ),
        recall=(detected / len(episodes) if episodes else float("nan")),
        false_positive_rate=false_positives / clean_ticks,
        mean_lead_time=(
            sum(lead_times) / len(lead_times) if lead_times else float("nan")
        ),
    )
