"""Plain-text rendering for the benchmark harness output.

Every bench prints the rows/series the corresponding paper table or
figure reports; these helpers keep the output format uniform.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

_BLOCKS = " .:-=+*#%@"


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width table with a header rule."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_series(
    values: np.ndarray,
    width: int = 72,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> str:
    """A one-line character gradient of a numeric series.

    The series is downsampled to ``width`` buckets; each bucket renders
    as a density character from light (low) to dark (high). Used for
    the QoS/utilization time-series figures in text form.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if low is None:
        low = float(values.min())
    if high is None:
        high = float(values.max())
    if high <= low:
        high = low + 1e-9
    buckets = np.array_split(values, min(width, values.size))
    out = []
    for bucket in buckets:
        level = (float(bucket.mean()) - low) / (high - low)
        index = int(round(level * (len(_BLOCKS) - 1)))
        out.append(_BLOCKS[min(max(index, 0), len(_BLOCKS) - 1)])
    return "".join(out)


def render_scatter(
    points: np.ndarray,
    markers: Sequence[str],
    width: int = 72,
    height: int = 24,
) -> List[str]:
    """An ASCII scatter plot of 2-D points.

    Parameters
    ----------
    points:
        ``(n, 2)`` coordinates.
    markers:
        One display character per point; later points overwrite earlier
        ones in a shared cell, so draw violations last.

    Returns the plot as a list of text rows (top row = max y).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {points.shape}")
    if len(markers) != points.shape[0]:
        raise ValueError(
            f"{len(markers)} markers for {points.shape[0]} points"
        )
    grid = [[" "] * width for _ in range(height)]
    if points.shape[0] == 0:
        return ["".join(row) for row in grid]
    x_min, y_min = points.min(axis=0)
    x_max, y_max = points.max(axis=0)
    x_span = max(x_max - x_min, 1e-12)
    y_span = max(y_max - y_min, 1e-12)
    for (x, y), marker in zip(points, markers):
        column = int((x - x_min) / x_span * (width - 1))
        row = int((y_max - y) / y_span * (height - 1))
        grid[row][column] = marker[0]
    return ["".join(row) for row in grid]


def render_timeline_bands(
    stress: np.ndarray,
    throttled: Sequence[bool],
    width: int = 72,
) -> List[str]:
    """The Fig. 13 execution timeline as two text bands.

    Band 1: sensitive-application stress (darker = more stressed).
    Band 2: batch execution — ``#`` while executing, ``.`` while
    throttled (the paper's dark/light colour bands).
    """
    stress = np.asarray(stress, dtype=float)
    throttled_arr = np.asarray(list(throttled), dtype=bool)
    n = min(stress.size, throttled_arr.size)
    if n == 0:
        return ["", ""]
    stress_line = render_series(stress[:n], width=width, low=0.0, high=1.0)
    buckets = np.array_split(throttled_arr[:n], min(width, n))
    batch_line = "".join("." if bucket.mean() > 0.5 else "#" for bucket in buckets)
    return [stress_line, batch_line]
