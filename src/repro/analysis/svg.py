"""Dependency-free SVG plotting.

The evaluation figures (state-space maps, QoS curves, gained-utilization
bands) deserve real graphics, and the offline environment has no
plotting library — so this module implements the small slice of one
that the figures need: an SVG canvas, linear axes with ticks, and
scatter/line/band marks. Output is plain SVG 1.1 text, viewable in any
browser.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

#: A small colour-blind-safe palette (Okabe-Ito).
PALETTE = [
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # green
    "#D55E00",  # vermillion
    "#CC79A7",  # purple
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
]


class SvgCanvas:
    """A minimal SVG document builder."""

    def __init__(self, width: int = 640, height: int = 400) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._elements: List[str] = []

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        stroke: str = "#000", width: float = 1.0, dash: Optional[str] = None,
    ) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def circle(
        self, cx: float, cy: float, r: float,
        fill: str = "#000", opacity: float = 1.0, stroke: str = "none",
    ) -> None:
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" fill="{fill}" '
            f'fill-opacity="{opacity:.3f}" stroke="{stroke}"/>'
        )

    def rect(
        self, x: float, y: float, width: float, height: float,
        fill: str = "#000", opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{width:.2f}" '
            f'height="{height:.2f}" fill="{fill}" fill-opacity="{opacity:.3f}"/>'
        )

    def polyline(
        self, points: Sequence[Tuple[float, float]],
        stroke: str = "#000", width: float = 1.5,
    ) -> None:
        if not points:
            return
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def text(
        self, x: float, y: float, content: str,
        size: int = 12, anchor: str = "start", color: str = "#333",
    ) -> None:
        escaped = html.escape(content)
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}" '
            f'font-family="sans-serif">{escaped}</text>'
        )

    def to_string(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_string())
        return path


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(count - 1, 1)
    magnitude = 10 ** np.floor(np.log10(raw_step))
    for factor in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = factor * magnitude
        if step >= raw_step:
            break
    start = np.ceil(low / step) * step
    ticks = []
    value = start
    while value <= high + 1e-12:
        ticks.append(float(value))
        value += step
    return ticks or [low, high]


@dataclass
class Series:
    """One plottable series."""

    x: np.ndarray
    y: np.ndarray
    label: str = ""
    color: Optional[str] = None
    kind: str = "line"  # "line" | "scatter" | "band"
    y2: Optional[np.ndarray] = None  # upper edge for kind="band"
    marker_size: float = 2.5


class Plot:
    """A single-axes 2-D plot with line/scatter/band series.

    Parameters
    ----------
    title / xlabel / ylabel:
        Text decorations.
    width / height:
        Canvas size in pixels.
    """

    MARGIN_LEFT = 62
    MARGIN_BOTTOM = 46
    MARGIN_TOP = 34
    MARGIN_RIGHT = 16

    def __init__(
        self,
        title: str = "",
        xlabel: str = "",
        ylabel: str = "",
        width: int = 640,
        height: int = 400,
    ) -> None:
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.width = width
        self.height = height
        self.series: List[Series] = []
        self.hlines: List[Tuple[float, str, str]] = []

    # -- data -----------------------------------------------------------
    def _pick_color(self, color: Optional[str]) -> str:
        if color is not None:
            return color
        return PALETTE[len(self.series) % len(PALETTE)]

    def line(self, x, y, label: str = "", color: Optional[str] = None) -> None:
        """Add a polyline series."""
        self.series.append(Series(np.asarray(x, float), np.asarray(y, float),
                                  label=label, color=self._pick_color(color),
                                  kind="line"))

    def scatter(
        self, x, y, label: str = "", color: Optional[str] = None,
        marker_size: float = 2.5,
    ) -> None:
        """Add a scatter series."""
        self.series.append(Series(np.asarray(x, float), np.asarray(y, float),
                                  label=label, color=self._pick_color(color),
                                  kind="scatter", marker_size=marker_size))

    def band(self, x, y_low, y_high, label: str = "",
             color: Optional[str] = None) -> None:
        """Add a filled band between two curves."""
        self.series.append(Series(np.asarray(x, float),
                                  np.asarray(y_low, float),
                                  label=label, color=self._pick_color(color),
                                  kind="band", y2=np.asarray(y_high, float)))

    def hline(self, y: float, label: str = "", color: str = "#D55E00") -> None:
        """Add a horizontal reference line (e.g. the QoS threshold)."""
        self.hlines.append((y, label, color))

    # -- rendering ----------------------------------------------------------
    def _extent(self) -> Tuple[float, float, float, float]:
        xs, ys = [], []
        for series in self.series:
            if series.x.size:
                xs.append(series.x)
                ys.append(series.y)
                if series.y2 is not None:
                    ys.append(series.y2)
        for y, _, _ in self.hlines:
            ys.append(np.array([y]))
        if not xs:
            return 0.0, 1.0, 0.0, 1.0
        x_all = np.concatenate(xs)
        y_all = np.concatenate(ys)
        x_low, x_high = float(x_all.min()), float(x_all.max())
        y_low, y_high = float(y_all.min()), float(y_all.max())
        if x_high <= x_low:
            x_high = x_low + 1.0
        if y_high <= y_low:
            y_high = y_low + 1.0
        pad = 0.04 * (y_high - y_low)
        return x_low, x_high, y_low - pad, y_high + pad

    def render(self) -> str:
        """Render the plot to an SVG string."""
        canvas = SvgCanvas(self.width, self.height)
        x_low, x_high, y_low, y_high = self._extent()
        plot_w = self.width - self.MARGIN_LEFT - self.MARGIN_RIGHT
        plot_h = self.height - self.MARGIN_TOP - self.MARGIN_BOTTOM

        def sx(x: float) -> float:
            return self.MARGIN_LEFT + (x - x_low) / (x_high - x_low) * plot_w

        def sy(y: float) -> float:
            return self.MARGIN_TOP + (1 - (y - y_low) / (y_high - y_low)) * plot_h

        # Frame + grid + ticks.
        canvas.rect(self.MARGIN_LEFT, self.MARGIN_TOP, plot_w, plot_h,
                    fill="#fafafa")
        for tick in _nice_ticks(x_low, x_high):
            canvas.line(sx(tick), sy(y_low), sx(tick), sy(y_high),
                        stroke="#ddd", width=0.6)
            canvas.text(sx(tick), self.height - self.MARGIN_BOTTOM + 16,
                        f"{tick:g}", size=10, anchor="middle")
        for tick in _nice_ticks(y_low, y_high):
            canvas.line(sx(x_low), sy(tick), sx(x_high), sy(tick),
                        stroke="#ddd", width=0.6)
            canvas.text(self.MARGIN_LEFT - 6, sy(tick) + 3,
                        f"{tick:g}", size=10, anchor="end")

        # Series (bands first so lines/markers draw on top).
        for series in [s for s in self.series if s.kind == "band"]:
            color = series.color
            points = [(sx(x), sy(y)) for x, y in zip(series.x, series.y)]
            points += [
                (sx(x), sy(y))
                for x, y in zip(series.x[::-1], series.y2[::-1])
            ]
            coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
            canvas._elements.append(
                f'<polygon points="{coords}" fill="{color}" '
                f'fill-opacity="0.25" stroke="none"/>'
            )
        for series in [s for s in self.series if s.kind == "line"]:
            canvas.polyline(
                [(sx(x), sy(y)) for x, y in zip(series.x, series.y)],
                stroke=series.color,
            )
        for series in [s for s in self.series if s.kind == "scatter"]:
            for x, y in zip(series.x, series.y):
                canvas.circle(sx(x), sy(y), series.marker_size,
                              fill=series.color, opacity=0.75)

        for y, label, color in self.hlines:
            canvas.line(sx(x_low), sy(y), sx(x_high), sy(y),
                        stroke=color, width=1.2, dash="6,4")
            if label:
                canvas.text(sx(x_high), sy(y) - 4, label, size=10,
                            anchor="end", color=color)

        # Decorations + legend.
        if self.title:
            canvas.text(self.width / 2, 20, self.title, size=14,
                        anchor="middle", color="#111")
        if self.xlabel:
            canvas.text(self.width / 2, self.height - 10, self.xlabel,
                        size=11, anchor="middle")
        if self.ylabel:
            canvas._elements.append(
                f'<text x="14" y="{self.height / 2:.0f}" font-size="11" '
                f'text-anchor="middle" fill="#333" font-family="sans-serif" '
                f'transform="rotate(-90 14 {self.height / 2:.0f})">'
                f"{html.escape(self.ylabel)}</text>"
            )
        legend_y = self.MARGIN_TOP + 12
        for series in self.series:
            if not series.label:
                continue
            x0 = self.MARGIN_LEFT + 10
            canvas.rect(x0, legend_y - 8, 14, 8, fill=series.color, opacity=0.8)
            canvas.text(x0 + 18, legend_y, series.label, size=10)
            legend_y += 14
        return canvas.to_string()

    def save(self, path: Union[str, Path]) -> Path:
        """Render and write the SVG file."""
        path = Path(path)
        path.write_text(self.render())
        return path
