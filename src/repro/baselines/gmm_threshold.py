"""GMM threshold-learning contention detector (gmmfense-style).

The fifth baseline is the per-utilization-bin Gaussian-mixture
threshold learner popularized by Intel's platform-resource-manager
(``gmmfense.py``): bin the sensitive application's observed CPU
utilization, fit a small 1-D Gaussian mixture over each
contention-correlated metric inside each bin, and place a violation
"fence" at the boundary of the highest-mean (outlier) component. A
metric reading beyond its fence for the current utilization bin is a
contention verdict; the verdict drives the same pause/resume actuation
surface as the other baselines.

Unlike Stay-Away this detector learns *per-metric scalar thresholds*,
not geometry over the joint state — comparing the two (see
``experiments/headtohead.py``) is the first head-to-head against a
production-grade resource-manager detector rather than an academic
comparison system.

Three layers:

* :func:`fit_gmm_1d` / :func:`select_gmm` / :func:`fence_threshold` —
  seeded, pure-NumPy EM with BIC model selection (no sklearn), fully
  deterministic given ``(data, seed)``.
* :class:`GmmThresholdModel` — the learner: per-(metric, bin) sample
  buffers, periodic refits, fence thresholds, vote quorum. Duck-typed
  for the Stay-Away controller's ``aux_detector`` seam (``bind`` /
  ``update``), so ``core`` never imports this module.
* :class:`GmmThresholdDetector` — the standalone baseline middleware:
  model + QoS tracker + pause/resume actuation with a clear-verdict
  cooldown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import StayAwayConfig
from repro.monitoring.collector import MetricsCollector
from repro.monitoring.qos import QosTracker

if TYPE_CHECKING:
    from repro.sim.host import Host, HostSnapshot
    from repro.workloads.base import Application

#: Variance floor relative to the squared data scale (EM must never
#: collapse a component onto a single point).
_VAR_FLOOR_REL = 1e-8
_VAR_FLOOR_ABS = 1e-12


@dataclass(frozen=True)
class GaussianMixture1D:
    """A fitted 1-D Gaussian mixture, components sorted by mean.

    Attributes
    ----------
    weights / means / variances:
        ``(k,)`` component parameters, ascending by mean.
    log_likelihood:
        Total data log-likelihood at convergence.
    n_samples:
        Number of samples the mixture was fitted on.
    """

    weights: np.ndarray
    means: np.ndarray
    variances: np.ndarray
    log_likelihood: float
    n_samples: int

    @property
    def k(self) -> int:
        """Number of components."""
        return int(len(self.weights))

    def bic(self) -> float:
        """Bayesian information criterion (lower is better).

        A ``k``-component 1-D mixture has ``3k - 1`` free parameters
        (``k`` means, ``k`` variances, ``k - 1`` independent weights).
        """
        params = 3 * self.k - 1
        return params * math.log(max(self.n_samples, 1)) - 2.0 * self.log_likelihood


def _log_gauss(x: np.ndarray, mean: float, var: float) -> np.ndarray:
    return -0.5 * (np.log(2.0 * np.pi * var) + (x - mean) ** 2 / var)


def fit_gmm_1d(
    samples: Sequence[float],
    k: int,
    seed: int = 0,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> GaussianMixture1D:
    """Fit a ``k``-component 1-D Gaussian mixture by EM.

    Deterministic given ``(samples, k, seed)``: means initialize at the
    data quantiles with a tiny seeded jitter to break exact ties, and
    the EM iteration order is fixed — two fits with the same inputs are
    bit-identical.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    x = np.asarray(list(samples), dtype=float)
    if x.size < k:
        raise ValueError(f"need at least {k} samples to fit {k} components, got {x.size}")
    scale = float(x.std())
    var_floor = max(_VAR_FLOOR_REL * scale * scale, _VAR_FLOOR_ABS)

    rng = np.random.default_rng(seed + 1009 * k)
    means = np.quantile(x, (np.arange(k) + 0.5) / k)
    means = means + rng.normal(0.0, max(scale, 1.0) * 1e-9, size=k)
    variances = np.full(k, max(scale * scale, var_floor))
    weights = np.full(k, 1.0 / k)

    log_likelihood = -np.inf
    for _ in range(max_iter):
        # E step in log space: (k, n) responsibilities.
        log_prob = np.stack(
            [
                np.log(weights[j]) + _log_gauss(x, means[j], variances[j])
                for j in range(k)
            ]
        )
        log_norm = np.logaddexp.reduce(log_prob, axis=0)
        new_ll = float(log_norm.sum())
        resp = np.exp(log_prob - log_norm)

        # M step.
        counts = resp.sum(axis=1)
        counts = np.maximum(counts, 1e-12)
        weights = counts / x.size
        means = (resp @ x) / counts
        variances = (resp @ (x**2)) / counts - means**2
        variances = np.maximum(variances, var_floor)

        if abs(new_ll - log_likelihood) <= tol * (1.0 + abs(new_ll)):
            log_likelihood = new_ll
            break
        log_likelihood = new_ll

    order = np.argsort(means, kind="stable")
    return GaussianMixture1D(
        weights=weights[order],
        means=means[order],
        variances=variances[order],
        log_likelihood=log_likelihood,
        n_samples=int(x.size),
    )


def select_gmm(
    samples: Sequence[float], max_components: int = 3, seed: int = 0
) -> GaussianMixture1D:
    """Fit ``k = 1..max_components`` mixtures and keep the lowest BIC.

    The candidate count is additionally capped by the number of
    distinct sample values (a degenerate constant buffer always fits a
    single component).
    """
    x = np.asarray(list(samples), dtype=float)
    if x.size == 0:
        raise ValueError("cannot fit a mixture on an empty sample buffer")
    distinct = int(np.unique(x).size)
    cap = max(1, min(max_components, distinct, x.size))
    best: Optional[GaussianMixture1D] = None
    for k in range(1, cap + 1):
        candidate = fit_gmm_1d(x, k, seed=seed)  # sacheck: disable=SA201 -- seeded local rng; the jittered EM init IS the fit, not a state probe
        if best is None or candidate.bic() < best.bic():
            best = candidate
    assert best is not None
    return best


def fence_threshold(gmm: GaussianMixture1D, span: float = 3.0) -> float:
    """The violation fence of a fitted mixture.

    With one component the fence is the classic ``mean + span * std``
    outlier bound. With several, the highest-mean component is treated
    as the contention mode and the fence sits at the upper boundary of
    the next-highest (normal) component, clipped at the contention
    component's mean — readings past it are attributed to contention.
    Weakly monotone non-decreasing in ``span`` by construction.
    """
    if span < 0:
        raise ValueError("span must be non-negative")
    stds = np.sqrt(gmm.variances)
    if gmm.k == 1:
        return float(gmm.means[0] + span * stds[0])
    normal_bound = float(gmm.means[-2] + span * stds[-2])
    return float(min(normal_bound, gmm.means[-1]))


class GmmThresholdModel:
    """Per-utilization-bin GMM threshold learner.

    Implements the controller's ``aux_detector`` protocol (``bind`` +
    ``update``) and the introspection surface the head-to-head study
    and the reproducibility gate rely on (:meth:`thresholds`).

    Parameters
    ----------
    config:
        ``gmm_*`` knobs (and ``seed``) from :class:`StayAwayConfig`.
    """

    def __init__(self, config: Optional[StayAwayConfig] = None) -> None:
        cfg = config if config is not None else StayAwayConfig()
        self.config = cfg
        self.bins = cfg.gmm_bins
        self.span = cfg.gmm_span
        self.max_components = cfg.gmm_max_components
        self.min_samples = cfg.gmm_min_samples
        self.refit_interval = cfg.gmm_refit_interval
        self.window = cfg.gmm_window
        self.quorum = cfg.gmm_quorum
        self.metric_kinds: Tuple[str, ...] = tuple(cfg.gmm_metrics)
        self.seed = cfg.seed
        self.refit_count = 0
        self.verdict_count = 0
        self._bound = False
        self._util_index: Optional[int] = None
        self._cpu_capacity = 1.0
        # metric kind -> measurement-vector indices summed into its reading
        self._kind_indices: Dict[str, List[int]] = {}
        # (metric kind, bin) -> rolling sample buffer / refit bookkeeping
        self._samples: Dict[Tuple[str, int], List[float]] = {}
        self._since_fit: Dict[Tuple[str, int], int] = {}
        self._thresholds: Dict[Tuple[str, int], float] = {}
        self._mixtures: Dict[Tuple[str, int], GaussianMixture1D] = {}

    # -- aux-detector protocol -------------------------------------------------
    def bind(
        self, labels: Sequence[str], sensitive: str, cpu_capacity: float
    ) -> None:
        """Resolve measurement-vector indices once the layout is known.

        Parameters
        ----------
        labels:
            Flat ``"<vm>:<metric>"`` labels from the metrics collector.
        sensitive:
            VM name of the protected application (its CPU column is the
            utilization signal that selects the bin).
        cpu_capacity:
            Host CPU capacity; normalizes utilization into [0, 1).
        """
        if cpu_capacity <= 0:
            raise ValueError("cpu_capacity must be positive")
        self._cpu_capacity = float(cpu_capacity)
        self._kind_indices = {kind: [] for kind in self.metric_kinds}
        self._util_index = None
        for index, label in enumerate(labels):
            vm, _, metric = label.rpartition(":")
            if vm == sensitive and metric == "cpu":
                self._util_index = index
            if vm != sensitive and metric in self._kind_indices:
                self._kind_indices[metric].append(index)
        if self._util_index is None:
            raise ValueError(
                f"no '{sensitive}:cpu' column in measurement labels {list(labels)}"
            )
        missing = [kind for kind, idx in self._kind_indices.items() if not idx]
        if missing:
            raise ValueError(
                f"no non-sensitive columns for gmm_metrics {missing}; "
                f"labels: {list(labels)}"
            )
        self._bound = True

    @property
    def bound(self) -> bool:
        """Whether :meth:`bind` resolved the vector layout."""
        return self._bound

    @property
    def ready(self) -> bool:
        """Whether at least one fence threshold has been learned."""
        return bool(self._thresholds)

    def update(self, tick: int, measurement: np.ndarray) -> bool:
        """Judge the measurement, then learn from it.

        The verdict uses only thresholds fitted on *earlier* samples
        (judge-then-learn), so a run is reproducible tick-for-tick and
        the current reading never trains the fence that judges it.
        """
        verdict = self.verdict(measurement)
        self.observe(tick, measurement)
        return verdict

    # -- learning ----------------------------------------------------------------
    def _features(self, measurement: np.ndarray) -> Tuple[int, Dict[str, float]]:
        if not self._bound:
            raise RuntimeError("GmmThresholdModel.bind must be called first")
        values = np.asarray(measurement, dtype=float)
        utilization = float(values[self._util_index]) / self._cpu_capacity
        utilization = min(max(utilization, 0.0), 1.0)
        bin_index = min(int(utilization * self.bins), self.bins - 1)
        readings = {
            kind: float(values[indices].sum())
            for kind, indices in self._kind_indices.items()
        }
        return bin_index, readings

    def observe(self, tick: int, measurement: np.ndarray) -> None:
        """Add one sample per metric kind to its utilization bin."""
        bin_index, readings = self._features(measurement)
        for kind, value in readings.items():
            key = (kind, bin_index)
            buffer = self._samples.setdefault(key, [])
            buffer.append(value)
            if len(buffer) > self.window:
                del buffer[: len(buffer) - self.window]
            self._since_fit[key] = self._since_fit.get(key, 0) + 1
            enough = len(buffer) >= self.min_samples
            due = key not in self._thresholds or (
                self._since_fit[key] >= self.refit_interval
            )
            if enough and due:
                self._refit(key)

    def _refit(self, key: Tuple[str, int]) -> None:
        kind, bin_index = key
        # Per-key seed offset keeps the streams independent but
        # deterministic (kind order is the configured tuple order).
        kind_rank = self.metric_kinds.index(kind)
        seed = self.seed + 7919 * kind_rank + 104729 * bin_index
        mixture = select_gmm(
            self._samples[key], max_components=self.max_components, seed=seed
        )
        self._mixtures[key] = mixture
        self._thresholds[key] = fence_threshold(mixture, span=self.span)
        self._since_fit[key] = 0
        self.refit_count += 1

    # -- verdict -----------------------------------------------------------------
    def _threshold_for(self, kind: str, bin_index: int) -> Optional[float]:
        """The bin's fence, falling back to the nearest fitted bin.

        gmmfense consults the nearest utilization bin with a learned
        model when the current one is still cold; ties resolve to the
        lower bin.
        """
        exact = self._thresholds.get((kind, bin_index))
        if exact is not None:
            return exact
        fitted = sorted(b for k, b in self._thresholds if k == kind)
        if not fitted:
            return None
        nearest = min(fitted, key=lambda b: (abs(b - bin_index), b))
        return self._thresholds[(kind, nearest)]

    def verdict(self, measurement: np.ndarray) -> bool:
        """Whether the reading looks like contention under the fences."""
        bin_index, readings = self._features(measurement)
        votes = 0
        judged = 0
        for kind, value in readings.items():
            threshold = self._threshold_for(kind, bin_index)
            if threshold is None:
                continue
            judged += 1
            if value > threshold:
                votes += 1
        detected = judged > 0 and votes >= self.quorum
        if detected:
            self.verdict_count += 1
        return detected

    # -- introspection -----------------------------------------------------------
    def thresholds(self) -> Dict[str, float]:
        """Learned fences keyed ``"<metric>/<bin>"`` (reproducibility gate)."""
        return {
            f"{kind}/{bin_index}": value
            for (kind, bin_index), value in sorted(self._thresholds.items())
        }

    def mixture(self, kind: str, bin_index: int) -> Optional[GaussianMixture1D]:
        """The fitted mixture behind one fence (None while cold)."""
        return self._mixtures.get((kind, bin_index))

    def summary(self) -> dict:
        """Headline counters for reports and tests."""
        return {
            "bins": self.bins,
            "metrics": list(self.metric_kinds),
            "fitted_fences": len(self._thresholds),
            "refits": self.refit_count,
            "verdicts": self.verdict_count,
        }


class GmmThresholdDetector:
    """The standalone GMM threshold baseline (middleware).

    Observes the host through its own metrics collector, learns fences
    with a :class:`GmmThresholdModel`, and drives the same
    pause/resume actuation surface as the other baselines: a contention
    verdict pauses every running batch container; ``gmm_cooldown``
    consecutive clear periods resume them.

    Parameters
    ----------
    sensitive_app:
        The protected application (its QoS reports are tracked for
        scoring; the detector itself never reads them — it is a pure
        threshold learner).
    config:
        ``gmm_*`` knobs, ``period`` and ``aggregate_batch``.
    actuate:
        When False the detector only records alarms (shadow mode for
        the head-to-head study); ``experiments.runner`` wires
        ``config.enabled`` here.
    """

    def __init__(
        self,
        sensitive_app: Application,
        config: Optional[StayAwayConfig] = None,
        actuate: bool = True,
    ) -> None:
        self.config = config if config is not None else StayAwayConfig()
        self.sensitive_app = sensitive_app
        self.qos = QosTracker(sensitive_app)
        self.collector = MetricsCollector(aggregate_batch=self.config.aggregate_batch)
        self.model = GmmThresholdModel(self.config)
        self.actuate = actuate
        self.alarm_ticks: List[int] = []
        self.throttle_count = 0
        self.resume_count = 0
        self._paused: List[str] = []
        self._clear_periods = 0

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """Sample, judge, learn, and (when actuating) pause/resume."""
        self.collector.on_tick(snapshot, host)
        self.qos.on_tick(snapshot, host)
        if snapshot.tick % self.config.period != 0:
            return
        if not self.model.bound:
            # Collector labels carry *container* names, which need not
            # match the protected application's own name.
            sensitive_name = next(
                (
                    container.name
                    for container in host.containers.values()
                    if container.app is self.sensitive_app
                ),
                self.sensitive_app.name,
            )
            self.model.bind(self.collector.labels, sensitive_name, host.capacity.cpu)
        detected = self.model.update(snapshot.tick, self.collector.latest.values)
        if detected:
            self.alarm_ticks.append(snapshot.tick)
        if not self.actuate:
            return
        self._actuate(snapshot.tick, host, detected)

    def _actuate(self, tick: int, host: Host, detected: bool) -> None:
        if self._paused:
            still_paused = [
                name
                for name in self._paused
                if name in host.containers and host.container(name).is_paused
            ]
            if not still_paused:
                self._paused = []
                self._clear_periods = 0
            elif detected:
                # Contention persists: restart the clear-verdict count.
                self._clear_periods = 0
                return
            else:
                self._clear_periods += 1
                if self._clear_periods >= self.config.gmm_cooldown:
                    for name in still_paused:
                        host.resume_container(name)
                    self.resume_count += 1
                    self._paused = []
                    self._clear_periods = 0
                return

        if not detected:
            return
        targets = [
            container.name
            for container in host.batch_containers()
            if container.is_running and not container.app.finished
        ]
        if not targets:
            return
        for name in targets:
            host.pause_container(name)
        self._paused = targets
        self._clear_periods = 0
        self.throttle_count += 1

    def summary(self) -> dict:
        """Headline counters for reports and tests."""
        return {
            "alarms": len(self.alarm_ticks),
            "throttles": self.throttle_count,
            "resumes": self.resume_count,
            "violations_observed": self.qos.violation_count,
            "model": self.model.summary(),
        }
