"""Reactive-only throttling (ablation).

Throttles batch containers when a QoS violation is *observed* and
resumes after a fixed cooldown. No mapping, no prediction, no learned
resume threshold. Comparing this against Stay-Away isolates the value
of (a) predicting violations before they happen and (b) the
phase-change-aware resume policy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.monitoring.qos import QosTracker
from repro.sim.host import Host, HostSnapshot
from repro.workloads.base import Application


class ReactiveThrottler:
    """Violation-triggered pause with fixed-cooldown resume.

    Parameters
    ----------
    sensitive_app:
        The application whose QoS reports trigger throttling.
    cooldown:
        Ticks to keep batch containers paused after a violation.
    """

    def __init__(self, sensitive_app: Application, cooldown: int = 20) -> None:
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.qos = QosTracker(sensitive_app)
        self.cooldown = cooldown
        self.throttle_count = 0
        self.resume_count = 0
        self._paused: List[str] = []
        self._paused_since: Optional[int] = None

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """React to this tick's QoS report."""
        self.qos.on_tick(snapshot, host)

        if self._paused:
            still_paused = [
                name
                for name in self._paused
                if name in host.containers and host.container(name).is_paused
            ]
            if not still_paused:
                self._paused = []
                self._paused_since = None
            elif self.qos.violation_now:
                # A fresh violation mid-cooldown re-arms the clock:
                # resuming on the original schedule would drop the batch
                # straight back into an ongoing contention storm.
                self._paused_since = snapshot.tick
            elif (
                self._paused_since is not None
                and snapshot.tick - self._paused_since >= self.cooldown
            ):
                for name in still_paused:
                    host.resume_container(name)
                self.resume_count += 1
                self._paused = []
                self._paused_since = None
            return

        if not self.qos.violation_now:
            return
        targets = [
            container.name
            for container in host.batch_containers()
            if container.is_running and not container.app.finished
        ]
        if not targets:
            return
        for name in targets:
            host.pause_container(name)
        self._paused = targets
        self._paused_since = snapshot.tick
        self.throttle_count += 1
