"""Baselines and ablation comparators.

* :class:`~repro.baselines.no_prevention.NoPrevention` — co-locate and
  never act: the paper's "without Stay-Away" curves (upper utilization
  band, violating QoS series).
* :class:`~repro.baselines.reactive.ReactiveThrottler` — throttle only
  *after* an observed violation, resume after a fixed cooldown; the
  ablation showing what prediction buys.
* :mod:`repro.baselines.static_profiling` — a Bubble-Up-style static
  admission decision from offline profiles; demonstrates the paper's
  point that static profiling cannot follow dynamic workloads (§1, §8).
* :class:`~repro.baselines.qclouds.QCloudsLike` — Q-Clouds-style weight
  boosting on a work-conserving weighted scheduler; works while
  schedulable headroom exists, fails on memory-subsystem interference
  (§8).
* :mod:`repro.baselines.gmm_threshold` — the per-utilization-bin
  Gaussian-mixture threshold learner from Intel's
  platform-resource-manager (``gmmfense``-style): the first baseline
  grounded in a production resource manager; also supplies the
  verdict that votes in the controller's hybrid mode.
"""

from repro.baselines.deepdive import DeepDiveLike
from repro.baselines.gmm_threshold import (
    GaussianMixture1D,
    GmmThresholdDetector,
    GmmThresholdModel,
    fence_threshold,
    fit_gmm_1d,
    select_gmm,
)
from repro.baselines.no_prevention import NoPrevention
from repro.baselines.qclouds import QCloudsLike
from repro.baselines.reactive import ReactiveThrottler
from repro.baselines.static_profiling import (
    StaticColocationPolicy,
    StaticProfile,
    profile_application,
    static_admission_decision,
)

__all__ = [
    "DeepDiveLike",
    "GaussianMixture1D",
    "GmmThresholdDetector",
    "GmmThresholdModel",
    "fence_threshold",
    "fit_gmm_1d",
    "select_gmm",
    "NoPrevention",
    "QCloudsLike",
    "ReactiveThrottler",
    "StaticColocationPolicy",
    "StaticProfile",
    "profile_application",
    "static_admission_decision",
]
