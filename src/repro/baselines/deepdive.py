"""DeepDive-style migration of interfering VMs (comparison baseline, §8).

DeepDive [24] detects interference and then "the most aggressive VM is
migrated on to another physical machine. It incurs overhead in the form
of cloning and migrating VMs. Migrating VMs is an expensive and time
consuming operation." — whereas Stay-Away's SIGSTOP throttle is
instantaneous and free.

:class:`DeepDiveLike` is a cluster middleware: when a host's sensitive
application violates QoS for ``persistence`` consecutive ticks, the
batch container with the largest resource footprint on that host is
live-migrated to the least-loaded other host, paying the migration
downtime modelled by :class:`~repro.sim.cluster.Cluster`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.cluster import Cluster
from repro.sim.host import Host, HostSnapshot
from repro.sim.resources import Resource


class DeepDiveLike:
    """Interference-triggered migration of the most aggressive batch VM.

    Parameters
    ----------
    persistence:
        Consecutive violating ticks on a host before a migration fires
        (DeepDive's warning system does early analysis first; we model
        that as a persistence filter).
    cooldown:
        Minimum ticks between migrations from the same host.
    """

    def __init__(self, persistence: int = 5, cooldown: int = 30) -> None:
        if persistence < 1:
            raise ValueError("persistence must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.persistence = persistence
        self.cooldown = cooldown
        self.migrations_triggered = 0
        self._violating_streak: Dict[str, int] = {}
        self._last_migration_tick: Dict[str, int] = {}

    def _host_violating(self, host: Host) -> bool:
        for container in host.sensitive_containers():
            report = container.app.qos_report()
            if report is not None and report.violated:
                return True
        return False

    def _most_aggressive_batch(self, host: Host) -> Optional[str]:
        best_name = None
        best_score = -1.0
        for container in host.batch_containers():
            if not container.is_running or container.app.finished:
                continue
            usage = container.usage_snapshot()
            score = (
                usage.get(Resource.CPU)
                + usage.get(Resource.MEMORY_BW) / 2500.0
                + usage.get(Resource.MEMORY) / 2048.0
            )
            if score > best_score:
                best_score = score
                best_name = container.name
        return best_name

    def _least_loaded_other(self, cluster: Cluster, exclude: str) -> Optional[str]:
        candidates: List[str] = [
            name for name in cluster.hosts if name != exclude
        ]
        if not candidates:
            return None

        def load(name: str) -> float:
            host = cluster.hosts[name]
            if not host.history:
                return 0.0
            return host.history[-1].cpu_utilization(host.capacity)

        return min(candidates, key=load)

    def on_cluster_tick(
        self, snapshots: Dict[str, HostSnapshot], cluster: Cluster
    ) -> None:
        """Check every host's streak and migrate when persistence trips."""
        tick = cluster.clock.tick
        for host_name, host in cluster.hosts.items():
            if self._host_violating(host):
                self._violating_streak[host_name] = (
                    self._violating_streak.get(host_name, 0) + 1
                )
            else:
                self._violating_streak[host_name] = 0
                continue

            if self._violating_streak[host_name] < self.persistence:
                continue
            last = self._last_migration_tick.get(host_name)
            if last is not None and tick - last < self.cooldown:
                continue

            victim = self._most_aggressive_batch(host)
            if victim is None:
                continue
            destination = self._least_loaded_other(cluster, exclude=host_name)
            if destination is None:
                continue
            cluster.migrate(victim, destination)
            self.migrations_triggered += 1
            self._last_migration_tick[host_name] = tick
            self._violating_streak[host_name] = 0
