"""Q-Clouds-style weight boosting (comparison baseline, §8).

Q-Clouds [23] "achieves [QoS] by giving unallocated resources to an
application to prevent falling below the QoS requirement. ... If no
headroom is available, it cannot guarantee QoS". We reproduce the
mechanism with cgroup shares on a work-conserving weighted scheduler
(:class:`~repro.sim.contention.WeightedWaterFillModel`): when the
sensitive application's QoS drops, its weight is boosted
multiplicatively; when QoS is comfortably met the weight decays back,
returning the headroom to the batch tenants.

The reproduced failure mode: weights redistribute *schedulable* rate
resources (CPU, bandwidth) but cannot buy a tenant out of memory
overcommit — swap pressure penalizes every memory-resident tenant
regardless of shares — so QoS violations driven by the memory
subsystem persist under Q-Clouds while Stay-Away simply pauses the
culprit.
"""

from __future__ import annotations

from typing import Optional

from repro.monitoring.qos import QosTracker
from repro.sim.host import Host, HostSnapshot
from repro.workloads.base import Application


class QCloudsLike:
    """Feedback controller over the sensitive container's weight.

    Parameters
    ----------
    sensitive_app:
        The QoS-bearing application (its container is identified on the
        first tick by the sensitive flag).
    boost_factor:
        Multiplicative weight increase applied while QoS is below
        target.
    decay_factor:
        Multiplicative decay toward the base weight while QoS is
        comfortably above target.
    max_weight:
        Upper bound on the boost (cgroup shares are bounded in
        practice).
    comfort_margin:
        QoS must exceed ``threshold + comfort_margin`` before the boost
        starts decaying (hysteresis against oscillation).
    """

    def __init__(
        self,
        sensitive_app: Application,
        boost_factor: float = 2.0,
        decay_factor: float = 0.8,
        max_weight: float = 1024.0,
        comfort_margin: float = 0.02,
    ) -> None:
        if boost_factor <= 1.0:
            raise ValueError("boost_factor must exceed 1")
        if not 0.0 < decay_factor < 1.0:
            raise ValueError("decay_factor must be in (0, 1)")
        if max_weight < 1.0:
            raise ValueError("max_weight must be >= 1")
        self.qos = QosTracker(sensitive_app)
        self.boost_factor = boost_factor
        self.decay_factor = decay_factor
        self.max_weight = max_weight
        self.comfort_margin = comfort_margin
        self.boosts = 0
        self.decays = 0
        self._sensitive_name: Optional[str] = None

    def current_weight(self, host: Host) -> float:
        """The sensitive container's current scheduling weight."""
        if self._sensitive_name is None:
            return 1.0
        return host.container(self._sensitive_name).weight

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """Adjust the sensitive container's weight from this tick's QoS."""
        self.qos.on_tick(snapshot, host)
        if self._sensitive_name is None:
            sensitive = host.sensitive_containers()
            if not sensitive:
                return
            self._sensitive_name = sensitive[0].name
        container = host.container(self._sensitive_name)
        report = self.qos.last_report
        if report is None:
            return
        if report.value < report.threshold:
            new_weight = min(container.weight * self.boost_factor, self.max_weight)
            if new_weight != container.weight:
                container.set_weight(new_weight)
                self.boosts += 1
        elif report.value > report.threshold + self.comfort_margin:
            if container.weight > 1.0:
                new_weight = max(1.0, container.weight * self.decay_factor)
                container.set_weight(new_weight)
                self.decays += 1
