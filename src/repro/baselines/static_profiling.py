"""Static-profiling admission (Bubble-Up-style baseline).

The class of prior work the paper argues against (§1, §8): profile
applications offline, then make a one-shot placement/admission decision
and never adapt. We reproduce the essential failure mode: the profile
is taken at whatever workload intensity happened to hold during
profiling, so a co-location admitted under light load violates QoS when
the sensitive application's diurnal peak arrives — and a co-location
rejected under peak load wastes the off-peak headroom Stay-Away
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.sim.container import Container
from repro.sim.contention import ProportionalShareModel
from repro.sim.host import Host, HostSnapshot
from repro.sim.resources import ResourceVector, sum_vectors
from repro.workloads.base import Application


@dataclass(frozen=True)
class StaticProfile:
    """An offline profile: the mean demand observed during profiling.

    Attributes
    ----------
    name:
        Profiled application's name.
    mean_demand:
        Average demand vector over the profiling window.
    profile_ticks:
        Window length used.
    """

    name: str
    mean_demand: ResourceVector
    profile_ticks: int


def profile_application(
    app: Application, ticks: int = 50, capacity: Optional[ResourceVector] = None
) -> StaticProfile:
    """Profile an application in isolation for a fixed window.

    The application runs alone on a dedicated profiling host (no
    contention), exactly like an offline characterization run.
    Mutates the application's internal state — pass a fresh instance.
    """
    if ticks < 1:
        raise ValueError("ticks must be >= 1")
    host = Host(capacity=capacity, contention=ProportionalShareModel())
    host.add_container(Container(name=app.name, app=app, sensitive=app.is_sensitive))
    demands: List[ResourceVector] = []
    for _ in range(ticks):
        # Offline characterization run; the docstring requires a fresh
        # instance precisely because this probe advances the app.
        demands.append(app.demand(host.clock))  # sacheck: disable=SA201 -- offline profiling probe, fresh instance required
        host.step()
        if app.finished:
            break
    observed = len(demands)
    mean = sum_vectors(demands).scaled(1.0 / observed)
    return StaticProfile(name=app.name, mean_demand=mean, profile_ticks=observed)


def static_admission_decision(
    sensitive_profile: StaticProfile,
    batch_profiles: Iterable[StaticProfile],
    capacity: ResourceVector,
    headroom: float = 1.0,
) -> bool:
    """Admit the co-location iff combined profiled demand fits capacity.

    Parameters
    ----------
    headroom:
        Fraction of capacity the combined demand may use (1.0 = full
        machine; a conservative operator would use < 1).
    """
    if headroom <= 0:
        raise ValueError("headroom must be positive")
    combined = sensitive_profile.mean_demand
    for profile in batch_profiles:
        combined = combined + profile.mean_demand
    for resource, demanded in combined.items():
        if demanded > capacity.get(resource) * headroom:
            return False
    return True


class StaticColocationPolicy:
    """A middleware enforcing a one-shot static admission decision.

    If the offline decision was *reject*, batch containers are paused
    permanently at their first running tick; if *admit*, nothing is
    ever done — there is no runtime adaptation, which is precisely the
    limitation the paper targets.
    """

    def __init__(self, admit: bool) -> None:
        self.admit = admit
        self.rejected_containers: List[str] = []

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """Enforce the static decision (only matters when rejecting)."""
        if self.admit:
            return
        for container in host.batch_containers():
            if container.is_running and not container.app.finished:
                host.pause_container(container.name)
                if container.name not in self.rejected_containers:
                    self.rejected_containers.append(container.name)
