"""The do-nothing baseline: co-location without any mitigation."""

from __future__ import annotations

from repro.sim.host import Host, HostSnapshot


class NoPrevention:
    """A middleware that observes but never acts.

    Runs produced with this controller are the paper's "without
    Stay-Away" series: full batch throughput, uncontrolled QoS
    violations. It exists so experiment harnesses can swap controllers
    without special-casing the unmanaged run.
    """

    def __init__(self) -> None:
        self.ticks_observed = 0

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """Observe the tick; deliberately take no action."""
        self.ticks_observed += 1
