"""Fleet control plane: many Stay-Away hosts, one coordinator.

The paper scopes Stay-Away to a single host and explicitly defers the
cluster dimension ("complements cluster schedulers", §2.1; naive
migration dismissed as slow/costly, §8). This package supplies that
dimension as a :class:`~repro.sim.cluster.Cluster` middleware built to
stay correct under failure:

* :mod:`repro.fleet.coordinator` — :class:`FleetCoordinator` runs one
  Stay-Away controller per host behind an isolation cell
  (:class:`HostControllerCell`): an uncaught controller exception or a
  tripped cell breaker degrades *that host* to a reactive pause/resume
  policy instead of unwinding the coordinator.
* :mod:`repro.fleet.scoring` — :class:`InterferenceScorer` folds each
  host's predicted violation probability, observed-QoS history and CPU
  utilization into one score driving evict-from-hot / admit-on-cold
  placement with a hysteresis band.
* :mod:`repro.fleet.migration` — :class:`MigrationSupervisor` turns the
  simulator's fire-and-forget migration primitive into a supervised
  PREPARE → COPY → LAND → COMMIT state machine with per-attempt
  timeout, bounded retry with exponential backoff, and
  rollback-to-source when the destination dies mid-copy.

With ``config.fleet_cell_mode = "stream"`` each cell instead feeds its
controller through the wire-record service seam
(:class:`StreamHostCell` wrapping a
:class:`~repro.service.controller_service.ControllerService` with
acknowledged actuation) — the stepping stone to sharding cells across
real processes.

Layering: fleet may import ``core``, ``sim``, ``monitoring`` and
``service``; nothing below it may import fleet (enforced by sacheck
SA103).
"""

from repro.fleet.coordinator import (
    FleetCoordinator,
    HostControllerCell,
    StreamHostCell,
)
from repro.fleet.migration import (
    MigrationState,
    MigrationSupervisor,
    SupervisedMigration,
)
from repro.fleet.scoring import HostScore, InterferenceScorer

__all__ = [
    "FleetCoordinator",
    "HostControllerCell",
    "HostScore",
    "InterferenceScorer",
    "MigrationState",
    "MigrationSupervisor",
    "StreamHostCell",
    "SupervisedMigration",
]
