"""Supervised, fault-tolerant migrations.

The simulator's :meth:`~repro.sim.cluster.Cluster.migrate` is
fire-and-forget: it either starts a copy or raises, and once started
the cluster lands/bounces/loses the container on its own at landing
time. This module wraps it in the state machine a real control plane
needs — the §8 objection that "VM migration is slow and involves a
high cost" is precisely why migrations must be supervised rather than
assumed to succeed:

``PREPARE`` — waiting to start (initial attempt, or backing off after
a failure). ``COPY`` — the cluster is copying the memory image; the
supervisor watches for landing, destination death and timeout.
``LAND`` → ``COMMIT`` — the container resumed on the destination; the
migration is done. ``ROLLBACK`` — attempts exhausted; the container
stays on (or was bounced back to) its source. ``LOST`` — both ends
died mid-copy; the container is gone, and the supervisor records it
rather than pretending otherwise.

Every attempt's :class:`~repro.sim.cluster.MigrationRecord` is kept on
the :class:`SupervisedMigration`, so a chaos drill can assert the
no-orphan invariant: after the run, every record reached a terminal
``landed`` / ``bounced`` / ``lost`` outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.cluster import (
    MIGRATION_BOUNCED,
    MIGRATION_IN_FLIGHT,
    MIGRATION_LANDED,
    MIGRATION_LOST,
    MigrationRecord,
)

if TYPE_CHECKING:
    from repro.sim.cluster import Cluster


class MigrationState:
    """States of one supervised migration (str constants)."""

    PREPARE = "prepare"
    COPY = "copy"
    LAND = "land"
    COMMIT = "commit"
    ROLLBACK = "rollback"
    LOST = "lost"

    #: states in which the supervisor is done with the migration
    TERMINAL = (COMMIT, ROLLBACK, LOST)


@dataclass
class SupervisedMigration:
    """One migration intent, across all its attempts.

    Attributes
    ----------
    container / source / destination:
        What should move where. ``source`` is where the container was
        when the intent was requested.
    state:
        Current :class:`MigrationState` constant.
    attempts:
        Copy attempts started (or refused by the cluster) so far.
    records:
        The cluster-level :class:`~repro.sim.cluster.MigrationRecord`
        of every attempt that actually started, in order.
    requested_tick / completed_tick:
        When the intent was created and when it reached a terminal
        state (None while live).
    next_attempt_tick:
        Earliest tick the next attempt may start (backoff).
    reason:
        Why the migration ended where it did (terminal states only).
    transitions:
        ``(tick, state)`` history, for tests and post-mortems.
    """

    container: str
    source: str
    destination: str
    state: str = MigrationState.PREPARE
    attempts: int = 0
    records: List[MigrationRecord] = field(default_factory=list)
    requested_tick: int = 0
    completed_tick: Optional[int] = None
    next_attempt_tick: int = 0
    reason: str = ""
    transitions: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        """Whether the supervisor is done with this migration."""
        return self.state in MigrationState.TERMINAL

    @property
    def active_record(self) -> Optional[MigrationRecord]:
        """The in-flight cluster record, if the migration is copying."""
        if self.records and self.records[-1].outcome == MIGRATION_IN_FLIGHT:
            return self.records[-1]
        return None

    def _move(self, tick: int, state: str, reason: str = "") -> None:
        self.state = state
        self.transitions.append((tick, state))
        if state in MigrationState.TERMINAL:
            self.completed_tick = tick
            self.reason = reason


class MigrationSupervisor:
    """Drive supervised migrations against a cluster.

    Parameters
    ----------
    cluster:
        The cluster to migrate on.
    timeout:
        Ticks a single attempt may stay in COPY before it is cancelled.
    retries:
        Re-attempts after a failed attempt before rolling back.
    backoff:
        Base ticks between attempts; doubles per attempt already made.
    max_concurrent:
        Cap on simultaneously live (non-terminal) migrations.

    Call :meth:`request` to register an intent and :meth:`poll` once
    per cluster tick to advance every live state machine.
    """

    def __init__(
        self,
        cluster: "Cluster",
        timeout: int = 40,
        retries: int = 2,
        backoff: int = 5,
        max_concurrent: int = 4,
    ) -> None:
        if timeout < 1:
            raise ValueError("timeout must be >= 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 1:
            raise ValueError("backoff must be >= 1")
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.cluster = cluster
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_concurrent = max_concurrent
        self.migrations: List[SupervisedMigration] = []
        self._attempt_started: Dict[int, int] = {}  # id(migration) -> tick
        self.retry_count = 0
        self.timeout_count = 0

    # -- intake ------------------------------------------------------------
    @property
    def active(self) -> List[SupervisedMigration]:
        """Live (non-terminal) migrations."""
        return [m for m in self.migrations if not m.terminal]

    def supervising(self, container: str) -> bool:
        """Whether a live migration already covers this container."""
        return any(m.container == container for m in self.active)

    def request(
        self, tick: int, container: str, destination: str
    ) -> Optional[SupervisedMigration]:
        """Register a migration intent; None if refused.

        Refused when the concurrency cap is reached, the container is
        already supervised, or it cannot be located on an up host.
        """
        if len(self.active) >= self.max_concurrent:
            return None
        if self.supervising(container):
            return None
        location = self.cluster.locate(container)
        if location.status != "on-host" or location.host == destination:
            return None
        migration = SupervisedMigration(
            container=container,
            source=location.host,
            destination=destination,
            requested_tick=tick,
            next_attempt_tick=tick,
        )
        migration.transitions.append((tick, MigrationState.PREPARE))
        self.migrations.append(migration)
        return migration

    # -- state machine -----------------------------------------------------
    def poll(self, tick: int) -> None:
        """Advance every live migration by one supervision round."""
        for migration in self.active:
            if migration.state == MigrationState.PREPARE:
                self._poll_prepare(tick, migration)
            elif migration.state == MigrationState.COPY:
                self._poll_copy(tick, migration)

    def _poll_prepare(self, tick: int, migration: SupervisedMigration) -> None:
        if tick < migration.next_attempt_tick:
            return
        location = self.cluster.locate(migration.container)
        if location.status == "absent":
            migration._move(tick, MigrationState.LOST, "container vanished")
            return
        if location.status == "migrating":
            # An unsupervised migration of the same container raced us;
            # give up cleanly rather than fight over it.
            migration._move(tick, MigrationState.ROLLBACK, "externally migrated")
            return
        migration.attempts += 1
        try:
            record = self.cluster.migrate(migration.container, migration.destination)
        except ValueError as exc:
            self._attempt_failed(tick, migration, f"start refused: {exc}")
            return
        migration.records.append(record)
        self._attempt_started[id(migration)] = tick
        migration._move(tick, MigrationState.COPY)

    def _poll_copy(self, tick: int, migration: SupervisedMigration) -> None:
        record = migration.records[-1]
        if record.outcome == MIGRATION_LANDED:
            # Landing preserves container state; a container the source
            # throttle had paused must come back to life on its new
            # host, where it no longer threatens the sensitive app.
            landed_host = self.cluster.hosts.get(record.destination)
            if landed_host is not None:
                container = landed_host.containers.get(record.container)
                if container is not None and container.is_paused:
                    container.resume()
            migration._move(tick, MigrationState.LAND)
            migration._move(tick, MigrationState.COMMIT, "landed")
            return
        if record.outcome == MIGRATION_BOUNCED:
            self._attempt_failed(tick, migration, "bounced at landing")
            return
        if record.outcome == MIGRATION_LOST:
            migration._move(tick, MigrationState.LOST, "lost at landing")
            return
        # Still copying: cut the attempt short if the destination died
        # or the attempt exceeded its time budget.
        started = self._attempt_started.get(id(migration), migration.requested_tick)
        destination_dead = not self.cluster.host_is_up(migration.destination)
        timed_out = tick - started >= self.timeout
        if not destination_dead and not timed_out:
            return
        if timed_out and not destination_dead:
            self.timeout_count += 1
        outcome = self.cluster.cancel_migration(record)
        if outcome == MIGRATION_LOST:
            migration._move(tick, MigrationState.LOST, "source died mid-copy")
            return
        why = "destination died mid-copy" if destination_dead else "attempt timed out"
        self._attempt_failed(tick, migration, why)

    def _attempt_failed(
        self, tick: int, migration: SupervisedMigration, why: str
    ) -> None:
        if migration.attempts <= self.retries:
            self.retry_count += 1
            migration.next_attempt_tick = tick + self.backoff * (
                2 ** max(0, migration.attempts - 1)
            )
            migration._move(tick, MigrationState.PREPARE)
        else:
            migration._move(tick, MigrationState.ROLLBACK, why)

    # -- reporting ---------------------------------------------------------
    def all_reconciled(self) -> bool:
        """No orphans: every cluster record ever produced is terminal.

        The chaos-drill invariant — regardless of crashes, every
        started migration ended in a recorded ``landed`` / ``bounced``
        / ``lost`` outcome and every supervised intent reached a
        terminal state (or is still legitimately live mid-run).
        """
        return all(
            record.outcome != MIGRATION_IN_FLIGHT
            for migration in self.migrations
            for record in migration.records
            if migration.terminal
        )

    def summary(self) -> dict:
        """Counts by terminal state plus retry/timeout tallies."""
        by_state: Dict[str, int] = {}
        for migration in self.migrations:
            by_state[migration.state] = by_state.get(migration.state, 0) + 1
        return {
            "requested": len(self.migrations),
            "committed": by_state.get(MigrationState.COMMIT, 0),
            "rolled_back": by_state.get(MigrationState.ROLLBACK, 0),
            "lost": by_state.get(MigrationState.LOST, 0),
            "active": len(self.active),
            "retries": self.retry_count,
            "timeouts": self.timeout_count,
        }
