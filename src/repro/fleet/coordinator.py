"""The fleet coordinator and its per-host isolation cells.

One Stay-Away controller per host, one coordinator per fleet. The
coordinator is a cluster middleware
(:meth:`FleetCoordinator.on_cluster_tick`); each host's controller
runs inside a :class:`HostControllerCell` behind its own circuit
breaker, so a crashing or poisoned controller degrades *that host* to
a reactive pause/resume policy while the rest of the fleet keeps its
predictive controllers — the same containment philosophy as the
in-controller stage firewall (PR 5), lifted one level up.

Failure semantics, by layer:

* controller raises → the cell catches, counts the crash against its
  breaker, and serves the reactive fallback this tick;
* breaker OPEN → the controller is skipped entirely until the
  cooldown's HALF_OPEN probes pass (a genuinely poisoned controller
  stays degraded forever);
* host crash / telemetry blackout → no snapshot arrives, the cell is
  simply not driven, and the host's score goes stale — stale hosts are
  excluded from placement decisions (no telemetry is *not* treated as
  safe);
* migration failures → owned entirely by the
  :class:`~repro.fleet.migration.MigrationSupervisor`.

The ``sensitive`` mapping passed to the coordinator is duck-typed
(host name → sensitive application object) so this layer never imports
``workloads``; anything accepted by
:class:`~repro.core.controller.StayAway` works.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.breakers import CircuitBreaker
from repro.core.config import StayAwayConfig
from repro.core.controller import StayAway
from repro.core.events import EventLog
from repro.fleet.migration import MigrationSupervisor
from repro.fleet.scoring import HostScore, InterferenceScorer
from repro.sim.resources import Resource

if TYPE_CHECKING:
    from repro.sim.cluster import Cluster
    from repro.sim.host import Host, HostSnapshot


class HostControllerCell:
    """One host's controller, behind its own crash firewall + breaker.

    Parameters
    ----------
    host_name:
        The host this cell controls.
    controller:
        The host's :class:`~repro.core.controller.StayAway` instance.
    breaker:
        The cell-level circuit breaker gating the controller.
    fallback_resume_after:
        Consecutive violation-free ticks before the reactive fallback
        resumes the containers it paused.
    """

    def __init__(
        self,
        host_name: str,
        controller: StayAway,
        breaker: CircuitBreaker,
        fallback_resume_after: int = 10,
    ) -> None:
        if fallback_resume_after < 1:
            raise ValueError("fallback_resume_after must be >= 1")
        self.host_name = host_name
        self.controller = controller
        self.breaker = breaker
        self.fallback_resume_after = fallback_resume_after
        self.crashes = 0
        self.fallback_ticks = 0
        self._fallback_paused: Set[str] = set()
        self._clean_streak = 0
        self._last_run_ok = False

    @property
    def degraded(self) -> bool:
        """Whether the cell is currently serving the reactive fallback."""
        return not self._last_run_ok

    def observe(self, snapshot: "HostSnapshot", host: "Host") -> None:
        """Drive one tick: predictive controller if healthy, else fallback."""
        tick = snapshot.tick
        if self.breaker.allows(tick):
            try:
                self._drive(snapshot, host)
                self.breaker.record_success(tick)
                self._last_run_ok = True
                return
            except Exception:  # sacheck: disable=SA108 -- cell firewall: any controller exception must degrade this host, not unwind the fleet coordinator
                self.crashes += 1
                self.breaker.record_failure(tick)
                self._last_run_ok = False
        else:
            self._last_run_ok = False
        self._fallback(snapshot, host)

    def _drive(self, snapshot: "HostSnapshot", host: "Host") -> None:
        """The predictive path (overridden by :class:`StreamHostCell`)."""
        self.controller.on_tick(snapshot, host)

    def _fallback(self, snapshot: "HostSnapshot", host: "Host") -> None:
        """Reactive policy: pause batch on observed violation, resume later."""
        self.fallback_ticks += 1
        try:
            self.controller.qos.on_tick(snapshot, host)
        except Exception:  # sacheck: disable=SA108 -- keep polling even a faulty QoS channel; the fallback then acts on the last good reading
            pass
        if self.controller.qos.violation_now:
            self._clean_streak = 0
            for name, container in host.containers.items():
                if not container.sensitive and container.is_running:
                    container.pause()
                    self._fallback_paused.add(name)
            return
        self._clean_streak += 1
        if self._clean_streak >= self.fallback_resume_after and self._fallback_paused:
            for name in sorted(self._fallback_paused):
                container = host.containers.get(name)
                if container is not None and container.is_paused:
                    container.resume()
            self._fallback_paused.clear()

    def predicted_risk(self) -> float:
        """Predicted violation probability from the last healthy period.

        While the controller is actively throttling, the risk is 1.0:
        the throttle *is* the controller's judgement that interference
        would violate QoS — a host whose QoS looks clean only because
        batch work sits paused is hot, not cold, and hiding that from
        the scorer would make suppressed hosts attract more work.
        Zero while degraded — the scorer's observed-QoS term carries
        the signal when the predictive path is down.
        """
        if not self._last_run_ok:
            return 0.0
        if self.controller.throttle.throttling:
            return 1.0
        prediction = self.controller.last_prediction
        if prediction is None or not prediction.ready:
            return 0.0
        n = max(1, self.controller.config.n_samples)
        return min(1.0, prediction.votes / n)

    @property
    def violation_now(self) -> bool:
        """The host's sensitive app is violating QoS right now."""
        return bool(self.controller.qos.violation_now)

    def summary(self) -> dict:
        """Cell health: crashes, breaker state, fallback activity."""
        return {
            "host": self.host_name,
            "crashes": self.crashes,
            "degraded": self.degraded,
            "breaker": self.breaker.state.value,
            "fallback_ticks": self.fallback_ticks,
        }


class StreamHostCell(HostControllerCell):
    """A cell whose controller consumes the host through the stream seam.

    Selected with ``config.fleet_cell_mode = "stream"``: instead of
    handing the controller the in-process snapshot, the cell
    serializes each tick into the wire records a remote monitoring
    agent would publish, pushes them through a
    :class:`~repro.service.stream.QueueSource` into a
    :class:`~repro.service.controller_service.ControllerService`, and
    lets decisions travel back through the acknowledged
    :class:`~repro.service.actuator.SimHostActuator` — process
    separation without the process, and the stepping stone to
    sharding cells across real ones. Decisions lag the host by the
    stream watermark, and the reactive fallback acts on the *last
    streamed* QoS report (the stream channel's ``on_tick`` does not
    poll the application).
    """

    def __init__(
        self,
        host_name: str,
        host: "Host",
        app,
        config: StayAwayConfig,
        breaker: CircuitBreaker,
        fallback_resume_after: int = 10,
    ) -> None:
        from repro.service import ControllerService, QueueSource, SimHostActuator

        self.queue = QueueSource()
        self.service = ControllerService(
            self.queue, actuator=SimHostActuator(host), config=config
        )
        self.service.start()
        super().__init__(
            host_name,
            self.service.controller,
            breaker,
            fallback_resume_after=fallback_resume_after,
        )
        self._app = app
        self._header_done = False

    def _drive(self, snapshot: "HostSnapshot", host: "Host") -> None:
        from repro.service.recording import (
            header_record,
            qos_record,
            snapshot_records,
        )

        records: List[dict] = []
        if not self._header_done:
            records.append(header_record(host, self.host_name))
            self._header_done = True
        records.extend(snapshot_records(snapshot, host, self.host_name))
        qos = qos_record(snapshot.tick, self._app, self.host_name)
        if qos is not None:
            records.append(qos)
        self.queue.push(records)
        self.service.pump()

    def summary(self) -> dict:
        """Cell health plus the stream/actuator delivery census."""
        out = super().summary()
        out["stream"] = self.service.summary()["telemetry"]["stream"]
        return out


class FleetCoordinator:
    """Cluster middleware running one isolated controller per host.

    Parameters
    ----------
    sensitive:
        ``{host name: sensitive application}`` — which hosts get a
        predictive controller cell. Hosts absent from the mapping are
        scored by utilization only and never evicted from (nothing
        there to protect) — and they are the only eviction *targets*,
        so interference is moved away from sensitive work, not onto a
        different host's sensitive work.
    config:
        Shared :class:`~repro.core.config.StayAwayConfig`; the
        ``fleet_*`` knobs configure scoring and migration supervision.
    migrate:
        When False the coordinator observes and scores but never moves
        work — the per-host-only ablation arm of ``bench_fleet``.
    controller_factory:
        ``(host_name, sensitive_app) -> StayAway`` override, e.g. to
        share a map template across hosts.
    scorer:
        :class:`~repro.fleet.scoring.InterferenceScorer` override.
    """

    def __init__(
        self,
        sensitive: Dict[str, object],
        config: Optional[StayAwayConfig] = None,
        migrate: bool = True,
        controller_factory=None,
        scorer: Optional[InterferenceScorer] = None,
    ) -> None:
        self.config = config if config is not None else StayAwayConfig()
        self.sensitive = dict(sensitive)
        self.migrate_enabled = migrate
        self._factory = controller_factory or (
            lambda host, app: StayAway(app, config=self.config)
        )
        self.scorer = scorer or InterferenceScorer(
            smoothing=self.config.fleet_score_smoothing
        )
        self.events = EventLog()
        self.cells: Dict[str, HostControllerCell] = {}
        self.supervisor: Optional[MigrationSupervisor] = None
        self.cluster: Optional["Cluster"] = None
        self._cooldown_until: Dict[str, int] = {}
        self.ticks_seen = 0

    # -- wiring ------------------------------------------------------------
    def _bind(self, cluster: "Cluster") -> None:
        if self.cluster is cluster:
            return
        if self.cluster is not None:
            raise ValueError("coordinator is already bound to another cluster")
        self.cluster = cluster
        self.supervisor = MigrationSupervisor(
            cluster,
            timeout=self.config.fleet_migration_timeout,
            retries=self.config.fleet_migration_retries,
            backoff=self.config.fleet_migration_backoff,
            max_concurrent=self.config.fleet_max_concurrent_migrations,
        )
        for host_name, app in sorted(self.sensitive.items()):
            if host_name not in cluster.hosts:
                raise ValueError(f"sensitive mapping names unknown host {host_name!r}")
            breaker = CircuitBreaker(
                stage=f"cell:{host_name}",
                events=self.events,
                error_budget=self.config.breaker_error_budget,
                window_ticks=self.config.breaker_window,
                cooldown_ticks=self.config.breaker_cooldown,
                probes=self.config.breaker_probes,
            )
            if self.config.fleet_cell_mode == "stream":
                # The service builds its own controller behind the
                # seam; controller_factory does not apply here.
                self.cells[host_name] = StreamHostCell(
                    host_name, cluster.hosts[host_name], app, self.config, breaker
                )
            else:
                self.cells[host_name] = HostControllerCell(
                    host_name, self._factory(host_name, app), breaker
                )

    # -- middleware interface ----------------------------------------------
    def on_cluster_tick(
        self, snapshots: Dict[str, "HostSnapshot"], cluster: "Cluster"
    ) -> None:
        """One fleet round: drive cells, score, supervise, place."""
        self._bind(cluster)
        tick = cluster.clock.tick - 1  # the tick the snapshots describe
        self.ticks_seen += 1
        for host_name, snapshot in snapshots.items():
            host = cluster.hosts.get(host_name)
            if host is None:
                continue
            cell = self.cells.get(host_name)
            if cell is not None:
                cell.observe(snapshot, host)
            predicted = cell.predicted_risk() if cell is not None else 0.0
            violated = cell.violation_now if cell is not None else False
            utilization = snapshot.cpu_utilization(host.capacity)
            self.scorer.observe(host_name, predicted, violated, utilization, tick)
        self.supervisor.poll(tick)
        if self.migrate_enabled and tick % self.config.fleet_score_period == 0:
            self._placement_round(tick, snapshots, cluster)

    # -- placement ----------------------------------------------------------
    def _fresh_scores(
        self, tick: int, snapshots: Dict[str, "HostSnapshot"], cluster: "Cluster"
    ) -> Dict[str, HostScore]:
        """Scores backed by this tick's telemetry on up hosts only.

        A host that is down or blacked out has no fresh snapshot and is
        excluded — the coordinator never places work based on stale
        data.
        """
        return {
            name: score
            for name, score in self.scorer.scores().items()
            if score.tick == tick
            and name in snapshots
            and cluster.host_is_up(name)
        }

    def _eviction_victim(
        self, host_name: str, snapshot: "HostSnapshot", cluster: "Cluster"
    ) -> Optional[str]:
        """Heaviest batch container on the host, if any.

        Paused containers are eligible — a bomb the throttle is sitting
        on is the *best* thing to move (zero downtime cost to it, and
        shipping it out lets the source host stop throttling at all).
        Weight is observed CPU usage, falling back to the CPU last
        granted for paused containers whose usage reads zero. (The
        fallback used to probe ``container.app.demand()``, which draws
        from the app's private jitter RNG — an off-tick sample that
        desynced otherwise-identical runs.)
        """
        host = cluster.hosts[host_name]
        best: Optional[Tuple[float, str]] = None
        for name in sorted(host.containers):
            container = host.containers[name]
            if container.sensitive or self.supervisor.supervising(name):
                continue
            if not (container.is_running or container.is_paused):
                continue
            weight = (
                snapshot.usage[name].get(Resource.CPU)
                if name in snapshot.usage
                else 0.0
            )
            if weight <= 0.0 and container.last_allocation is not None:
                weight = container.last_allocation.granted.get(Resource.CPU)
            if best is None or weight > best[0]:
                best = (weight, name)
        return best[1] if best is not None else None

    def _placement_round(
        self, tick: int, snapshots: Dict[str, "HostSnapshot"], cluster: "Cluster"
    ) -> None:
        scores = self._fresh_scores(tick, snapshots, cluster)
        hot = sorted(
            (s for s in scores.values() if s.total >= self.config.fleet_hot_score),
            key=lambda s: (-s.total, s.host),
        )
        # Eviction targets: cold hosts with no sensitive app and spare
        # CPU headroom. Moving a bomb onto another sensitive host just
        # relocates the interference — the stay-away property must hold
        # fleet-wide, not per-host.
        cold = sorted(
            (
                s
                for s in scores.values()
                if s.total <= self.config.fleet_cold_score
                and s.host not in self.sensitive
                and s.utilization < 0.75
            ),
            key=lambda s: (s.total, s.host),
        )
        for source in hot:
            if self._cooldown_until.get(source.host, -1) > tick:
                continue
            victim = self._eviction_victim(source.host, snapshots[source.host], cluster)
            if victim is None:
                continue
            target = next(
                (
                    c
                    for c in cold
                    if c.host != source.host
                    and self._cooldown_until.get(c.host, -1) <= tick
                ),
                None,
            )
            if target is None:
                break
            if self.supervisor.request(tick, victim, target.host) is None:
                break
            cold = [c for c in cold if c.host != target.host]
            until = tick + self.config.fleet_migration_cooldown
            self._cooldown_until[source.host] = until
            self._cooldown_until[target.host] = until

    # -- admission ----------------------------------------------------------
    def admit(self, container, preferred: Optional[str] = None) -> str:
        """Place a new container on the coldest up host; returns the host.

        ``preferred`` is honoured when that host is up and not hot.
        The coordinator must have seen at least one cluster tick.
        """
        if self.cluster is None:
            raise ValueError("coordinator is not bound to a cluster yet")
        scores = {
            name: score
            for name, score in self.scorer.scores().items()
            if self.cluster.host_is_up(name)
        }
        if (
            preferred is not None
            and self.cluster.host_is_up(preferred)
            and (
                preferred not in scores
                or scores[preferred].total < self.config.fleet_hot_score
            )
        ):
            target = preferred
        elif scores:
            target = min(scores.values(), key=lambda s: (s.total, s.host)).host
        else:
            up = sorted(self.cluster.up_hosts)
            if not up:
                raise ValueError("no host is up to admit onto")
            target = up[0]
        self.cluster.hosts[target].add_container(container)
        return target

    # -- reporting ----------------------------------------------------------
    def fleet_violation_ratio(self) -> float:
        """Fleet-wide sensitive QoS violation ratio across all cells."""
        violations = 0
        reports = 0
        for cell in self.cells.values():
            qos = cell.controller.qos
            violations += qos.violation_count
            reports += len(qos.qos_series)
        if reports == 0:
            return 0.0
        return violations / reports

    def summary(self) -> dict:
        """The coordinator's ``fleet`` telemetry section."""
        scores = self.scorer.scores()
        degraded = [c.host_name for c in self.cells.values() if c.degraded]
        fleet: dict = {
            "hosts": len(self.cluster.hosts) if self.cluster else 0,
            "hosts_down": sorted(self.cluster.down) if self.cluster else [],
            "controllers": {
                "cells": len(self.cells),
                "degraded": sorted(degraded),
                "crashes": sum(c.crashes for c in self.cells.values()),
            },
            "migrations": self.supervisor.summary() if self.supervisor else {},
            "qos": {"fleet_violation_ratio": self.fleet_violation_ratio()},
            "ticks": self.ticks_seen,
            "engine": (
                {"mode": self.cluster.engine, **self.cluster.engine_stats}
                if self.cluster is not None
                and hasattr(self.cluster, "engine_stats")
                else {}
            ),
        }
        if scores:
            ranked = sorted(scores.values(), key=lambda s: (-s.total, s.host))
            fleet["scores"] = {
                "mean": sum(s.total for s in scores.values()) / len(scores),
                "hottest": {"host": ranked[0].host, "total": ranked[0].total},
                "coldest": {"host": ranked[-1].host, "total": ranked[-1].total},
            }
        return {"fleet": fleet}
