"""Per-host interference scoring.

One number per host answering "how dangerous is this machine for
sensitive work right now?", combining the three signals the rest of
the repo already produces:

* **predicted** — the host controller's predicted violation
  probability (prediction votes / sample count, §3.2.3), the leading
  indicator;
* **qos** — an EWMA of the observed violation indicator, the lagging
  ground truth that keeps scoring honest when a controller's model is
  degraded or its breaker is open;
* **utilization** — machine CPU utilization, the tie-breaker that
  spreads load even before anything goes wrong.

All three are smoothed with the same EWMA weight so a single noisy
tick cannot flip a placement decision; the hot/cold thresholds in
:class:`~repro.core.config.StayAwayConfig` add a hysteresis band on
top. Scores live in ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Weight of the predicted-violation term in the total score.
WEIGHT_PREDICTED = 0.45
#: Weight of the observed-QoS-history term.
WEIGHT_QOS = 0.35
#: Weight of the CPU-utilization term.
WEIGHT_UTILIZATION = 0.20


@dataclass(frozen=True)
class HostScore:
    """One host's interference score and its components.

    Attributes
    ----------
    host:
        Host name.
    predicted:
        Smoothed predicted violation probability in ``[0, 1]``.
    qos:
        Smoothed observed-violation indicator in ``[0, 1]``.
    utilization:
        Smoothed machine CPU utilization in ``[0, 1]``.
    total:
        Weighted combination, in ``[0, 1]``.
    tick:
        Tick of the newest observation folded in.
    """

    host: str
    predicted: float
    qos: float
    utilization: float
    total: float
    tick: int


class InterferenceScorer:
    """EWMA-smoothed per-host interference scores.

    Parameters
    ----------
    smoothing:
        Weight of the newest observation, in ``(0, 1]``; 1.0 disables
        smoothing entirely.
    """

    def __init__(self, smoothing: float = 0.2) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        self._scores: Dict[str, HostScore] = {}

    @staticmethod
    def _clamp(value: float) -> float:
        return min(1.0, max(0.0, float(value)))

    def observe(
        self,
        host: str,
        predicted: float,
        violated: bool,
        utilization: float,
        tick: int,
    ) -> HostScore:
        """Fold one tick's signals into the host's running score."""
        predicted = self._clamp(predicted)
        qos_now = 1.0 if violated else 0.0
        utilization = self._clamp(utilization)
        previous = self._scores.get(host)
        if previous is None:
            smoothed = (predicted, qos_now, utilization)
        else:
            a = self.smoothing
            smoothed = (
                a * predicted + (1 - a) * previous.predicted,
                a * qos_now + (1 - a) * previous.qos,
                a * utilization + (1 - a) * previous.utilization,
            )
        total = (
            WEIGHT_PREDICTED * smoothed[0]
            + WEIGHT_QOS * smoothed[1]
            + WEIGHT_UTILIZATION * smoothed[2]
        )
        score = HostScore(
            host=host,
            predicted=smoothed[0],
            qos=smoothed[1],
            utilization=smoothed[2],
            total=total,
            tick=tick,
        )
        self._scores[host] = score
        return score

    def score(self, host: str) -> Optional[HostScore]:
        """The host's current score, or None if never observed."""
        return self._scores.get(host)

    def scores(self) -> Dict[str, HostScore]:
        """A snapshot of all current scores, keyed by host."""
        return dict(self._scores)

    def forget(self, host: str) -> None:
        """Drop a host's history (host removed from the fleet)."""
        self._scores.pop(host, None)
