"""Euclidean distance computations used by the MDS stack."""

from __future__ import annotations

import numpy as np


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Full symmetric Euclidean distance matrix.

    Parameters
    ----------
    points:
        ``(n, d)`` array of row vectors.

    Returns
    -------
    ``(n, n)`` matrix with zeros on the diagonal.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {points.shape}")
    squared = np.sum(points**2, axis=1)
    gram = points @ points.T
    d2 = squared[:, None] + squared[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)
    distances = np.sqrt(d2)
    np.fill_diagonal(distances, 0.0)
    return distances


def point_distances(point: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distances from one point to each row of ``points``."""
    point = np.asarray(point, dtype=float)
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {points.shape}")
    if point.shape != (points.shape[1],):
        raise ValueError(
            f"point dimension {point.shape} incompatible with points {points.shape}"
        )
    deltas = points - point[None, :]
    return np.sqrt(np.sum(deltas**2, axis=1))
