"""Euclidean distance computations used by the MDS stack."""

from __future__ import annotations

import numpy as np


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Full symmetric Euclidean distance matrix.

    Parameters
    ----------
    points:
        ``(n, d)`` array of row vectors.

    Returns
    -------
    ``(n, n)`` matrix with zeros on the diagonal.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {points.shape}")
    squared = np.sum(points**2, axis=1)
    gram = points @ points.T
    d2 = squared[:, None] + squared[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)
    distances = np.sqrt(d2)
    np.fill_diagonal(distances, 0.0)
    return distances


def cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distances between every row of ``a`` and every row of ``b``.

    Parameters
    ----------
    a / b:
        ``(n, d)`` and ``(m, d)`` arrays of row vectors.

    Returns
    -------
    ``(n, m)`` distance matrix. Row ``i`` is elementwise identical to
    ``point_distances(a[i], b)`` — the broadcasted form performs the
    same subtract/square/sum/sqrt operations, so callers can swap a
    per-row loop for one call without changing any comparison outcome.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"expected 2-D arrays, got shapes {a.shape} and {b.shape}")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: {a.shape[1]} columns vs {b.shape[1]} columns"
        )
    deltas = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(deltas**2, axis=2))


def point_distances(point: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distances from one point to each row of ``points``."""
    point = np.asarray(point, dtype=float)
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {points.shape}")
    if point.shape != (points.shape[1],):
        raise ValueError(
            f"point dimension {point.shape} incompatible with points {points.shape}"
        )
    deltas = points - point[None, :]
    return np.sqrt(np.sum(deltas**2, axis=1))
