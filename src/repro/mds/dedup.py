"""Representative-sample reduction (the paper's §4 optimization).

"The cost of the algorithm is quadratic and we significantly reduce
this overhead by choosing one representative sample from the set of
samples that are very close to each other (Euclidean distance) and
discarding other similar samples."

:class:`RepresentativeSet` keeps one representative per epsilon-ball in
the (normalized) high-dimensional metric space. New samples either
*merge* into an existing representative — reusing its identity and its
2-D mapping — or become a new representative that must be placed on the
map. Merge counts are retained so dense regions stay identifiable
(darker points in the paper's figures).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.mds.distances import point_distances


class RepresentativeSet:
    """Epsilon-ball deduplication over high-dimensional samples.

    Parameters
    ----------
    epsilon:
        Merge radius in the normalized metric space. Samples within
        ``epsilon`` of an existing representative are absorbed by it.
    dimension:
        Expected sample dimensionality (checked on every insert).
    """

    def __init__(self, epsilon: float, dimension: Optional[int] = None) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = epsilon
        self.dimension = dimension
        self._points: List[np.ndarray] = []
        self._counts: List[int] = []
        self._matrix: Optional[np.ndarray] = None  # lazily rebuilt cache

    def __len__(self) -> int:
        return len(self._points)

    @property
    def counts(self) -> np.ndarray:
        """Number of raw samples absorbed by each representative."""
        return np.asarray(self._counts, dtype=int)

    @property
    def points(self) -> np.ndarray:
        """``(n_representatives, dimension)`` matrix of representatives."""
        if not self._points:
            return np.empty((0, self.dimension or 0))
        if self._matrix is None or self._matrix.shape[0] != len(self._points):
            self._matrix = np.vstack(self._points)
        return self._matrix

    def nearest(self, sample: np.ndarray) -> Tuple[int, float]:
        """Index of and distance to the nearest representative.

        Raises ``RuntimeError`` when the set is empty.
        """
        if not self._points:
            raise RuntimeError("representative set is empty")
        distances = point_distances(np.asarray(sample, float), self.points)
        index = int(np.argmin(distances))
        return index, float(distances[index])

    def assign(self, sample: np.ndarray) -> Tuple[int, bool]:
        """Insert a sample; return ``(representative_index, is_new)``.

        ``is_new`` is True when the sample opened a new epsilon-ball
        (and therefore needs a fresh 2-D placement downstream).
        """
        sample = np.asarray(sample, dtype=float)
        if sample.ndim != 1:
            raise ValueError(f"samples must be 1-D vectors, got shape {sample.shape}")
        if self.dimension is None:
            self.dimension = sample.shape[0]
        elif sample.shape[0] != self.dimension:
            raise ValueError(
                f"sample dimension {sample.shape[0]} != expected {self.dimension}"
            )

        if self._points:
            index, distance = self.nearest(sample)
            if distance <= self.epsilon:
                self._counts[index] += 1
                return index, False

        self._points.append(sample.copy())
        self._counts.append(1)
        self._matrix = None
        return len(self._points) - 1, True

    def distances_from(self, sample: np.ndarray) -> np.ndarray:
        """High-dimensional distances from a sample to every representative."""
        if not self._points:
            return np.empty(0)
        return point_distances(np.asarray(sample, float), self.points)

    def compression_ratio(self) -> float:
        """Raw samples per representative (>= 1.0; higher = more savings)."""
        if not self._points:
            return 1.0
        return float(sum(self._counts) / len(self._points))
