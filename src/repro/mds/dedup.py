"""Representative-sample reduction (the paper's §4 optimization).

"The cost of the algorithm is quadratic and we significantly reduce
this overhead by choosing one representative sample from the set of
samples that are very close to each other (Euclidean distance) and
discarding other similar samples."

:class:`RepresentativeSet` keeps one representative per epsilon-ball in
the (normalized) high-dimensional metric space. New samples either
*merge* into an existing representative — reusing its identity and its
2-D mapping — or become a new representative that must be placed on the
map. Merge counts are retained so dense regions stay identifiable
(darker points in the paper's figures).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mds.distances import point_distances

#: Dimensions of the sample vector used for grid hashing. Cell lookups
#: enumerate the 3^k neighbor cells, so the projection is capped: 3
#: dims = at most 27 dictionary probes per sample, while still pruning
#: aggressively (any two points within epsilon full-space distance are
#: within epsilon per-dimension, hence in adjacent cells).
GRID_PROJECT_DIMS = 3


class _GridIndex:
    """Epsilon-cell spatial hash over the leading sample dimensions.

    Keys are ``floor(value / epsilon)`` tuples of the first
    ``project_dims`` coordinates. Completeness invariant: every point
    within ``epsilon`` (full Euclidean) of a probe differs by at most
    ``epsilon`` in each projected coordinate, so it lives in one of the
    3^k cells adjacent to the probe's cell — querying those cells can
    prune candidates but never miss a merge partner.
    """

    def __init__(self, cell: float, project_dims: int) -> None:
        if cell <= 0:
            raise ValueError(f"cell size must be positive, got {cell}")
        self.cell = cell
        self.project_dims = project_dims
        self._cells: Dict[Tuple[int, ...], List[int]] = {}
        self.indexed = 0

    def _key(self, sample: np.ndarray) -> Tuple[int, ...]:
        return tuple(
            int(np.floor(float(value) / self.cell))
            for value in sample[: self.project_dims]
        )

    def insert(self, index: int, sample: np.ndarray) -> None:
        self._cells.setdefault(self._key(sample), []).append(index)
        self.indexed += 1

    def candidates(self, sample: np.ndarray) -> List[int]:
        """Indices in the probe's cell and its neighbors, ascending.

        Ascending order keeps ``argmin`` tie-breaking identical to the
        full linear scan (first index wins on equal distances).
        """
        base = self._key(sample)
        found: List[int] = []
        for offsets in itertools.product((-1, 0, 1), repeat=len(base)):
            bucket = self._cells.get(
                tuple(b + o for b, o in zip(base, offsets))
            )
            if bucket:
                found.extend(bucket)
        found.sort()
        return found


class RepresentativeSet:
    """Epsilon-ball deduplication over high-dimensional samples.

    Parameters
    ----------
    epsilon:
        Merge radius in the normalized metric space. Samples within
        ``epsilon`` of an existing representative are absorbed by it.
    dimension:
        Expected sample dimensionality (checked on every insert).
    """

    def __init__(self, epsilon: float, dimension: Optional[int] = None) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = epsilon
        self.dimension = dimension
        self._points: List[np.ndarray] = []
        self._counts: List[int] = []
        self._matrix: Optional[np.ndarray] = None  # lazily rebuilt cache
        self._grid: Optional[_GridIndex] = None  # epsilon-cell merge index
        self._grid_queries = 0
        self._grid_candidates = 0

    def __len__(self) -> int:
        return len(self._points)

    @property
    def counts(self) -> np.ndarray:
        """Number of raw samples absorbed by each representative."""
        return np.asarray(self._counts, dtype=int)

    @property
    def points(self) -> np.ndarray:
        """``(n_representatives, dimension)`` matrix of representatives."""
        if not self._points:
            return np.empty((0, self.dimension or 0))
        if self._matrix is None or self._matrix.shape[0] != len(self._points):
            self._matrix = np.vstack(self._points)
        return self._matrix

    def nearest(self, sample: np.ndarray) -> Tuple[int, float]:
        """Index of and distance to the nearest representative.

        Raises ``RuntimeError`` when the set is empty.
        """
        if not self._points:
            raise RuntimeError("representative set is empty")
        distances = point_distances(np.asarray(sample, float), self.points)
        index = int(np.argmin(distances))
        return index, float(distances[index])

    def assign(self, sample: np.ndarray) -> Tuple[int, bool]:
        """Insert a sample; return ``(representative_index, is_new)``.

        ``is_new`` is True when the sample opened a new epsilon-ball
        (and therefore needs a fresh 2-D placement downstream).
        """
        sample = np.asarray(sample, dtype=float)
        if sample.ndim != 1:
            raise ValueError(f"samples must be 1-D vectors, got shape {sample.shape}")
        if self.dimension is None:
            self.dimension = sample.shape[0]
        elif sample.shape[0] != self.dimension:
            raise ValueError(
                f"sample dimension {sample.shape[0]} != expected {self.dimension}"
            )

        if self._points:
            match = self._merge_candidate(sample)
            if match is not None:
                self._counts[match] += 1
                return match, False

        self._points.append(sample.copy())
        self._counts.append(1)
        self._matrix = None
        if self._grid is not None and self._grid.indexed == len(self._points) - 1:
            self._grid.insert(len(self._points) - 1, sample)
        return len(self._points) - 1, True

    def _merge_candidate(self, sample: np.ndarray) -> Optional[int]:
        """Index of the representative this sample merges into, if any.

        Uses the epsilon-cell grid to restrict the distance test to the
        points that can possibly be within ``epsilon``; behaviour is
        identical to the full linear scan (same winner, same ties).
        Falls back to the linear scan when ``epsilon`` is 0 (degenerate
        cell size: only exact duplicates merge anyway).
        """
        if self.epsilon <= 0:
            index, distance = self.nearest(sample)
            return index if distance <= self.epsilon else None
        self._ensure_grid()
        assert self._grid is not None
        candidates = self._grid.candidates(sample)
        self._grid_queries += 1
        self._grid_candidates += len(candidates)
        if not candidates:
            return None
        distances = point_distances(sample, self.points[candidates])
        local = int(np.argmin(distances))
        if float(distances[local]) <= self.epsilon:
            return candidates[local]
        return None

    def remove_indices(self, indices) -> int:
        """Remove representatives by index; returns how many were removed.

        Later representatives shift down to fill the gaps (callers that
        keep index-aligned side arrays must compact them identically).
        The merge grid and matrix caches are invalidated.
        """
        doomed = {int(i) for i in indices if 0 <= int(i) < len(self._points)}
        if not doomed:
            return 0
        self._points = [p for i, p in enumerate(self._points) if i not in doomed]
        self._counts = [c for i, c in enumerate(self._counts) if i not in doomed]
        self.invalidate_index()
        return len(doomed)

    def invalidate_index(self) -> None:
        """Drop the merge index and points-matrix cache.

        External bulk mutators of ``_points`` (checkpoint restore) must
        call this: the count-based staleness check in
        :meth:`_ensure_grid` cannot detect a same-count replacement.
        """
        self._grid = None
        self._matrix = None

    def _ensure_grid(self) -> None:
        """(Re)build the grid when missing or stale.

        The indexed-count comparison is defense-in-depth for external
        growth of ``_points``; same-count replacement requires an
        explicit :meth:`invalidate_index` call.
        """
        if self._grid is not None and self._grid.indexed == len(self._points):
            return
        assert self.dimension is not None
        grid = _GridIndex(
            cell=self.epsilon,
            project_dims=min(self.dimension, GRID_PROJECT_DIMS),
        )
        for index, point in enumerate(self._points):
            grid.insert(index, point)
        self._grid = grid

    def grid_stats(self) -> Dict[str, float]:
        """Merge-index accounting: probes, candidate volume, avg fanout."""
        return {
            "queries": self._grid_queries,
            "candidates": self._grid_candidates,
            "mean_candidates": (
                self._grid_candidates / self._grid_queries
                if self._grid_queries
                else 0.0
            ),
        }

    def distances_from(self, sample: np.ndarray) -> np.ndarray:
        """High-dimensional distances from a sample to every representative."""
        if not self._points:
            return np.empty(0)
        return point_distances(np.asarray(sample, float), self.points)

    def compression_ratio(self) -> float:
        """Raw samples per representative (>= 1.0; higher = more savings)."""
        if not self._points:
            return 1.0
        return float(sum(self._counts) / len(self._points))
