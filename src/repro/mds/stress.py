"""Stress diagnostics.

The paper's loss (§2.2) is the raw stress
``Loss(X) = sum_{i<j} (Dist(x_i, x_j) - delta_ij)^2`` between the
high-dimensional distances and the plane distances. §5 uses the stress
value to decide whether a 2-D embedding is an adequate representation
("this distortion will be reflected in a high stress value").
"""

from __future__ import annotations

import numpy as np

from repro.mds.distances import pairwise_distances


def raw_stress(embedding: np.ndarray, target_distances: np.ndarray) -> float:
    """Raw stress: sum of squared distance errors over unordered pairs."""
    target = np.asarray(target_distances, dtype=float)
    actual = pairwise_distances(embedding)
    if actual.shape != target.shape:
        raise ValueError(
            f"embedding implies a {actual.shape} distance matrix, target is {target.shape}"
        )
    diff = actual - target
    # Each unordered pair appears twice in the full matrix.
    return float(np.sum(diff**2) / 2.0)


def normalized_stress(embedding: np.ndarray, target_distances: np.ndarray) -> float:
    """Kruskal's stress-1: sqrt(raw_stress / sum of squared targets).

    Scale-free: 0 is a perfect embedding; values below ~0.1 are
    conventionally considered good.
    """
    target = np.asarray(target_distances, dtype=float)
    denom = float(np.sum(target**2) / 2.0)
    if denom <= 0.0:
        return 0.0
    return float(np.sqrt(raw_stress(embedding, target) / denom))
