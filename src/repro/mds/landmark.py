"""Landmark MDS: the fast approximation the paper points to (§4).

"there is existing work in the literature that is capable of doing
incremental MDS with high performance and very low overhead [32, 35]"
— [35] is de Silva & Tenenbaum-style landmark MDS: run classical MDS on
a small set of well-spread landmark points, then embed every other
point by distance-based triangulation against the landmarks. Cost drops
from O(n^2) to O(n*k) for k landmarks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.mds.classical import classical_mds
from repro.mds.distances import pairwise_distances, point_distances


def select_landmarks(
    points: np.ndarray, k: int, seed: Optional[int] = 0
) -> np.ndarray:
    """MaxMin greedy landmark selection.

    Starts from a (seeded) random point, then repeatedly adds the point
    farthest from the current landmark set — the standard spread
    heuristic for landmark MDS.

    Returns the selected row indices.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    if k >= n:
        return np.arange(n)
    rng = np.random.default_rng(seed)
    first = int(rng.integers(n))  # sacheck: disable=SA201 -- seeded local rng; the random start IS the MaxMin algorithm, not a state probe
    selected = [first]
    min_distances = point_distances(points[first], points)
    min_distances[first] = -np.inf  # never re-select
    for _ in range(k - 1):
        candidate = int(np.argmax(min_distances))
        selected.append(candidate)
        min_distances = np.minimum(
            min_distances, point_distances(points[candidate], points)
        )
        min_distances[np.asarray(selected)] = -np.inf
    return np.asarray(selected, dtype=int)


def landmark_mds(
    landmark_distances: np.ndarray,
    deltas_to_landmarks: np.ndarray,
    n_components: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Embed points by triangulation against landmark coordinates.

    Parameters
    ----------
    landmark_distances:
        ``(k, k)`` pairwise distances among the landmarks.
    deltas_to_landmarks:
        ``(n, k)`` distances from every point to each landmark.
    n_components:
        Output dimensionality.

    Returns
    -------
    ``(landmark_coords, point_coords)`` where ``landmark_coords`` is
    the classical-MDS embedding of the landmarks and ``point_coords``
    embeds all ``n`` points against it (landmarks passed as points map
    onto themselves up to numerical error).
    """
    landmark_distances = np.asarray(landmark_distances, dtype=float)
    deltas = np.asarray(deltas_to_landmarks, dtype=float)
    k = landmark_distances.shape[0]
    if landmark_distances.shape != (k, k):
        raise ValueError("landmark_distances must be square")
    if deltas.ndim != 2 or deltas.shape[1] != k:
        raise ValueError(
            f"deltas_to_landmarks must be (n, {k}), got {deltas.shape}"
        )

    landmark_coords = classical_mds(landmark_distances, n_components)

    # Distance-based triangulation (de Silva & Tenenbaum):
    # x = -1/2 * L# (delta^2 - mean_col(Delta^2))
    squared = landmark_distances**2
    mean_squared = squared.mean(axis=0)
    pseudo_inverse = np.linalg.pinv(landmark_coords)
    point_coords = -0.5 * (deltas**2 - mean_squared[None, :]) @ pseudo_inverse.T
    return landmark_coords, point_coords


def landmark_mds_fit(
    points: np.ndarray,
    k: int,
    n_components: int = 2,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Convenience: landmark-MDS embed an ``(n, d)`` point cloud."""
    points = np.asarray(points, dtype=float)
    indices = select_landmarks(points, k, seed=seed)
    landmarks = points[indices]
    landmark_distances = pairwise_distances(landmarks)
    deltas = np.stack(
        [point_distances(point, landmarks) for point in points]
    )
    _, coords = landmark_mds(landmark_distances, deltas, n_components)
    return coords
