"""Incremental (out-of-sample) MDS placement and map alignment.

Refitting SMACOF from scratch every period is quadratic in the number
of observed states; the paper notes that incremental MDS variants exist
"with high performance and very low overhead" (§4, citing [32, 35]).
We implement the standard single-point majorization: hold the existing
("anchor") map fixed and iterate the Guttman update for the new point
only, which minimizes

    sum_j (|x - y_j| - delta_j)^2

over the new point's 2-D coordinates ``x``, where ``delta_j`` are the
high-dimensional distances from the new sample to each anchor.

:func:`procrustes_align` keeps the map visually and semantically stable
across occasional full refits: the refit configuration is rotated /
reflected / translated onto the previous one, so violation-range
geometry carries over.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.mds.distances import point_distances


def place_point(
    anchors_2d: np.ndarray,
    deltas: np.ndarray,
    init: Optional[np.ndarray] = None,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> np.ndarray:
    """Place one new point against a fixed 2-D anchor configuration.

    Parameters
    ----------
    anchors_2d:
        ``(n, 2)`` fixed coordinates of already-mapped states.
    deltas:
        ``(n,)`` target (high-dimensional) distances from the new
        sample to each anchor.
    init:
        Starting guess; defaults to the anchor with the smallest
        target distance (nudged off it to avoid a zero gradient).
    """
    anchors = np.asarray(anchors_2d, dtype=float)
    deltas = np.asarray(deltas, dtype=float)
    if anchors.ndim != 2:
        raise ValueError(f"anchors must be 2-D, got shape {anchors.shape}")
    n = anchors.shape[0]
    if deltas.shape != (n,):
        raise ValueError(f"expected {n} deltas, got shape {deltas.shape}")
    if np.any(deltas < 0):
        raise ValueError("target distances must be non-negative")
    dim = anchors.shape[1] if anchors.shape[1] else 2
    if n == 0:
        if init is not None:
            return np.array(init, dtype=float, copy=True)
        return np.zeros(dim)
    if n == 1:
        # Any point at distance delta from the anchor works. Honor the
        # caller's init by placing along the anchor->init direction;
        # fall back to +x for determinism when init is absent or
        # coincides with the anchor.
        direction = np.zeros(dim)
        direction[0] = 1.0
        if init is not None:
            offset = np.asarray(init, dtype=float) - anchors[0]
            norm = float(np.linalg.norm(offset))
            if norm > 1e-12:
                direction = offset / norm
        return anchors[0] + deltas[0] * direction

    if init is not None:
        starts = [np.array(init, dtype=float, copy=True)]
    else:
        # Multi-start: symmetric anchor configurations (e.g. collinear
        # anchors) have mirror optima separated by a slow-escape ridge;
        # starting on several sides of the nearest anchor avoids it.
        nearest = int(np.argmin(deltas))
        base = anchors[nearest]
        scale = max(float(deltas.max()), 1e-3)
        starts = [
            base + np.array([1e-6, 1e-6]),
            base + np.array([scale, 0.0]),
            base + np.array([-scale, 0.0]),
            base + np.array([0.0, scale]),
            base + np.array([0.0, -scale]),
            anchors.mean(axis=0),
        ]
        starts.extend(_trilateration_starts(anchors, deltas))

    best_x: Optional[np.ndarray] = None
    best_stress = np.inf
    for start in starts:
        x = _optimize_placement(start, anchors, deltas, max_iter, tol)
        stress = placement_stress(x, anchors, deltas)
        if stress < best_stress:
            best_stress = stress
            best_x = x
    assert best_x is not None
    return best_x


def _trilateration_starts(anchors: np.ndarray, deltas: np.ndarray) -> list:
    """Two-circle intersection starts from the widest anchor pair.

    Multilateration stress is non-convex and has genuine local minima;
    when the target distances are realizable, the intersections of the
    two widest anchors' circles contain the global optimum, so seeding
    the local optimizer there makes placement exact.
    """
    n = anchors.shape[0]
    if n < 2:
        return []
    # Widest-separated anchor pair.
    best_pair = None
    best_sep = -1.0
    for i in range(n):
        for j in range(i + 1, n):
            sep = float(np.linalg.norm(anchors[i] - anchors[j]))
            if sep > best_sep:
                best_sep = sep
                best_pair = (i, j)
    if best_pair is None or best_sep <= 1e-12:
        return []
    i, j = best_pair
    a, b = anchors[i], anchors[j]
    ra, rb = float(deltas[i]), float(deltas[j])
    d = best_sep
    # Projection of the intersection chord onto the a->b axis.
    along = (ra * ra - rb * rb + d * d) / (2.0 * d)
    height_sq = ra * ra - along * along
    axis = (b - a) / d
    normal = np.array([-axis[1], axis[0]])
    foot = a + along * axis
    if height_sq <= 0:
        return [foot]
    height = np.sqrt(height_sq)
    return [foot + height * normal, foot - height * normal]


def _optimize_placement(
    x0: np.ndarray,
    anchors: np.ndarray,
    deltas: np.ndarray,
    max_iter: int,
    tol: float,
) -> np.ndarray:
    """Majorization iterations followed by a Gauss-Newton polish."""
    x = np.array(x0, dtype=float, copy=True)
    for _ in range(max_iter):
        distances = point_distances(x, anchors)
        safe = np.maximum(distances, 1e-12)
        # Single-point Guttman update: pull each anchor's contribution
        # to its target radius along the current direction.
        directions = (x[None, :] - anchors) / safe[:, None]
        proposal = anchors + deltas[:, None] * directions
        new_x = proposal.mean(axis=0)
        if np.linalg.norm(new_x - x) < tol:
            x = new_x
            break
        x = new_x

    # Gauss-Newton polish: the majorization converges slowly along flat
    # directions; a few Newton steps tighten the placement.
    for _ in range(12):
        distances = point_distances(x, anchors)
        safe = np.maximum(distances, 1e-12)
        residuals = distances - deltas
        jacobian = (x[None, :] - anchors) / safe[:, None]
        gram = jacobian.T @ jacobian
        gradient = jacobian.T @ residuals
        try:
            step = np.linalg.solve(gram + 1e-12 * np.eye(gram.shape[0]), gradient)
        except np.linalg.LinAlgError:
            break
        candidate = x - step
        if placement_stress(candidate, anchors, deltas) <= placement_stress(
            x, anchors, deltas
        ):
            x = candidate
        else:
            break
        if np.linalg.norm(step) < tol:
            break
    return x


def placement_stress(point: np.ndarray, anchors_2d: np.ndarray, deltas: np.ndarray) -> float:
    """Residual stress of a placed point against its anchors."""
    distances = point_distances(np.asarray(point, float), np.asarray(anchors_2d, float))
    return float(np.sum((distances - np.asarray(deltas, float)) ** 2))


def procrustes_align(
    reference: np.ndarray,
    config: np.ndarray,
    allow_scaling: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rigidly align ``config`` onto ``reference`` (orthogonal Procrustes).

    Parameters
    ----------
    reference / config:
        ``(n, d)`` corresponding configurations.
    allow_scaling:
        Also fit a global scale factor. Off by default — distances in
        the map are meaningful (violation radii), so we only rotate,
        reflect and translate.

    Returns
    -------
    ``(aligned, rotation, translation)`` such that
    ``aligned = config @ rotation + translation``.
    """
    reference = np.asarray(reference, dtype=float)
    config = np.asarray(config, dtype=float)
    if reference.shape != config.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs config {config.shape}"
        )
    if reference.size == 0:
        # Identity transform in the *actual* dimensionality: an empty
        # (0, d) configuration still has d columns, and callers compose
        # the returned rotation/translation with d-dimensional data.
        dim = config.shape[1] if config.ndim == 2 else config.shape[0]
        return config.copy(), np.eye(dim), np.zeros(dim)

    mu_ref = reference.mean(axis=0)
    mu_cfg = config.mean(axis=0)
    ref_c = reference - mu_ref
    cfg_c = config - mu_cfg

    # Optimal rotation via SVD of the cross-covariance.
    u, s, vt = np.linalg.svd(cfg_c.T @ ref_c)
    rotation = u @ vt

    scale = 1.0
    if allow_scaling:
        denom = float(np.sum(cfg_c**2))
        if denom > 0:
            scale = float(np.sum(s)) / denom

    rotation = rotation * scale
    translation = mu_ref - mu_cfg @ rotation
    aligned = config @ rotation + translation
    return aligned, rotation, translation
