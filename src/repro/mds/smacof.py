"""SMACOF: Scaling by MAjorizing a COmplicated Function.

The paper minimizes the stress loss "by using Scaling by majorizing a
convex function (SMACOF) algorithm, which minimizes a quadratic form
iteratively" (§2.2). Each iteration applies the Guttman transform

    X_{k+1} = (1/n) * B(X_k) @ X_k

where ``B`` is built from the ratios between target dissimilarities and
current embedding distances; stress is guaranteed non-increasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mds.classical import classical_mds
from repro.mds.distances import pairwise_distances
from repro.mds.stress import raw_stress


@dataclass(frozen=True)
class SmacofResult:
    """Outcome of a SMACOF run.

    Attributes
    ----------
    embedding:
        ``(n, n_components)`` final coordinates.
    stress:
        Final raw stress value.
    iterations:
        Guttman iterations actually executed.
    converged:
        True when the relative stress improvement dropped below the
        tolerance before ``max_iter`` was exhausted.
    """

    embedding: np.ndarray
    stress: float
    iterations: int
    converged: bool


def _guttman_transform(
    embedding: np.ndarray, target: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """One Guttman majorization step."""
    n = embedding.shape[0]
    current = pairwise_distances(embedding)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(current > eps, target / np.maximum(current, eps), 0.0)
    b = -ratio
    np.fill_diagonal(b, 0.0)
    diagonal = -b.sum(axis=1)
    b[np.diag_indices(n)] = diagonal
    return (b @ embedding) / n


def smacof(
    distances: np.ndarray,
    n_components: int = 2,
    init: Optional[np.ndarray] = None,
    max_iter: int = 300,
    tol: float = 1e-6,
    telemetry=None,
) -> SmacofResult:
    """Minimize stress by majorization.

    Parameters
    ----------
    distances:
        Symmetric ``(n, n)`` target dissimilarity matrix.
    n_components:
        Embedding dimensionality (2 in the paper).
    init:
        Optional initial configuration; defaults to classical MDS.
        Passing the previous map keeps successive refits continuous.
    max_iter / tol:
        Stop after ``max_iter`` iterations or when the relative stress
        improvement falls below ``tol``.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` (duck-typed: any
        object with ``counter``/``gauge``/``histogram``) recording runs,
        iteration counts, convergence and the final raw stress.

    Notes
    -----
    Stress is non-increasing across iterations (majorization
    guarantee); tests assert this invariant.
    """
    target = np.asarray(distances, dtype=float)
    if target.ndim != 2 or target.shape[0] != target.shape[1]:
        raise ValueError(f"distances must be square, got shape {target.shape}")
    n = target.shape[0]
    if n == 0:
        return SmacofResult(np.empty((0, n_components)), 0.0, 0, True)
    if n == 1:
        return SmacofResult(np.zeros((1, n_components)), 0.0, 0, True)

    if init is None:
        embedding = classical_mds(target, n_components)
    else:
        embedding = np.array(init, dtype=float, copy=True)
        if embedding.shape != (n, n_components):
            raise ValueError(
                f"init shape {embedding.shape} does not match ({n}, {n_components})"
            )

    stress = raw_stress(embedding, target)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        embedding = _guttman_transform(embedding, target)
        new_stress = raw_stress(embedding, target)
        if stress > 0 and (stress - new_stress) / stress < tol:
            stress = new_stress
            converged = True
            break
        stress = new_stress
        if stress <= 0.0:
            converged = True
            break
    if telemetry is not None:
        telemetry.counter("smacof.runs", help="SMACOF solves").inc()
        if converged:
            telemetry.counter(
                "smacof.converged", help="solves that met the tolerance"
            ).inc()
        telemetry.histogram(
            "smacof.iterations",
            help="Guttman iterations per solve",
            buckets=(1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 300.0),
        ).observe(float(iterations))
        telemetry.gauge("smacof.last_stress", help="raw stress of the last solve").set(
            float(stress)
        )
    return SmacofResult(
        embedding=embedding, stress=stress, iterations=iterations, converged=converged
    )
