"""Classical (Torgerson) multidimensional scaling.

Used as the SMACOF initializer: double-center the squared distance
matrix into a Gram matrix and take the top eigenpairs. For Euclidean
inputs this is exact up to rotation; for general dissimilarities it is
a good starting configuration for stress majorization.
"""

from __future__ import annotations

import numpy as np


def classical_mds(distances: np.ndarray, n_components: int = 2) -> np.ndarray:
    """Embed a distance matrix into ``n_components`` dimensions.

    Parameters
    ----------
    distances:
        Symmetric ``(n, n)`` dissimilarity matrix with zero diagonal.
    n_components:
        Output dimensionality (the paper uses 2, §3.1).

    Returns
    -------
    ``(n, n_components)`` coordinates, centered at the origin.
    """
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError(f"distances must be square, got shape {distances.shape}")
    if n_components < 1:
        raise ValueError("n_components must be >= 1")
    n = distances.shape[0]
    if n == 0:
        return np.empty((0, n_components))
    if n == 1:
        return np.zeros((1, n_components))

    # Double centering: B = -1/2 * J D^2 J with J = I - (1/n) 11^T.
    d2 = distances**2
    row_mean = d2.mean(axis=1, keepdims=True)
    col_mean = d2.mean(axis=0, keepdims=True)
    grand_mean = d2.mean()
    gram = -0.5 * (d2 - row_mean - col_mean + grand_mean)

    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1][:n_components]
    top_values = eigenvalues[order]
    top_vectors = eigenvectors[:, order]

    # Negative eigenvalues (non-Euclidean dissimilarities) contribute
    # nothing: clamp to zero so the sqrt stays real.
    scales = np.sqrt(np.clip(top_values, 0.0, None))
    coords = top_vectors * scales[None, :]
    if coords.shape[1] < n_components:
        pad = np.zeros((n, n_components - coords.shape[1]))
        coords = np.hstack([coords, pad])
    return coords
