"""Multi-Dimensional Scaling, implemented from scratch.

The paper maps high-dimensional measurement vectors onto a 2-D plane
with MDS so that "the relative distances between points in the plane
correspond to the relative distances in the high dimensional space"
(§2.2), minimizing the stress loss with the SMACOF majorization
algorithm. This package provides:

* :func:`~repro.mds.distances.pairwise_distances` — Euclidean distance
  matrices;
* :func:`~repro.mds.classical.classical_mds` — Torgerson's classical
  scaling (the SMACOF initializer);
* :func:`~repro.mds.smacof.smacof` — stress majorization via the
  Guttman transform;
* :func:`~repro.mds.stress.raw_stress` / ``normalized_stress`` — loss
  diagnostics (§5 uses the stress value to judge map quality);
* :func:`~repro.mds.incremental.place_point` — out-of-sample placement
  of a new state against an anchored map (the low-overhead incremental
  MDS of §4);
* :func:`~repro.mds.incremental.procrustes_align` — map-continuity
  alignment between refits;
* :class:`~repro.mds.dedup.RepresentativeSet` — the paper's §4
  optimization: collapse near-identical samples onto one representative
  to keep the SMACOF observation matrix small.
"""

from repro.mds.classical import classical_mds
from repro.mds.dedup import RepresentativeSet
from repro.mds.distances import pairwise_distances, point_distances
from repro.mds.incremental import place_point, procrustes_align
from repro.mds.landmark import landmark_mds, landmark_mds_fit, select_landmarks
from repro.mds.smacof import SmacofResult, smacof
from repro.mds.stress import normalized_stress, raw_stress

__all__ = [
    "RepresentativeSet",
    "SmacofResult",
    "classical_mds",
    "landmark_mds",
    "landmark_mds_fit",
    "normalized_stress",
    "pairwise_distances",
    "place_point",
    "point_distances",
    "procrustes_align",
    "raw_stress",
    "select_landmarks",
    "smacof",
]
