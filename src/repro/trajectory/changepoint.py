"""Phase-change detection on metric series.

Stay-Away's resume criterion hinges on detecting a phase/workload
change of the sensitive application (§3.3). The controller itself uses
the paper's mapped-state-distance rule; this module provides an
offline/analysis counterpart — simple online change-point detectors
over raw metric series — used to label ground-truth phase changes in
experiments (e.g. validating that the β rule fires at actual phase
boundaries, or annotating Fig. 13-style timelines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class ChangePoint:
    """A detected change.

    Attributes
    ----------
    index:
        Sample index at which the change was flagged.
    magnitude:
        Normalized shift size (in pre-change standard deviations).
    """

    index: int
    magnitude: float


def cusum_changepoints(
    series: Sequence[float],
    threshold: float = 5.0,
    drift: float = 0.5,
    min_gap: int = 5,
) -> List[ChangePoint]:
    """Two-sided CUSUM change detection.

    Parameters
    ----------
    series:
        The metric series (e.g. a container's CPU usage).
    threshold:
        Alarm level in (robust) standard deviations.
    drift:
        Slack per sample; larger ignores slow trends.
    min_gap:
        Minimum samples between reported change points.
    """
    values = np.asarray(series, dtype=float)
    if values.size < 3:
        return []
    scale = float(np.median(np.abs(np.diff(values)))) * 1.4826
    if scale <= 0:
        scale = float(values.std()) or 1.0

    changes: List[ChangePoint] = []
    reference = values[0]
    positive = 0.0
    negative = 0.0
    last_change = -min_gap
    relearning: List[float] = []
    for i, value in enumerate(values):
        if relearning is not None and len(relearning) < min_gap and changes:
            # Right after a change: re-estimate the new level over a
            # short window instead of trusting one noisy sample, and
            # suspend accumulation meanwhile (standard CUSUM restart).
            relearning.append(value)
            reference = float(np.mean(relearning))
            continue
        z = (value - reference) / scale
        positive = max(0.0, positive + z - drift)
        negative = max(0.0, negative - z - drift)
        if (positive > threshold or negative > threshold) and (
            i - last_change >= min_gap
        ):
            magnitude = positive if positive > negative else -negative
            changes.append(ChangePoint(index=i, magnitude=float(magnitude)))
            positive = negative = 0.0
            last_change = i
            relearning = [value]
            reference = value
        elif i - last_change >= min_gap * 4:
            # Slowly re-anchor the reference to the local level so
            # gradual drifts do not accumulate into false alarms.
            reference = 0.95 * reference + 0.05 * value
    return changes


def sliding_mean_shifts(
    series: Sequence[float],
    window: int = 10,
    z_threshold: float = 4.0,
    min_gap: Optional[int] = None,
) -> List[ChangePoint]:
    """Mean-shift detection by comparing adjacent windows.

    Flags index ``i`` when the means of ``series[i-window:i]`` and
    ``series[i:i+window]`` differ by more than ``z_threshold`` pooled
    standard errors. Simpler than CUSUM, better suited to step-like
    workload intensity changes (the paper's Fig. 13 steps).
    """
    values = np.asarray(series, dtype=float)
    if window < 2:
        raise ValueError("window must be >= 2")
    if min_gap is None:
        min_gap = window
    changes: List[ChangePoint] = []
    last_change = -min_gap
    for i in range(window, values.size - window):
        left = values[i - window:i]
        right = values[i:i + window]
        pooled = np.sqrt((left.var(ddof=1) + right.var(ddof=1)) / window)
        if pooled <= 1e-12:
            pooled = max(abs(left.mean()), 1e-12) * 1e-3
        z = (right.mean() - left.mean()) / pooled
        if abs(z) > z_threshold and i - last_change >= min_gap:
            changes.append(ChangePoint(index=i, magnitude=float(z)))
            last_change = i
    return changes
