"""Execution modes and the per-mode model bank.

"At any point in time, one of these 4 execution modes hold true: no
application is running; batch application runs alone; latency-sensitive
application runs alone; co-located execution" (§3.2.3). No single model
captures all of them — "modelling all the different execution modes
using a single model fails to capture the inherent patterns" — so the
predictor keeps one :class:`~repro.trajectory.sampling.TrajectoryModel`
per mode. Since the Stay-Away runtime manages the containers, it can
always determine the current mode exactly.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

import numpy as np

from repro.trajectory.sampling import TrajectoryModel


class ExecutionMode(enum.Enum):
    """The paper's four execution modes."""

    IDLE = "idle"
    BATCH_ONLY = "batch-only"
    SENSITIVE_ONLY = "sensitive-only"
    COLOCATED = "colocated"


def classify_mode(sensitive_active: bool, batch_active: bool) -> ExecutionMode:
    """Current execution mode from container run states.

    ``batch_active`` must be False when every batch container is paused
    or finished — a throttled system is in SENSITIVE_ONLY mode ("Upon
    throttling, the system moves to a different execution mode", §3.3).
    """
    if sensitive_active and batch_active:
        return ExecutionMode.COLOCATED
    if sensitive_active:
        return ExecutionMode.SENSITIVE_ONLY
    if batch_active:
        return ExecutionMode.BATCH_ONLY
    return ExecutionMode.IDLE


class ModeModelBank:
    """One trajectory model per execution mode, with switch handling.

    Feeding a point under a different mode than the previous point
    breaks step continuity in both models, so cross-mode jumps never
    pollute a mode's step distributions.
    """

    def __init__(self, window: int = 400, bins: int = 16) -> None:
        self.models: Dict[ExecutionMode, TrajectoryModel] = {
            mode: TrajectoryModel(window=window, bins=bins) for mode in ExecutionMode
        }
        self._current_mode: Optional[ExecutionMode] = None
        self.mode_switches = 0

    @property
    def current_mode(self) -> Optional[ExecutionMode]:
        """Mode of the most recently observed point."""
        return self._current_mode

    def model(self, mode: ExecutionMode) -> TrajectoryModel:
        """The trajectory model for one mode."""
        return self.models[mode]

    def observe(self, mode: ExecutionMode, point: np.ndarray) -> TrajectoryModel:
        """Record a mapped position under its execution mode.

        Returns the model that absorbed the observation.
        """
        if mode is not self._current_mode:
            if self._current_mode is not None:
                self.mode_switches += 1
            # New mode: its model must not chain a step from whatever
            # point it saw long ago; restart its track here.
            self.models[mode].break_continuity()
            self._current_mode = mode
        model = self.models[mode]
        model.observe(point)
        return model

    def active_model(self) -> Optional[TrajectoryModel]:
        """Model of the current mode (None before any observation)."""
        if self._current_mode is None:
            return None
        return self.models[self._current_mode]
