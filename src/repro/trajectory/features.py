"""Step features: distance and absolute angle between successive positions."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _validate_track(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) track, got shape {points.shape}")
    return points


def step_lengths(points: np.ndarray) -> np.ndarray:
    """Euclidean distances between successive positions.

    Returns an ``(n-1,)`` array (empty for tracks shorter than 2).
    """
    points = _validate_track(points)
    if points.shape[0] < 2:
        return np.empty(0)
    deltas = np.diff(points, axis=0)
    return np.sqrt(np.sum(deltas**2, axis=1))


def step_angles(points: np.ndarray) -> np.ndarray:
    """Absolute angles (radians in [-pi, pi]) of each step vs the x axis.

    This is the paper's alpha_i: "the absolute angle between the x
    direction and the step built by transitions from positions i and
    i+1" (§3.2.3).
    """
    points = _validate_track(points)
    if points.shape[0] < 2:
        return np.empty(0)
    deltas = np.diff(points, axis=0)
    return np.arctan2(deltas[:, 1], deltas[:, 0])


def step_features(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(distances, angles)`` for a track in one pass."""
    points = _validate_track(points)
    if points.shape[0] < 2:
        return np.empty(0), np.empty(0)
    deltas = np.diff(points, axis=0)
    distances = np.sqrt(np.sum(deltas**2, axis=1))
    angles = np.arctan2(deltas[:, 1], deltas[:, 0])
    return distances, angles


def turning_angles(points: np.ndarray) -> np.ndarray:
    """Relative (turning) angles between consecutive steps, in [-pi, pi].

    Not used by the predictor itself (which works on absolute angles)
    but useful to characterize correlated random walks in tests.
    """
    angles = step_angles(points)
    if angles.size < 2:
        return np.empty(0)
    turns = np.diff(angles)
    return np.mod(turns + np.pi, 2.0 * np.pi) - np.pi
