"""Trajectory modelling in the mapped 2-D state space.

The paper models the temporal evolution of the mapped execution as a
movement process characterized by two parameters per step (§3.2.3,
following Marsh et al.):

* the **distance** ``d`` between successive positions, and
* the **absolute angle** ``alpha`` between the x direction and the step.

Both are learned *per execution mode* as empirical probability
densities (histograms, smoothed with KDE for visualization) and future
states are sampled with the inverse-transform method. The package also
provides the reference stochastic movement models the paper name-checks
(biased random walk, Lévy flight) as synthetic generators for testing
and validation.
"""

from repro.trajectory.features import step_features, step_lengths, step_angles
from repro.trajectory.histograms import EmpiricalDistribution, Histogram
from repro.trajectory.kde import gaussian_kde, silverman_bandwidth
from repro.trajectory.models import (
    BiasedRandomWalk,
    CorrelatedRandomWalk,
    LevyFlight,
)
from repro.trajectory.modes import ExecutionMode, ModeModelBank, classify_mode
from repro.trajectory.sampling import TrajectoryModel
from repro.trajectory.var import VectorAutoregression, rolling_var_forecast_error

__all__ = [
    "BiasedRandomWalk",
    "CorrelatedRandomWalk",
    "EmpiricalDistribution",
    "ExecutionMode",
    "Histogram",
    "LevyFlight",
    "ModeModelBank",
    "TrajectoryModel",
    "VectorAutoregression",
    "classify_mode",
    "gaussian_kde",
    "silverman_bandwidth",
    "step_angles",
    "step_features",
    "step_lengths",
    "rolling_var_forecast_error",
]
