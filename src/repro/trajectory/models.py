"""Reference stochastic movement models.

The paper observes that "for a particular combination of batch
application and latency sensitive application, co-located execution
mode may show characteristics of a Biased Random Walk whereas for a
different combination, the execution mode may follow the trajectory
model of levy flight" (§3.2.3). These generators reproduce those model
families; they are used to validate the trajectory learner (it must
recover the bias of a biased walk, the heavy tail of a Lévy flight)
and to generate synthetic state-space tracks in tests and ablations.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class MovementModel(abc.ABC):
    """A 2-D stochastic movement process."""

    @abc.abstractmethod
    def step(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one displacement vector."""

    def generate(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        origin: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Generate an ``(n, 2)`` track of ``n`` positions.

        The first position is the origin; ``n - 1`` steps follow.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if rng is None:
            rng = np.random.default_rng(0)
        position = np.zeros(2) if origin is None else np.asarray(origin, float).copy()
        track = np.empty((n, 2))
        track[0] = position
        for i in range(1, n):
            position = position + self.step(rng)
            track[i] = position
        return track


class BiasedRandomWalk(MovementModel):
    """Steps with a preferred direction (von Mises angles).

    Parameters
    ----------
    bias_angle:
        Preferred absolute direction in radians.
    concentration:
        Von Mises kappa; 0 = uniform angles (unbiased), larger =
        stronger directional bias.
    step_mean / step_std:
        Gaussian step-length distribution (truncated at 0).
    """

    def __init__(
        self,
        bias_angle: float = 0.0,
        concentration: float = 2.0,
        step_mean: float = 0.05,
        step_std: float = 0.015,
    ) -> None:
        if concentration < 0:
            raise ValueError("concentration must be non-negative")
        if step_mean <= 0:
            raise ValueError("step_mean must be positive")
        self.bias_angle = bias_angle
        self.concentration = concentration
        self.step_mean = step_mean
        self.step_std = step_std

    def step(self, rng: np.random.Generator) -> np.ndarray:
        if self.concentration == 0:
            angle = rng.uniform(-np.pi, np.pi)
        else:
            angle = rng.vonmises(self.bias_angle, self.concentration)
        length = max(0.0, rng.normal(self.step_mean, self.step_std))
        return np.array([length * np.cos(angle), length * np.sin(angle)])


class CorrelatedRandomWalk(MovementModel):
    """Direction persistence: each step turns slightly from the last.

    Produces the "short bursts of correlated movement" the paper sees
    for VLC streaming in isolation (§3.2.3, Fig. 5).
    """

    def __init__(
        self,
        turn_std: float = 0.4,
        step_mean: float = 0.03,
        step_std: float = 0.01,
        initial_angle: float = 0.0,
    ) -> None:
        if step_mean <= 0:
            raise ValueError("step_mean must be positive")
        self.turn_std = turn_std
        self.step_mean = step_mean
        self.step_std = step_std
        self._angle = initial_angle

    def step(self, rng: np.random.Generator) -> np.ndarray:
        self._angle = self._angle + rng.normal(0.0, self.turn_std)
        length = max(0.0, rng.normal(self.step_mean, self.step_std))
        return np.array([length * np.cos(self._angle), length * np.sin(self._angle)])


class LevyFlight(MovementModel):
    """Heavy-tailed (Pareto) step lengths with uniform directions.

    The model the paper associates with "applications that experience
    sudden phase changes": mostly small steps with rare long jumps.

    Parameters
    ----------
    alpha:
        Pareto tail exponent (smaller = heavier tail). Must be > 0.
    scale:
        Minimum step length.
    truncate:
        Upper bound on step length (keeps synthetic maps bounded).
    """

    def __init__(
        self, alpha: float = 1.5, scale: float = 0.01, truncate: float = 1.0
    ) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        if truncate <= scale:
            raise ValueError("truncate must exceed scale")
        self.alpha = alpha
        self.scale = scale
        self.truncate = truncate

    def step(self, rng: np.random.Generator) -> np.ndarray:
        length = self.scale * (1.0 + rng.pareto(self.alpha))
        length = min(length, self.truncate)
        angle = rng.uniform(-np.pi, np.pi)
        return np.array([length * np.cos(angle), length * np.sin(angle)])
