"""Gaussian kernel density estimation.

The paper plots "the smoothed version of the histogram using kernel
density estimation" for the per-mode step/angle pdfs (Fig. 5). This is
a small, dependency-free KDE used by the figure benches and by tests
that check the pdf shapes (skew/bias) of the learned trajectories.
"""

from __future__ import annotations

import numpy as np


def silverman_bandwidth(samples: np.ndarray) -> float:
    """Silverman's rule-of-thumb bandwidth for 1-D Gaussian KDE."""
    samples = np.asarray(samples, dtype=float)
    n = samples.size
    if n < 2:
        return 1.0
    std = float(samples.std(ddof=1))
    iqr = float(np.subtract(*np.percentile(samples, [75, 25])))
    spread = min(std, iqr / 1.349) if iqr > 0 else std
    if spread <= 0:
        return 1.0
    return 0.9 * spread * n ** (-0.2)


def gaussian_kde(
    samples: np.ndarray,
    grid: np.ndarray,
    bandwidth: float = 0.0,
) -> np.ndarray:
    """Evaluate a Gaussian KDE of ``samples`` on ``grid``.

    Parameters
    ----------
    samples:
        1-D observations.
    grid:
        Points at which to evaluate the density.
    bandwidth:
        Kernel bandwidth; ``<= 0`` selects Silverman's rule.

    Returns
    -------
    Density values on the grid (integrates to ~1 over the real line).
    """
    samples = np.asarray(samples, dtype=float)
    grid = np.asarray(grid, dtype=float)
    if samples.size == 0:
        return np.zeros_like(grid)
    if bandwidth <= 0:
        bandwidth = silverman_bandwidth(samples)
    z = (grid[:, None] - samples[None, :]) / bandwidth
    kernel = np.exp(-0.5 * z**2) / np.sqrt(2.0 * np.pi)
    return kernel.sum(axis=1) / (samples.size * bandwidth)
