"""Per-mode trajectory model: learn step pdfs, sample candidate states.

This is the predictor's forecasting engine (§3.2.3): for the current
execution mode, maintain empirical distributions of step distance and
absolute angle, and generate a small set of candidate next positions by
inverse-transform sampling — "with 5 samples to model uncertainty, we
are able to achieve more than 90% accuracy on average".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trajectory.histograms import EmpiricalDistribution


class TrajectoryModel:
    """Step-distance and absolute-angle distributions for one mode.

    Parameters
    ----------
    window:
        How many recent steps to retain (drifting applications age out).
    bins:
        Histogram resolution for both parameters.
    """

    def __init__(self, window: int = 400, bins: int = 16) -> None:
        self.distances = EmpiricalDistribution(window=window, bins=bins, low=0.0)
        self.angles = EmpiricalDistribution(
            window=window, bins=bins, low=-np.pi, high=np.pi
        )
        self.steps_observed = 0
        self._last_point: Optional[np.ndarray] = None

    # -- learning --------------------------------------------------------
    def observe(self, point: np.ndarray) -> None:
        """Feed the next mapped position of this mode's trajectory.

        The first observation after a mode switch only sets the
        reference point; from the second on, (distance, angle) step
        features are recorded.
        """
        point = np.asarray(point, dtype=float)
        if point.shape != (2,):
            raise ValueError(f"expected a 2-D point, got shape {point.shape}")
        if self._last_point is not None:
            delta = point - self._last_point
            distance = float(np.hypot(delta[0], delta[1]))
            angle = float(np.arctan2(delta[1], delta[0]))
            self.distances.add(distance)
            self.angles.add(angle)
            self.steps_observed += 1
        self._last_point = point.copy()

    def break_continuity(self) -> None:
        """Forget the last reference point (called on mode switches)."""
        self._last_point = None

    @property
    def last_point(self) -> Optional[np.ndarray]:
        """Most recent observed position (None right after a mode switch)."""
        return None if self._last_point is None else self._last_point.copy()

    def ready(self, minimum_steps: int = 3) -> bool:
        """True once both parameter pdfs have a first approximation."""
        return self.distances.ready(minimum_steps) and self.angles.ready(minimum_steps)

    # -- forecasting -------------------------------------------------------
    def sample_steps(self, rng: np.random.Generator, n: int = 5) -> np.ndarray:
        """Draw ``n`` (dx, dy) displacement samples from the learned pdfs."""
        if n < 1:
            raise ValueError("n must be >= 1")
        distances = self.distances.sample(rng, n)
        angles = self.angles.sample(rng, n)
        return np.column_stack(
            [distances * np.cos(angles), distances * np.sin(angles)]
        )

    def predict_candidates(
        self,
        current: np.ndarray,
        rng: np.random.Generator,
        n: int = 5,
    ) -> np.ndarray:
        """``n`` candidate next positions around ``current``.

        "This allows us to predict a set of new states around the
        current state and models the uncertainty in the likely position
        of the future state" (§3.2.3).
        """
        current = np.asarray(current, dtype=float)
        if current.shape != (2,):
            raise ValueError(f"expected a 2-D point, got shape {current.shape}")
        return current[None, :] + self.sample_steps(rng, n)

    def mean_step_length(self) -> float:
        """Average observed step length (0 before any step)."""
        return self.distances.mean()
