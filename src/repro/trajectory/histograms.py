"""Empirical distributions: histograms with inverse-transform sampling.

"The underlying measurement is a histogram. ... A random set of samples
are then generated following the histogram using the inverse transform
method, which computes a mapping from a uniform distribution to an
arbitrary distribution" (§3.2.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np


class Histogram:
    """A fixed-range histogram with inverse-transform sampling.

    Parameters
    ----------
    low / high:
        Support of the distribution; out-of-range observations are
        clipped into the edge bins.
    bins:
        Number of equal-width bins.
    """

    def __init__(self, low: float, high: float, bins: int = 16) -> None:
        if high <= low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.low = float(low)
        self.high = float(high)
        self.bins = bins
        self.counts = np.zeros(bins, dtype=float)
        self.edges = np.linspace(low, high, bins + 1)

    @property
    def total(self) -> float:
        """Total observation weight."""
        return float(self.counts.sum())

    def bin_of(self, value: float) -> int:
        """Bin index for a value (edge bins absorb out-of-range values)."""
        width = (self.high - self.low) / self.bins
        index = int((value - self.low) / width)
        return min(max(index, 0), self.bins - 1)

    def add(self, value: float, weight: float = 1.0) -> None:
        """Record one observation."""
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self.counts[self.bin_of(value)] += weight

    def probabilities(self) -> np.ndarray:
        """Per-bin probability mass (uniform when nothing observed yet)."""
        total = self.total
        if total <= 0:
            return np.full(self.bins, 1.0 / self.bins)
        return self.counts / total

    def cdf(self) -> np.ndarray:
        """Cumulative distribution over bins (last entry == 1)."""
        cdf = np.cumsum(self.probabilities())
        cdf[-1] = 1.0
        return cdf

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Inverse-transform samples: uniform u -> bin via CDF -> uniform within bin.

        The bin lookup uses ``side="right"``: ``u`` maps to the first
        bin whose cumulative mass strictly exceeds it. With ``"left"``,
        ``u == 0.0`` (reachable — ``rng.uniform`` draws from the
        half-open ``[0, 1)``) and any ``u`` landing exactly on a CDF
        plateau selected a zero-mass bin.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        cdf = self.cdf()
        u = rng.uniform(0.0, 1.0, size=n)
        indices = np.searchsorted(cdf, u, side="right")
        indices = np.clip(indices, 0, self.bins - 1)
        left = self.edges[indices]
        right = self.edges[indices + 1]
        return left + rng.uniform(0.0, 1.0, size=n) * (right - left)

    def mode_bin_center(self) -> float:
        """Center of the most populated bin."""
        index = int(np.argmax(self.counts))
        return float(0.5 * (self.edges[index] + self.edges[index + 1]))

    def skewness(self) -> float:
        """Sample skewness of the binned distribution (bias check).

        The paper reads a skewed pdf as evidence that the trajectory is
        biased rather than uniformly random (§3.2.3).
        """
        probabilities = self.probabilities()
        centers = 0.5 * (self.edges[:-1] + self.edges[1:])
        mean = float(np.sum(probabilities * centers))
        variance = float(np.sum(probabilities * (centers - mean) ** 2))
        if variance <= 0:
            return 0.0
        third = float(np.sum(probabilities * (centers - mean) ** 3))
        return third / variance**1.5


class EmpiricalDistribution:
    """A windowed sample store that exposes a histogram view.

    Keeps the most recent ``window`` raw observations (applications
    drift; old phases should age out) and rebuilds the histogram over
    the observed range on demand.

    Parameters
    ----------
    window:
        Maximum retained observations.
    bins:
        Histogram resolution.
    low / high:
        Optional fixed support; inferred from the data when omitted.
    """

    def __init__(
        self,
        window: int = 400,
        bins: int = 16,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.bins = bins
        self.fixed_low = low
        self.fixed_high = high
        self._samples: Deque[float] = deque(maxlen=window)

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, value: float) -> None:
        """Record one observation."""
        self._samples.append(float(value))

    @property
    def samples(self) -> np.ndarray:
        return np.asarray(self._samples, dtype=float)

    def support(self) -> Tuple[float, float]:
        """The histogram support (fixed bounds or observed range)."""
        if self.fixed_low is not None and self.fixed_high is not None:
            return self.fixed_low, self.fixed_high
        if not self._samples:
            return (0.0, 1.0)
        values = self.samples
        low = self.fixed_low if self.fixed_low is not None else float(values.min())
        high = self.fixed_high if self.fixed_high is not None else float(values.max())
        if high <= low:
            high = low + max(abs(low) * 1e-6, 1e-9)
        return low, high

    def histogram(self) -> Histogram:
        """Materialize the current histogram."""
        low, high = self.support()
        hist = Histogram(low, high, bins=self.bins)
        for value in self._samples:
            hist.add(value)
        return hist

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Inverse-transform samples from the current histogram.

        With zero observations this returns zeros (the caller is
        expected to check :meth:`ready` for meaningful predictions).
        """
        if not self._samples:
            return np.zeros(n)
        return self.histogram().sample(rng, n)

    def ready(self, minimum: int = 3) -> bool:
        """True once enough observations exist for a first approximation.

        "after a few observations have been made, a first approximation
        of the pdfs for both parameters can be derived" (§3.2.3).
        """
        return len(self._samples) >= minimum

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return float(self.samples.mean())
