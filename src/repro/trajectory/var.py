"""Vector autoregression: the high-dimensional forecaster foil (§3.1).

The paper motivates the 2-D representation by contrast with VAR: "A
natural technique for forecasting in high dimensions is Vector
Autoregressive Models (VAR). In high dimensional spaces, the number of
samples needed for a reliable estimation of parameters ... increases
exponentially with the dimensionality ... leading to unreliable
parameter estimation."

This module implements a least-squares VAR(p) so that claim can be
tested empirically (see the VAR ablation bench): parameter count grows
as ``p * d^2``, so with the short sample windows a runtime controller
has, the high-dimensional VAR overfits while the paper's 2-D
trajectory sampler stays reliable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class VectorAutoregression:
    """VAR(p): x_t = c + A_1 x_{t-1} + ... + A_p x_{t-p} + noise.

    Parameters
    ----------
    order:
        Number of lags ``p``.
    ridge:
        Small L2 regularization on the least-squares fit (keeps the
        normal equations solvable for short samples).
    """

    def __init__(self, order: int = 1, ridge: float = 1e-8) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.order = order
        self.ridge = ridge
        self.coefficients: Optional[np.ndarray] = None  # (p*d + 1, d)
        self.dimension: Optional[int] = None

    @property
    def parameter_count(self) -> int:
        """Number of free parameters (the curse-of-dimensionality axis)."""
        if self.dimension is None:
            raise RuntimeError("fit the model first")
        return (self.order * self.dimension + 1) * self.dimension

    def _design(self, series: np.ndarray) -> np.ndarray:
        n = series.shape[0]
        rows = []
        for t in range(self.order, n):
            lagged = [series[t - lag] for lag in range(1, self.order + 1)]
            rows.append(np.concatenate([[1.0], *lagged]))
        return np.asarray(rows)

    def fit(self, series: np.ndarray) -> "VectorAutoregression":
        """Least-squares fit on an ``(n, d)`` multivariate series."""
        series = np.asarray(series, dtype=float)
        if series.ndim != 2:
            raise ValueError(f"series must be 2-D, got shape {series.shape}")
        n, d = series.shape
        if n <= self.order:
            raise ValueError(
                f"need more than order={self.order} samples, got {n}"
            )
        self.dimension = d
        design = self._design(series)
        targets = series[self.order:]
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self.coefficients = np.linalg.solve(gram, design.T @ targets)
        return self

    def predict_next(self, history: np.ndarray) -> np.ndarray:
        """One-step-ahead forecast from the last ``order`` observations."""
        if self.coefficients is None:
            raise RuntimeError("fit the model first")
        history = np.asarray(history, dtype=float)
        if history.ndim != 2 or history.shape[0] < self.order:
            raise ValueError(
                f"need at least {self.order} history rows, got {history.shape}"
            )
        if history.shape[1] != self.dimension:
            raise ValueError(
                f"history dimension {history.shape[1]} != fitted {self.dimension}"
            )
        lagged = [history[-lag] for lag in range(1, self.order + 1)]
        row = np.concatenate([[1.0], *lagged])
        return row @ self.coefficients

    def forecast_series(self, series: np.ndarray) -> np.ndarray:
        """In-sample one-step forecasts for every predictable index.

        Returns an ``(n - order, d)`` array aligned with
        ``series[order:]`` — convenient for accuracy evaluation.
        """
        if self.coefficients is None:
            raise RuntimeError("fit the model first")
        series = np.asarray(series, dtype=float)
        design = self._design(series)
        return design @ self.coefficients


def rolling_var_forecast_error(
    series: np.ndarray,
    order: int = 1,
    train_window: int = 30,
    ridge: float = 1e-6,
) -> np.ndarray:
    """Walk-forward one-step VAR forecast errors.

    For each t, fit VAR(order) on the preceding ``train_window``
    samples and forecast x_t; returns the Euclidean errors. This is the
    honest runtime-controller setting (small samples, online), where
    high-dimensional VAR suffers exactly as §3.1 predicts.
    """
    series = np.asarray(series, dtype=float)
    n = series.shape[0]
    errors = []
    for t in range(train_window, n):
        window = series[t - train_window:t]
        try:
            model = VectorAutoregression(order=order, ridge=ridge).fit(window)
            forecast = model.predict_next(window)
        except (ValueError, np.linalg.LinAlgError):
            continue
        errors.append(float(np.linalg.norm(forecast - series[t])))
    return np.asarray(errors)
