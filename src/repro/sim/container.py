"""LXC-like containers with SIGSTOP/SIGCONT semantics.

The paper runs every application in its own Linux container and
throttles batch applications by sending SIGSTOP to pause and SIGCONT to
resume (§3.3). A :class:`Container` reproduces that control surface: a
paused container contributes zero demand, makes zero progress and keeps
its application state frozen until resumed.

Containers also support cgroup-style static resource caps (``limits``)
— not used by Stay-Away itself (throttling is all-or-nothing in the
paper) but available to experiments and baselines.

Off-tick code (migration sizing, eviction scoring) must read
:attr:`Container.last_allocation` / :meth:`usage_snapshot`, never call
``app.demand()``: demand is sampled exactly once per tick by the
engine, and an extra probe would advance the application's private
jitter RNG and desync otherwise-identical runs. The batched engine
(``repro.sim.batch``) mirrors this lifecycle column-for-column —
state, pause counters, last granted memory — see ``docs/SIMULATION.md``
for the equivalence contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from repro.sim.clock import SimulationClock
from repro.sim.contention import Allocation
from repro.sim.resources import ResourceVector


@runtime_checkable
class ApplicationLike(Protocol):
    """What a container needs from the application it hosts.

    Implemented by :class:`repro.workloads.base.Application`; defined
    structurally here so the simulator does not depend on workloads.
    """

    name: str

    def demand(self, clock: SimulationClock) -> ResourceVector:
        """Resource demand for the upcoming tick."""
        ...

    def advance(
        self, allocation: Allocation, clock: SimulationClock
    ) -> None:
        """Consume the allocation and advance internal state by one tick."""
        ...

    @property
    def finished(self) -> bool:
        """True once the application has completed all its work."""
        ...


class ContainerState(enum.Enum):
    """Lifecycle states, mirroring ``lxc-info`` states."""

    CREATED = "created"
    RUNNING = "running"
    PAUSED = "paused"
    STOPPED = "stopped"


class ContainerError(RuntimeError):
    """Raised on invalid container lifecycle transitions."""


@dataclass
class Container:
    """A container hosting exactly one application.

    Parameters
    ----------
    name:
        Unique container name on the host.
    app:
        The hosted application (workload model).
    sensitive:
        True for latency-sensitive containers; Stay-Away never
        throttles these (the paper's constraint in §2.1 is that batch
        co-tenants are best-effort).
    limits:
        Optional cgroup-style per-resource caps applied to the
        application's demand before contention resolution.
    weight:
        cgroup-shares-style scheduling weight, honoured by
        weight-aware contention models (see
        :class:`~repro.sim.contention.WeightedWaterFillModel`).
    start_tick:
        Tick at which the container begins executing. Before that the
        container is admitted to the host but idle — this is how the
        paper's staggered execution lifecycles (Fig. 5, Fig. 13) are
        reproduced.
    """

    name: str
    app: ApplicationLike
    sensitive: bool = False
    limits: Optional[ResourceVector] = None
    weight: float = 1.0
    start_tick: int = 0
    state: ContainerState = ContainerState.CREATED
    pause_count: int = field(default=0, repr=False)
    paused_ticks: int = field(default=0, repr=False)
    running_ticks: int = field(default=0, repr=False)
    _last_allocation: Optional[Allocation] = field(default=None, repr=False)

    def set_weight(self, weight: float) -> None:
        """Adjust the scheduling weight (cgroup ``cpu.shares`` write)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.weight = weight

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Move the container to RUNNING (idempotent from CREATED)."""
        if self.state is ContainerState.STOPPED:
            raise ContainerError(f"container {self.name!r} is stopped; cannot start")
        if self.state is ContainerState.CREATED:
            self.state = ContainerState.RUNNING

    def stop(self) -> None:
        """Terminate the container; it never demands resources again."""
        self.state = ContainerState.STOPPED

    def pause(self) -> None:
        """SIGSTOP analogue: freeze the application instantly."""
        if self.state is ContainerState.STOPPED:
            raise ContainerError(f"container {self.name!r} is stopped; cannot pause")
        if self.state is ContainerState.RUNNING:
            self.state = ContainerState.PAUSED
            self.pause_count += 1

    def resume(self) -> None:
        """SIGCONT analogue: continue exactly where the app left off."""
        if self.state is ContainerState.STOPPED:
            raise ContainerError(f"container {self.name!r} is stopped; cannot resume")
        if self.state is ContainerState.PAUSED:
            self.state = ContainerState.RUNNING

    def restart(self) -> None:
        """Supervisor restart: revive a stopped or paused container.

        Unlike :meth:`resume`, a restart is allowed from STOPPED — it
        models a crash-looping supervisor (systemd, ``lxc-autostart``)
        bringing the process back up behind the controller's back.
        Pause bookkeeping (``pause_count`` / ``paused_ticks``) is left
        untouched; a finished application stays finished and simply
        idles after the restart.
        """
        if self.state in (ContainerState.STOPPED, ContainerState.PAUSED, ContainerState.CREATED):
            self.state = ContainerState.RUNNING

    # -- scheduling hooks (called by the host) ---------------------------
    def maybe_autostart(self, clock: SimulationClock) -> None:
        """Start the container once its scheduled start tick arrives."""
        if self.state is ContainerState.CREATED and clock.tick >= self.start_tick:
            self.start()

    def demand(self, clock: SimulationClock) -> ResourceVector:
        """Demand for this tick; zero unless RUNNING with an unfinished app."""
        if self.state is not ContainerState.RUNNING or self.app.finished:
            return ResourceVector.zero()
        demand = self.app.demand(clock).clamped(0.0)
        if self.limits is not None:
            demand = demand.capped_by(self.limits)
        return demand

    def deliver(self, allocation: Allocation, clock: SimulationClock) -> None:
        """Hand this tick's allocation to the application."""
        self._last_allocation = allocation
        self.running_ticks += 1
        self.app.advance(allocation, clock)
        if self.app.finished:
            self.stop()

    def observe_paused_tick(self) -> None:
        """Accounting hook: the host calls this for each paused tick."""
        self.paused_ticks += 1

    # -- introspection ---------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self.state is ContainerState.RUNNING

    @property
    def is_paused(self) -> bool:
        return self.state is ContainerState.PAUSED

    @property
    def is_active(self) -> bool:
        """Running or paused — i.e. admitted and not yet finished."""
        return self.state in (ContainerState.RUNNING, ContainerState.PAUSED)

    @property
    def last_allocation(self) -> Optional[Allocation]:
        """The most recent allocation delivered to this container."""
        return self._last_allocation

    def usage_snapshot(self) -> ResourceVector:
        """Resources the container actually consumed in the last tick.

        This is what a monitoring agent reading ``/sys/fs/cgroup`` or
        libvirt stats would see: zero while paused, the granted
        allocation while running.
        """
        if self.state is not ContainerState.RUNNING or self._last_allocation is None:
            return ResourceVector.zero()
        return self._last_allocation.granted
