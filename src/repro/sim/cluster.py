"""Multi-host cluster with live migration.

Stay-Away is a per-host mechanism; the paper positions it as a
complement to cluster schedulers (§2.1) and compares against systems
that *migrate* interfering VMs (DeepDive, §8) — noting that "VM
migration is slow and involves a high cost". This module provides the
substrate for those comparisons: a set of hosts stepped in lockstep on
one shared clock, and a migration primitive with a realistic downtime
cost (the container is unavailable while its memory image is copied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.clock import SimulationClock
from repro.sim.container import Container
from repro.sim.host import Host, HostSnapshot
from repro.sim.resources import Resource, ResourceVector


@dataclass(frozen=True)
class MigrationRecord:
    """One completed or in-flight migration."""

    container: str
    source: str
    destination: str
    start_tick: int
    downtime_ticks: int

    def done_at(self) -> int:
        """Tick at which the container resumes on the destination."""
        return self.start_tick + self.downtime_ticks


@dataclass
class _InFlight:
    record: MigrationRecord
    container: Container


class Cluster:
    """A fixed set of hosts sharing one simulation clock.

    Parameters
    ----------
    host_names:
        Names of the hosts to create.
    capacity:
        Per-host capacity (same for all; pass per-host Hosts directly
        via ``hosts`` for heterogeneity).
    hosts:
        Pre-built hosts keyed by name (mutually exclusive with
        ``host_names``). Their clocks are replaced by the shared one.
    migration_mb_per_tick:
        Memory image copy rate; downtime = resident set / rate,
        rounded up (the paper's "migration is slow" cost model).
    """

    def __init__(
        self,
        host_names: Optional[List[str]] = None,
        capacity: Optional[ResourceVector] = None,
        hosts: Optional[Dict[str, Host]] = None,
        migration_mb_per_tick: float = 1000.0,
    ) -> None:
        if (host_names is None) == (hosts is None):
            raise ValueError("pass exactly one of host_names or hosts")
        if migration_mb_per_tick <= 0:
            raise ValueError("migration_mb_per_tick must be positive")
        self.clock = SimulationClock()
        if hosts is not None:
            self.hosts = dict(hosts)
            for host in self.hosts.values():
                host.clock = self.clock
        else:
            self.hosts = {
                name: Host(capacity=capacity, clock=self.clock)
                for name in host_names
            }
        if not self.hosts:
            raise ValueError("a cluster needs at least one host")
        self.migration_mb_per_tick = migration_mb_per_tick
        self.migrations: List[MigrationRecord] = []
        self.middlewares: List = []
        self._in_flight: List[_InFlight] = []

    # -- lookup ----------------------------------------------------------
    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.hosts[name]

    def host_of(self, container_name: str) -> Optional[str]:
        """Name of the host currently holding a container (None if migrating)."""
        for host_name, host in self.hosts.items():
            if container_name in host.containers:
                return host_name
        return None

    # -- migration ---------------------------------------------------------
    def migrate(
        self, container_name: str, destination: str
    ) -> MigrationRecord:
        """Start a live migration of a container to another host.

        The container is removed from its source immediately and is
        unavailable (copying its memory image) for
        ``ceil(resident_mb / migration_mb_per_tick)`` ticks, after
        which it appears paused->running on the destination.
        """
        source = self.host_of(container_name)
        if source is None:
            raise ValueError(f"container {container_name!r} not found in cluster")
        if destination not in self.hosts:
            raise ValueError(f"unknown destination host {destination!r}")
        if destination == source:
            raise ValueError("destination equals source host")

        source_host = self.hosts[source]
        container = source_host.containers[container_name]
        resident_mb = container.usage_snapshot().get(Resource.MEMORY)
        if resident_mb <= 0:
            # Fall back to the app's current demand (freshly started
            # or paused containers report zero usage).
            resident_mb = container.app.demand(self.clock).get(Resource.MEMORY)
        downtime = max(1, int(-(-resident_mb // self.migration_mb_per_tick)))

        source_host.containers.pop(container_name)
        record = MigrationRecord(
            container=container_name,
            source=source,
            destination=destination,
            start_tick=self.clock.tick,
            downtime_ticks=downtime,
        )
        self.migrations.append(record)
        self._in_flight.append(_InFlight(record=record, container=container))
        return record

    def _land_migrations(self) -> None:
        landed: List[_InFlight] = []
        for flight in self._in_flight:
            if self.clock.tick >= flight.record.done_at():
                destination = self.hosts[flight.record.destination]
                destination.add_container(flight.container)
                landed.append(flight)
        for flight in landed:
            self._in_flight.remove(flight)

    @property
    def in_flight_migrations(self) -> List[MigrationRecord]:
        """Migrations whose downtime has not elapsed yet."""
        return [flight.record for flight in self._in_flight]

    # -- simulation -----------------------------------------------------------
    def step(self) -> Dict[str, HostSnapshot]:
        """Advance every host by one shared tick."""
        self._land_migrations()
        snapshots = {
            name: host.step(advance_clock=False)
            for name, host in self.hosts.items()
        }
        self.clock.advance()
        for middleware in self.middlewares:
            middleware.on_cluster_tick(snapshots, self)
        return snapshots

    def add_middleware(self, middleware) -> None:
        """Register a cluster-level observer/controller.

        Middlewares implement ``on_cluster_tick(snapshots, cluster)``
        and run after every cluster tick.
        """
        self.middlewares.append(middleware)

    def run(self, ticks: int) -> List[Dict[str, HostSnapshot]]:
        """Run the whole cluster for a fixed number of ticks."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        return [self.step() for _ in range(ticks)]

    def total_cpu_utilization(self) -> float:
        """Mean CPU utilization across hosts at the latest tick."""
        utilizations = []
        for host in self.hosts.values():
            if host.history:
                utilizations.append(
                    host.history[-1].cpu_utilization(host.capacity)
                )
        if not utilizations:
            return 0.0
        return sum(utilizations) / len(utilizations)
