"""Multi-host cluster with live migration and host-failure semantics.

Stay-Away is a per-host mechanism; the paper positions it as a
complement to cluster schedulers (§2.1) and compares against systems
that *migrate* interfering VMs (DeepDive, §8) — noting that "VM
migration is slow and involves a high cost". This module provides the
substrate for those comparisons: a set of hosts stepped in lockstep on
one shared clock, a migration primitive with a realistic downtime cost
(the container is unavailable while its memory image is copied), and a
host up/down lifecycle so fleet-level control planes can be drilled
against machine crashes.

Failure semantics
-----------------
* A **down** host (:meth:`Cluster.fail_host`) stops stepping: its
  containers are frozen, it produces no snapshots, and it can neither
  source nor receive migrations until :meth:`Cluster.recover_host`.
* A **removed** host (:meth:`Cluster.remove_host`) is gone for good,
  together with every container still on it.
* A migration whose destination died mid-copy **bounces** back to its
  source host; if the source is also gone the container is **lost**.
  Every migration therefore terminates in exactly one recorded outcome
  (``landed`` / ``bounced`` / ``lost``) — there are no orphaned
  in-flight migrations, no matter which hosts crash.

Engine modes
------------
``Cluster(engine="vector")`` batches the contention math: each tick it
stacks every up host's gathered demands into one ``(C, R)`` array with
a ``(C,)`` host index (rows in container insertion order, the
bit-parity requirement) and resolves all stock-model hosts in a single
array pass; hosts with custom contention models fall back to their own
scalar ``resolve``. ``engine="scalar"`` (default) is the per-host
object loop. Both produce bit-identical snapshots — the contract in
``docs/SIMULATION.md`` — and ``engine_stats`` counts which path each
host-tick took.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.sim.clock import SimulationClock
from repro.sim.container import Container
from repro.sim.contention import (
    Allocation,
    BatchResolution,
    ProportionalShareModel,
    WeightedWaterFillModel,
    resolve_proportional_arrays,
    resolve_waterfill_arrays,
)
from repro.sim.host import Host, HostSnapshot
from repro.sim.resources import Resource, ResourceVector

#: Valid values for :class:`Cluster`'s ``engine`` parameter.
ENGINE_MODES: Tuple[str, ...] = ("scalar", "vector")

#: Migration outcome values recorded on :class:`MigrationRecord`.
MIGRATION_IN_FLIGHT = "in-flight"
MIGRATION_LANDED = "landed"
MIGRATION_BOUNCED = "bounced"
MIGRATION_LOST = "lost"


@dataclass
class MigrationRecord:
    """One migration, from start to its recorded terminal outcome.

    Attributes
    ----------
    container / source / destination:
        What moved and between which hosts.
    start_tick / downtime_ticks:
        When the copy began and how long the container is unavailable.
    outcome:
        ``in-flight`` while copying, then exactly one of ``landed``
        (resumed on the destination), ``bounced`` (destination
        unavailable at landing time — returned to the source) or
        ``lost`` (both ends unavailable; the container is gone).
    completed_tick:
        Tick the terminal outcome was recorded (None while in flight).
    """

    container: str
    source: str
    destination: str
    start_tick: int
    downtime_ticks: int
    outcome: str = MIGRATION_IN_FLIGHT
    completed_tick: Optional[int] = None

    def done_at(self) -> int:
        """Tick at which the container is due to resume on the destination."""
        return self.start_tick + self.downtime_ticks

    @property
    def terminal(self) -> bool:
        """True once the migration reached a recorded final outcome."""
        return self.outcome != MIGRATION_IN_FLIGHT


@dataclass(frozen=True)
class ContainerLocation:
    """Where a container currently is, without ambiguity.

    ``status`` is one of ``on-host`` (``host`` names it), ``migrating``
    (``record`` is the in-flight migration) or ``absent`` (unknown to
    the cluster, or lost). :meth:`Cluster.host_of` collapses the last
    two into ``None``; use :meth:`Cluster.locate` when the difference
    matters.
    """

    status: str
    host: Optional[str] = None
    record: Optional[MigrationRecord] = None


@dataclass(frozen=True)
class HostEvent:
    """One host lifecycle transition (crash / recover / remove)."""

    tick: int
    kind: str
    host: str


@dataclass
class _InFlight:
    record: MigrationRecord
    container: Container


class Cluster:
    """A fixed set of hosts sharing one simulation clock.

    Parameters
    ----------
    host_names:
        Names of the hosts to create.
    capacity:
        Per-host capacity (same for all; pass per-host Hosts directly
        via ``hosts`` for heterogeneity).
    hosts:
        Pre-built hosts keyed by name (mutually exclusive with
        ``host_names``). Their clocks are replaced by the shared one.
    migration_mb_per_tick:
        Memory image copy rate; downtime = resident set / rate,
        rounded up (the paper's "migration is slow" cost model).
    engine:
        ``"scalar"`` steps each host through its own contention model
        (the reference path); ``"vector"`` batches all up hosts into
        one struct-of-arrays contention resolve per tick — identical
        snapshots, one broadcasted pass instead of a Python loop per
        host. Hosts whose contention model has no batched twin fall
        back to their scalar step (see ``engine_stats``).
    """

    def __init__(
        self,
        host_names: Optional[List[str]] = None,
        capacity: Optional[ResourceVector] = None,
        hosts: Optional[Dict[str, Host]] = None,
        migration_mb_per_tick: float = 1000.0,
        engine: str = "scalar",
    ) -> None:
        if (host_names is None) == (hosts is None):
            raise ValueError("pass exactly one of host_names or hosts")
        if migration_mb_per_tick <= 0:
            raise ValueError("migration_mb_per_tick must be positive")
        if engine not in ENGINE_MODES:
            raise ValueError(
                f"engine must be one of {ENGINE_MODES}, got {engine!r}"
            )
        self.clock = SimulationClock()
        if hosts is not None:
            self.hosts = dict(hosts)
            for host in self.hosts.values():
                host.clock = self.clock
        else:
            self.hosts = {
                name: Host(capacity=capacity, clock=self.clock)
                for name in host_names
            }
        if not self.hosts:
            raise ValueError("a cluster needs at least one host")
        self.migration_mb_per_tick = migration_mb_per_tick
        self.engine = engine
        #: Counters describing which stepping path ran: ``vector_ticks``
        #: / ``scalar_ticks`` per cluster tick, ``vector_rows`` container
        #: rows resolved by the batched path, and ``fallback_host_steps``
        #: host-ticks that fell back to the scalar path because the
        #: host's contention model has no batched twin.
        self.engine_stats: Dict[str, int] = {
            "vector_ticks": 0,
            "scalar_ticks": 0,
            "vector_rows": 0,
            "fallback_host_steps": 0,
        }
        self.migrations: List[MigrationRecord] = []
        self.middlewares: List = []
        self.down: Set[str] = set()
        self.host_events: List[HostEvent] = []
        self._in_flight: List[_InFlight] = []

    # -- lookup ----------------------------------------------------------
    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.hosts[name]

    def host_is_up(self, name: str) -> bool:
        """Whether a host exists and is not down."""
        return name in self.hosts and name not in self.down

    @property
    def up_hosts(self) -> List[str]:
        """Names of hosts currently able to step, in insertion order."""
        return [name for name in self.hosts if name not in self.down]

    def host_of(self, container_name: str) -> Optional[str]:
        """Name of the host currently holding a container.

        Returns ``None`` both for unknown containers and for containers
        whose migration is in flight — use :meth:`locate` when those
        two cases must be distinguished.
        """
        for host_name, host in self.hosts.items():
            if container_name in host.containers:
                return host_name
        return None

    def locate(self, container_name: str) -> ContainerLocation:
        """Unambiguous container location: on-host / migrating / absent."""
        host_name = self.host_of(container_name)
        if host_name is not None:
            return ContainerLocation(status="on-host", host=host_name)
        for flight in self._in_flight:
            if flight.record.container == container_name:
                return ContainerLocation(status="migrating", record=flight.record)
        return ContainerLocation(status="absent")

    # -- host lifecycle ----------------------------------------------------
    def fail_host(self, name: str) -> bool:
        """Crash a host: it stops stepping and its containers freeze.

        Returns True when the host transitioned up -> down (False when
        it was already down). Unknown hosts raise ``KeyError``.
        """
        if name not in self.hosts:
            raise KeyError(f"unknown host {name!r}")
        if name in self.down:
            return False
        self.down.add(name)
        self.host_events.append(
            HostEvent(tick=self.clock.tick, kind="crash", host=name)
        )
        return True

    def recover_host(self, name: str) -> bool:
        """Bring a crashed host back; its containers thaw next tick.

        Returns True when the host transitioned down -> up.
        """
        if name not in self.hosts:
            raise KeyError(f"unknown host {name!r}")
        if name not in self.down:
            return False
        self.down.discard(name)
        self.host_events.append(
            HostEvent(tick=self.clock.tick, kind="recover", host=name)
        )
        return True

    def remove_host(self, name: str) -> Host:
        """Permanently remove a host (and everything still on it)."""
        if name not in self.hosts:
            raise KeyError(f"unknown host {name!r}")
        if len(self.hosts) == 1:
            raise ValueError("cannot remove the last host of a cluster")
        host = self.hosts.pop(name)
        self.down.discard(name)
        self.host_events.append(
            HostEvent(tick=self.clock.tick, kind="remove", host=name)
        )
        return host

    # -- migration ---------------------------------------------------------
    def migrate(
        self, container_name: str, destination: str
    ) -> MigrationRecord:
        """Start a live migration of a container to another host.

        The container is removed from its source immediately and is
        unavailable (copying its memory image) for
        ``ceil(resident_mb / migration_mb_per_tick)`` ticks, after
        which it appears paused->running on the destination. Both ends
        must be up: a down source has an unreachable memory image, a
        down destination cannot receive one.
        """
        location = self.locate(container_name)
        if location.status == "migrating":
            raise ValueError(
                f"container {container_name!r} is already migrating "
                f"({location.record.source} -> {location.record.destination}, "
                f"due tick {location.record.done_at()})"
            )
        if location.status == "absent":
            raise ValueError(f"container {container_name!r} not found in cluster")
        source = location.host
        if source in self.down:
            raise ValueError(f"source host {source!r} is down")
        if destination not in self.hosts:
            raise ValueError(f"unknown destination host {destination!r}")
        if destination in self.down:
            raise ValueError(f"destination host {destination!r} is down")
        if destination == source:
            raise ValueError("destination equals source host")

        source_host = self.hosts[source]
        container = source_host.containers[container_name]
        resident_mb = container.usage_snapshot().get(Resource.MEMORY)
        if resident_mb <= 0 and container.last_allocation is not None:
            # Freshly started or paused containers report zero usage;
            # size the copy from the memory last granted instead.
            # (Probing container.app.demand() here would advance the
            # app's private RNG outside the tick loop and desync
            # otherwise-identical runs — never sample demand off-tick.)
            resident_mb = container.last_allocation.granted.get(Resource.MEMORY)
        downtime = max(1, int(-(-resident_mb // self.migration_mb_per_tick)))

        source_host.containers.pop(container_name)
        record = MigrationRecord(
            container=container_name,
            source=source,
            destination=destination,
            start_tick=self.clock.tick,
            downtime_ticks=downtime,
        )
        self.migrations.append(record)
        self._in_flight.append(_InFlight(record=record, container=container))
        return record

    def cancel_migration(self, record: MigrationRecord) -> str:
        """Abort an in-flight migration, returning its recorded outcome.

        The container bounces back to its source host immediately (no
        further downtime); if the source is gone too, it is lost. Used
        by migration supervisors to cut short a copy whose destination
        already died instead of waiting for the scheduled landing.
        """
        for flight in self._in_flight:
            if flight.record is record:
                self._in_flight.remove(flight)
                return self._settle(flight, prefer_destination=False)
        raise ValueError(
            f"migration of {record.container!r} is not in flight "
            f"(outcome {record.outcome!r})"
        )

    def _settle(self, flight: _InFlight, prefer_destination: bool) -> str:
        """Land, bounce or lose one due/cancelled migration."""
        record = flight.record
        if prefer_destination and self.host_is_up(record.destination):
            self.hosts[record.destination].add_container(flight.container)
            record.outcome = MIGRATION_LANDED
        elif self.host_is_up(record.source):
            self.hosts[record.source].add_container(flight.container)
            record.outcome = MIGRATION_BOUNCED
        else:
            # Both ends unavailable: the memory image has nowhere to
            # go. The container is gone with its hosts.
            flight.container.stop()
            record.outcome = MIGRATION_LOST
        record.completed_tick = self.clock.tick
        return record.outcome

    def _land_migrations(self) -> None:
        remaining: List[_InFlight] = []
        for flight in self._in_flight:
            if self.clock.tick >= flight.record.done_at():
                self._settle(flight, prefer_destination=True)
            else:
                remaining.append(flight)
        self._in_flight = remaining

    @property
    def in_flight_migrations(self) -> List[MigrationRecord]:
        """Migrations whose downtime has not elapsed yet."""
        return [flight.record for flight in self._in_flight]

    # -- simulation -----------------------------------------------------------
    def step(self) -> Dict[str, HostSnapshot]:
        """Advance every *up* host by one shared tick.

        Down hosts are skipped entirely: their containers freeze and
        they contribute no snapshot — exactly what a monitoring plane
        sees from a crashed machine. With ``engine="vector"`` the up
        hosts are stepped through one batched contention resolve
        instead of per-host model calls; the snapshots are identical.
        """
        self._land_migrations()
        if self.engine == "vector":
            snapshots = self._step_vector()
            self.engine_stats["vector_ticks"] += 1
        else:
            snapshots = {
                name: host.step(advance_clock=False)
                for name, host in self.hosts.items()
                if name not in self.down
            }
            self.engine_stats["scalar_ticks"] += 1
        self.clock.advance()
        for middleware in self.middlewares:
            middleware.on_cluster_tick(snapshots, self)
        return snapshots

    def _step_vector(self) -> Dict[str, HostSnapshot]:
        """One batched tick over all up hosts.

        Hosts running a :class:`ProportionalShareModel` (resp.
        :class:`WeightedWaterFillModel`) are grouped and resolved by a
        single :func:`resolve_proportional_arrays`
        (:func:`resolve_waterfill_arrays`) call; hosts with any other
        contention model — including subclasses, whose overridden
        ``resolve`` must keep running — fall back to their scalar step.
        Container rows keep each host's insertion order, so the
        resulting snapshots are bit-identical to the scalar engine's on
        the same platform.
        """
        proportional: List[str] = []
        waterfill: List[str] = []
        fallback: List[str] = []
        for name in self.hosts:
            if name in self.down:
                continue
            model = self.hosts[name].contention
            # Exact-type checks: a subclass may override resolve().
            if type(model) is ProportionalShareModel:
                proportional.append(name)
            elif type(model) is WeightedWaterFillModel:
                waterfill.append(name)
            else:
                fallback.append(name)

        snapshots: Dict[str, HostSnapshot] = {}
        if proportional:
            self._resolve_host_batch(proportional, weighted=False, out=snapshots)
        if waterfill:
            self._resolve_host_batch(waterfill, weighted=True, out=snapshots)
        for name in fallback:
            snapshots[name] = self.hosts[name].step(advance_clock=False)
            self.engine_stats["fallback_host_steps"] += 1
        # Re-emit in host insertion order, like the scalar engine.
        return {name: snapshots[name] for name in self.hosts if name in snapshots}

    def _resolve_host_batch(
        self,
        names: List[str],
        weighted: bool,
        out: Dict[str, HostSnapshot],
    ) -> None:
        """Gather, batch-resolve and apply one group of same-model hosts.

        Builds the ``(C, R)`` demand matrix (one row per demanding
        container, host-major in container insertion order), the
        ``(C,)`` host-index column and the ``(H, R)``/``(H,)`` per-host
        capacity and swap parameters, then runs one array resolve and
        hands each host its allocation slice via
        :meth:`Host.apply_allocations`.
        """
        gathered = []
        for name in names:
            host = self.hosts[name]
            host.begin_tick()
            demands, weights = host.gather_demands()
            gathered.append((name, host, demands, weights))

        rows: List[np.ndarray] = []
        host_idx: List[int] = []
        weight_rows: List[float] = []
        for pos, (_, _, demands, weights) in enumerate(gathered):
            for cname, vector in demands.items():
                rows.append(vector.as_array())
                host_idx.append(pos)
                weight_rows.append(weights[cname])

        resolution: Optional[BatchResolution] = None
        if rows:
            demand = np.stack(rows)
            host_index = np.asarray(host_idx, dtype=np.intp)
            capacity = np.stack(
                [host.capacity.as_array() for _, host, _, _ in gathered]
            )
            swap_cost = np.array(
                [host.contention.swap_cost for _, host, _, _ in gathered]
            )
            swap_io_rate = np.array(
                [
                    host.contention.swap_io_per_overcommit_mb
                    for _, host, _, _ in gathered
                ]
            )
            if weighted:
                resolution = resolve_waterfill_arrays(
                    demand,
                    host_index,
                    np.asarray(weight_rows),
                    capacity,
                    swap_cost,
                    swap_io_rate,
                )
            else:
                resolution = resolve_proportional_arrays(
                    demand, host_index, capacity, swap_cost, swap_io_rate
                )
            self.engine_stats["vector_rows"] += demand.shape[0]

        row = 0
        for pos, (name, host, demands, _) in enumerate(gathered):
            allocations: Dict[str, Allocation] = {}
            for cname in demands:
                allocations[cname] = Allocation(
                    granted=ResourceVector.from_array(resolution.granted[row]),
                    progress=float(resolution.progress[row]),
                    swap_penalty=float(resolution.swap_penalty[row]),
                )
                row += 1
            if allocations:
                # Scalar resolve() only refreshes last_swap_ratio when
                # it saw demands; mirror that so idle-host snapshots
                # repeat the stale ratio identically on both paths.
                host.contention.record_swap_ratio(
                    float(resolution.swap_ratio[pos])
                )
            out[name] = host.apply_allocations(allocations)

    def add_middleware(self, middleware) -> None:
        """Register a cluster-level observer/controller.

        Middlewares implement ``on_cluster_tick(snapshots, cluster)``
        and run after every cluster tick. Snapshots of down hosts are
        absent from the mapping.
        """
        self.middlewares.append(middleware)

    def run(self, ticks: int) -> List[Dict[str, HostSnapshot]]:
        """Run the whole cluster for a fixed number of ticks."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        return [self.step() for _ in range(ticks)]

    def total_cpu_utilization(self) -> float:
        """Mean CPU utilization across up hosts at the latest tick."""
        utilizations = []
        for name, host in self.hosts.items():
            if name not in self.down and host.history:
                utilizations.append(
                    host.history[-1].cpu_utilization(host.capacity)
                )
        if not utilizations:
            return 0.0
        return sum(utilizations) / len(utilizations)
