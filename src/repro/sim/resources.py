"""Resource kinds and resource vectors.

A :class:`ResourceVector` describes either a demand, an allocation or a
capacity over the five resource dimensions the simulated host exposes:

* ``CPU`` — cores of compute (a *rate* resource; 4.0 = four cores).
* ``MEMORY`` — resident memory in MB (a *space* resource).
* ``MEMORY_BW`` — memory-bus bandwidth in MB/s (rate).
* ``DISK_IO`` — disk throughput in MB/s (rate).
* ``NETWORK`` — network throughput in Mbit/s (rate).

The paper monitors "CPU, memory, I/O, network traffic" per VM and notes
that the metric set is open-ended ("performance counters for each VM
can be used to characterize the load on the memory bus", §3.1); we
therefore include memory bandwidth explicitly so that memory-subsystem
contention (MemoryBomb, Twitter-Analysis memory phases) is observable.

Array form: :meth:`ResourceVector.as_array` / ``from_array`` map to a
``(NUM_RESOURCES,)`` float64 row in the canonical column order above
(``RESOURCE_INDEX``). Every ``(C, R)`` / ``(H, R)`` array in the
batched resolvers and :mod:`repro.sim.batch` uses that column order;
``RATE_INDICES`` / ``MEMORY_INDEX`` select the rate columns and the
memory column respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, Mapping, Tuple

import numpy as np


class Resource(Enum):
    """The resource dimensions tracked by the simulated host."""

    CPU = "cpu"
    MEMORY = "memory"
    MEMORY_BW = "memory_bw"
    DISK_IO = "disk_io"
    NETWORK = "network"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Resource.{self.name}"


#: Resources that are consumed per unit time and shared proportionally
#: under contention. MEMORY is the only space resource: overcommitting
#: it triggers swapping, which penalizes every memory-resident tenant.
RATE_RESOURCES: Tuple[Resource, ...] = (
    Resource.CPU,
    Resource.MEMORY_BW,
    Resource.DISK_IO,
    Resource.NETWORK,
)

_FIELDS: Tuple[Resource, ...] = tuple(Resource)

#: Canonical dense-array column for each resource. Every ``(*, R)``
#: array in the vectorized engine (:mod:`repro.sim.batch`) uses this
#: column order, which matches :meth:`ResourceVector.items` order.
RESOURCE_INDEX: Dict[Resource, int] = {res: i for i, res in enumerate(_FIELDS)}

#: Number of resource dimensions (the ``R`` in ``(C, R)`` shapes).
NUM_RESOURCES: int = len(_FIELDS)

#: Columns of the rate resources, in ``RATE_RESOURCES`` order — the
#: axis-1 index used by batched share-ratio and progress computations.
RATE_INDICES: Tuple[int, ...] = tuple(RESOURCE_INDEX[res] for res in RATE_RESOURCES)

#: Column of the one space resource (memory) in dense arrays.
MEMORY_INDEX: int = RESOURCE_INDEX[Resource.MEMORY]

#: Column of disk I/O — the resource swap pressure congests.
DISK_IO_INDEX: int = RESOURCE_INDEX[Resource.DISK_IO]


@dataclass(frozen=True)
class ResourceVector:
    """An immutable value over all five resource dimensions.

    Supports elementwise arithmetic so contention models and workloads
    can combine demands without manual bookkeeping.
    """

    cpu: float = 0.0
    memory: float = 0.0
    memory_bw: float = 0.0
    disk_io: float = 0.0
    network: float = 0.0

    # -- construction -------------------------------------------------
    @classmethod
    def zero(cls) -> "ResourceVector":
        """The all-zero vector."""
        return cls()

    @classmethod
    def from_mapping(cls, values: Mapping[Resource, float]) -> "ResourceVector":
        """Build a vector from a ``{Resource: value}`` mapping."""
        return cls(**{res.value: float(values.get(res, 0.0)) for res in _FIELDS})

    @classmethod
    def from_array(cls, values: "np.ndarray") -> "ResourceVector":
        """Build a vector from a dense ``(R,)`` array in canonical order.

        The inverse of :meth:`as_array`; the column order is
        ``RESOURCE_INDEX`` (cpu, memory, memory_bw, disk_io, network).
        """
        return cls(
            cpu=float(values[0]),
            memory=float(values[1]),
            memory_bw=float(values[2]),
            disk_io=float(values[3]),
            network=float(values[4]),
        )

    # -- access -------------------------------------------------------
    def as_array(self) -> "np.ndarray":
        """This vector as a dense ``(R,)`` float64 array.

        Column order is ``RESOURCE_INDEX`` — the layout shared by every
        batched array in :mod:`repro.sim.batch` and the array resolvers
        in :mod:`repro.sim.contention`.
        """
        return np.array(
            [self.cpu, self.memory, self.memory_bw, self.disk_io, self.network],
            dtype=np.float64,
        )

    def get(self, resource: Resource) -> float:
        """Value for one resource dimension."""
        return float(getattr(self, resource.value))

    def as_dict(self) -> Dict[Resource, float]:
        """A ``{Resource: value}`` snapshot of this vector."""
        return {res: self.get(res) for res in _FIELDS}

    def items(self) -> Iterator[Tuple[Resource, float]]:
        """Iterate ``(resource, value)`` pairs in canonical order."""
        for res in _FIELDS:
            yield res, self.get(res)

    def replace(self, resource: Resource, value: float) -> "ResourceVector":
        """A copy of this vector with one dimension replaced."""
        values = self.as_dict()
        values[resource] = float(value)
        return ResourceVector.from_mapping(values)

    # -- arithmetic ---------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            cpu=self.cpu + other.cpu,
            memory=self.memory + other.memory,
            memory_bw=self.memory_bw + other.memory_bw,
            disk_io=self.disk_io + other.disk_io,
            network=self.network + other.network,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            cpu=self.cpu - other.cpu,
            memory=self.memory - other.memory,
            memory_bw=self.memory_bw - other.memory_bw,
            disk_io=self.disk_io - other.disk_io,
            network=self.network - other.network,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """Elementwise multiplication by a scalar."""
        return ResourceVector(
            cpu=self.cpu * factor,
            memory=self.memory * factor,
            memory_bw=self.memory_bw * factor,
            disk_io=self.disk_io * factor,
            network=self.network * factor,
        )

    def clamped(self, lower: float = 0.0) -> "ResourceVector":
        """Elementwise ``max(value, lower)`` (demands must not go negative)."""
        return ResourceVector(
            cpu=max(self.cpu, lower),
            memory=max(self.memory, lower),
            memory_bw=max(self.memory_bw, lower),
            disk_io=max(self.disk_io, lower),
            network=max(self.network, lower),
        )

    def capped_by(self, limits: "ResourceVector") -> "ResourceVector":
        """Elementwise ``min(value, limit)``; used for cgroup-style caps."""
        return ResourceVector(
            cpu=min(self.cpu, limits.cpu),
            memory=min(self.memory, limits.memory),
            memory_bw=min(self.memory_bw, limits.memory_bw),
            disk_io=min(self.disk_io, limits.disk_io),
            network=min(self.network, limits.network),
        )

    def total_positive(self) -> float:
        """Sum over all dimensions (useful only for emptiness checks)."""
        return sum(value for _, value in self.items())

    def is_zero(self, tolerance: float = 1e-12) -> bool:
        """True when every dimension is (numerically) zero."""
        return all(abs(value) <= tolerance for _, value in self.items())


def sum_vectors(vectors: Iterable[ResourceVector]) -> ResourceVector:
    """Elementwise sum of an iterable of vectors (zero if empty)."""
    total = ResourceVector.zero()
    for vector in vectors:
        total = total + vector
    return total


def default_host_capacity() -> ResourceVector:
    """Capacity modelled on the paper's testbed.

    The paper uses a 3.2 GHz dual-socket Intel Core i5 with 4 cores,
    4 MB shared L3 (§7). We translate this into a 4-core CPU budget,
    8 GB of RAM, ~10 GB/s memory bus, a SATA-class disk and gigabit
    Ethernet — the era-appropriate commodity box.
    """
    return ResourceVector(
        cpu=4.0,
        memory=8192.0,
        memory_bw=10_000.0,
        disk_io=150.0,
        network=1000.0,
    )
