"""The simulated physical host.

A :class:`Host` owns a set of containers and a contention model. Each
tick it gathers demands from running containers, resolves contention,
delivers allocations and produces a :class:`HostSnapshot` — the
observable state a monitoring agent would collect from cgroups/libvirt.

A tick is four separately callable phases — ``begin_tick`` →
``gather_demands`` → resolve → ``apply_allocations`` — so that the
batched cluster engine can interpose a fleet-wide array resolve
between gather and apply while reusing everything else. Demands are
gathered in container insertion order, which is the floating-point
fold order the equivalence contract in ``docs/SIMULATION.md`` pins
down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.clock import SimulationClock
from repro.sim.container import Container, ContainerState
from repro.sim.contention import (
    Allocation,
    ContentionModel,
    ProportionalShareModel,
)
from repro.sim.resources import (
    Resource,
    ResourceVector,
    default_host_capacity,
    sum_vectors,
)


@dataclass(frozen=True)
class HostSnapshot:
    """Observable host state after one tick.

    Attributes
    ----------
    tick:
        Tick this snapshot describes.
    usage:
        Per-container resources actually consumed this tick (zero for
        paused / idle / finished containers).
    allocations:
        Full allocation records (including progress factors) per
        running container.
    states:
        Container lifecycle state per container.
    swap_ratio:
        Memory overcommit ratio this tick (1.0 = no overcommit).
    """

    tick: int
    usage: Dict[str, ResourceVector]
    allocations: Dict[str, Allocation]
    states: Dict[str, ContainerState]
    swap_ratio: float

    def total_usage(self) -> ResourceVector:
        """Aggregate resource consumption across all containers."""
        return sum_vectors(self.usage.values())

    def cpu_utilization(self, capacity: ResourceVector) -> float:
        """Machine CPU utilization in [0, 1] — the paper's utilization metric."""
        cpu_capacity = capacity.get(Resource.CPU)
        if cpu_capacity <= 0:
            return 0.0
        return min(1.0, self.total_usage().get(Resource.CPU) / cpu_capacity)


class Host:
    """A single physical machine hosting containers.

    Parameters
    ----------
    capacity:
        Total machine resources; defaults to the paper's testbed
        (4 cores, 8 GB RAM, see :func:`default_host_capacity`).
    contention:
        The contention model; defaults to proportional share with a
        swap penalty.
    clock:
        Shared simulation clock; a fresh one is created if omitted.
    """

    def __init__(
        self,
        capacity: Optional[ResourceVector] = None,
        contention: Optional[ContentionModel] = None,
        clock: Optional[SimulationClock] = None,
    ) -> None:
        self.capacity = capacity if capacity is not None else default_host_capacity()
        self.contention = contention if contention is not None else ProportionalShareModel()
        self.clock = clock if clock is not None else SimulationClock()
        self._containers: Dict[str, Container] = {}
        self._history: List[HostSnapshot] = []

    # -- container management -----------------------------------------
    def add_container(self, container: Container) -> Container:
        """Admit a container to the host. Names must be unique."""
        if container.name in self._containers:
            raise ValueError(f"duplicate container name: {container.name!r}")
        self._containers[container.name] = container
        return container

    def remove_container(self, name: str) -> Container:
        """Evict a container (it is stopped first)."""
        container = self._containers.pop(name)
        container.stop()
        return container

    def container(self, name: str) -> Container:
        """Look up a container by name."""
        return self._containers[name]

    @property
    def containers(self) -> Dict[str, Container]:
        """All admitted containers by name (read-only view by convention)."""
        return self._containers

    def sensitive_containers(self) -> List[Container]:
        """Containers marked latency-sensitive."""
        return [c for c in self._containers.values() if c.sensitive]

    def batch_containers(self) -> List[Container]:
        """Best-effort batch containers (the throttling candidates)."""
        return [c for c in self._containers.values() if not c.sensitive]

    # -- signals (the Stay-Away action surface) -------------------------
    def pause_container(self, name: str) -> None:
        """Send SIGSTOP to a container's process group."""
        self._containers[name].pause()

    def resume_container(self, name: str) -> None:
        """Send SIGCONT to a container's process group."""
        self._containers[name].resume()

    # -- simulation -----------------------------------------------------
    #
    # One tick is four phases: begin_tick (autostarts), gather_demands,
    # contention resolve, apply_allocations (delivery + snapshot).
    # ``step`` runs all four against this host's own contention model;
    # the batched cluster engine (``Cluster(engine="vector")``) calls
    # the phases directly so one array resolve can serve many hosts
    # while reusing these exact lifecycle semantics.

    def begin_tick(self) -> None:
        """Phase 1: autostart containers whose start tick has arrived."""
        for container in self._containers.values():
            container.maybe_autostart(self.clock)

    def gather_demands(self) -> "tuple[Dict[str, ResourceVector], Dict[str, float]]":
        """Phase 2: collect demand and weight rows for this tick.

        Returns ``(demands, weights)`` keyed by container name, both in
        container insertion order. Only running containers with a
        non-zero demand vector appear (paused / idle / finished
        containers demand nothing) — the same gate the contention
        models assume.
        """
        demands: Dict[str, ResourceVector] = {}
        weights: Dict[str, float] = {}
        for name, container in self._containers.items():
            demand = container.demand(self.clock)
            if container.is_running and not demand.is_zero():
                demands[name] = demand
                weights[name] = container.weight
        return demands, weights

    def apply_allocations(self, allocations: Dict[str, Allocation]) -> HostSnapshot:
        """Phase 4: deliver allocations and record the tick's snapshot.

        Containers present in ``allocations`` receive their grant
        (advancing their application); absent ones account a paused
        tick if paused. The snapshot's ``swap_ratio`` reads the
        contention model's ``last_swap_ratio`` — when the batched
        engine resolved this tick, it stores the host's ratio on the
        model first so this phase stays oblivious to which path ran.
        """
        clock = self.clock
        usage: Dict[str, ResourceVector] = {}
        states: Dict[str, ContainerState] = {}
        for name, container in self._containers.items():
            if name in allocations:
                container.deliver(allocations[name], clock)
                usage[name] = allocations[name].granted
            else:
                if container.is_paused:
                    container.observe_paused_tick()
                usage[name] = ResourceVector.zero()
            states[name] = container.state

        swap_ratio = getattr(self.contention, "last_swap_ratio", 1.0)
        snapshot = HostSnapshot(
            tick=clock.tick,
            usage=usage,
            allocations=allocations,
            states=states,
            swap_ratio=swap_ratio,
        )
        self._history.append(snapshot)
        return snapshot

    def step(self, advance_clock: bool = True) -> HostSnapshot:
        """Advance the host by one tick and return the observable snapshot.

        Parameters
        ----------
        advance_clock:
            Set False when an external coordinator (a
            :class:`~repro.sim.cluster.Cluster`) owns a clock shared by
            several hosts and advances it once per cluster tick.
        """
        self.begin_tick()
        demands, weights = self.gather_demands()
        allocations = self.contention.resolve(demands, self.capacity, weights)
        snapshot = self.apply_allocations(allocations)
        if advance_clock:
            self.clock.advance()
        return snapshot

    @property
    def history(self) -> List[HostSnapshot]:
        """All snapshots produced so far, in tick order."""
        return self._history

    def all_finished(self) -> bool:
        """True when no container can ever demand resources again."""
        return all(
            container.state is ContainerState.STOPPED
            or container.app.finished
            for container in self._containers.values()
        )
