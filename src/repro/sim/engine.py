"""Simulation engine: the run loop wiring host, workloads and middleware.

The engine advances the host tick by tick and, after every tick, hands
the resulting :class:`~repro.sim.host.HostSnapshot` to each registered
middleware. The Stay-Away controller, the baselines and the metric
collectors are all middlewares — exactly the paper's architecture where
"the Stay-Away runtime is a middleware between the VMs and the
underlying resource" (§3).

Each tick delegates to :meth:`Host.step`, which itself runs the
four-phase pipeline (begin_tick -> gather_demands -> resolve ->
apply_allocations) documented in ``docs/SIMULATION.md``. Multi-host
runs use :class:`~repro.sim.cluster.Cluster` (optionally with its
batched ``engine="vector"`` path); trace-driven fleet-scale runs use
the pure struct-of-arrays :class:`~repro.sim.batch.BatchEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Protocol, runtime_checkable

from repro.sim.host import Host, HostSnapshot


@runtime_checkable
class Middleware(Protocol):
    """Anything that observes (and possibly acts on) the host each tick."""

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """Called once per tick, after contention was resolved."""
        ...


@dataclass
class SimulationResult:
    """Outcome of a simulation run."""

    snapshots: List[HostSnapshot] = field(default_factory=list)
    ticks: int = 0

    @property
    def duration(self) -> int:
        """Number of ticks executed (alias for ``ticks``)."""
        return self.ticks


class SimulationEngine:
    """Drives a host for a bounded number of ticks.

    Parameters
    ----------
    host:
        The host to simulate.
    middlewares:
        Observers/controllers invoked after each tick, in order.
        Controllers that pause/resume containers take effect from the
        *next* tick, matching a real monitoring loop's one-period lag.
    """

    def __init__(self, host: Host, middlewares: Iterable[Middleware] = ()) -> None:
        self.host = host
        self.middlewares: List[Middleware] = list(middlewares)

    def add_middleware(self, middleware: Middleware) -> None:
        """Register an additional observer/controller."""
        self.middlewares.append(middleware)

    def run(
        self,
        ticks: Optional[int] = None,
        until_finished: bool = False,
        max_ticks: int = 100_000,
    ) -> SimulationResult:
        """Run the simulation.

        Parameters
        ----------
        ticks:
            Exact number of ticks to execute. Mutually exclusive with
            ``until_finished``.
        until_finished:
            Run until every container has finished (bounded by
            ``max_ticks`` as a runaway guard).
        """
        if ticks is None and not until_finished:
            raise ValueError("specify either ticks= or until_finished=True")
        if ticks is not None and until_finished:
            raise ValueError("ticks= and until_finished=True are mutually exclusive")
        if ticks is not None and ticks < 0:
            raise ValueError(f"ticks must be non-negative, got {ticks}")

        result = SimulationResult()
        budget = ticks if ticks is not None else max_ticks
        for _ in range(budget):
            if until_finished and self.host.all_finished():
                break
            snapshot = self.host.step()
            result.snapshots.append(snapshot)
            result.ticks += 1
            for middleware in self.middlewares:
                middleware.on_tick(snapshot, self.host)
        return result
