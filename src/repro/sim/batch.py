"""Batched struct-of-arrays simulation engine.

The object engine (:mod:`repro.sim.host` / :mod:`repro.sim.cluster`)
steps one container at a time through Python method calls — faithful,
but ~1.4k host-ticks/s. This module holds the fleet in dense NumPy
arrays instead and steps *all containers on all hosts* with one
broadcasted pass per tick:

* demand gathering is one fancy-index into a ``(C, P, R)`` trace cube,
* contention is one segmented resolve per model kind
  (:func:`~repro.sim.contention.resolve_proportional_arrays` /
  :func:`~repro.sim.contention.resolve_waterfill_arrays`),
* pause / resume / migration / host failure are boolean-mask updates.

Shapes follow one convention throughout: ``C`` containers, ``H``
hosts, ``R`` resource dimensions
(:data:`~repro.sim.resources.NUM_RESOURCES`, column order
:data:`~repro.sim.resources.RESOURCE_INDEX`), ``P`` trace period.

Equivalence contract
--------------------
A :class:`BatchScenario` can be run three ways — :class:`BatchEngine`
(this module), :func:`build_scalar_cluster` with ``engine="scalar"``
(the reference object engine) or ``engine="vector"`` (the hybrid
cluster path) — and :func:`run_scenario` produces *bit-identical*
trajectories on the same platform, because every array expression
mirrors the scalar arithmetic operand for operand and every segmented
reduction folds rows in the hosts' container insertion order. See
``docs/SIMULATION.md`` for the full contract and its limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.clock import SimulationClock
from repro.sim.cluster import Cluster
from repro.sim.container import Container, ContainerError
from repro.sim.contention import (
    ProportionalShareModel,
    WeightedWaterFillModel,
    resolve_proportional_arrays,
    resolve_waterfill_arrays,
)
from repro.sim.host import Host
from repro.sim.resources import (
    MEMORY_INDEX,
    NUM_RESOURCES,
    ResourceVector,
    default_host_capacity,
)

#: Contention model kinds a :class:`HostSpec` may name.
MODEL_KINDS: Tuple[str, ...] = ("proportional", "waterfill")

#: Event actions a :class:`BatchEvent` may carry.
EVENT_ACTIONS: Tuple[str, ...] = (
    "pause",
    "resume",
    "stop",
    "migrate",
    "fail_host",
    "recover_host",
)

# Integer lifecycle codes used by the state array; values mirror
# ``ContainerState`` (created/running/paused/stopped).
STATE_CREATED = 0
STATE_RUNNING = 1
STATE_PAUSED = 2
STATE_STOPPED = 3

_STATE_NAMES = ("created", "running", "paused", "stopped")


# ---------------------------------------------------------------------------
# Scenario description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HostSpec:
    """One host of a :class:`BatchScenario`.

    ``capacity`` is a :class:`ResourceVector` (None = the paper's
    testbed via :func:`default_host_capacity`); ``model`` picks the
    contention kind (``"proportional"`` or ``"waterfill"``) with its
    swap parameters.
    """

    name: str
    capacity: Optional[ResourceVector] = None
    model: str = "proportional"
    swap_cost: float = 3.0
    swap_io_per_overcommit_mb: float = 0.05

    def __post_init__(self) -> None:
        if self.model not in MODEL_KINDS:
            raise ValueError(
                f"host {self.name!r}: model must be one of {MODEL_KINDS}, "
                f"got {self.model!r}"
            )

    def capacity_array(self) -> np.ndarray:
        """This host's capacity as a dense ``(R,)`` array."""
        capacity = self.capacity or default_host_capacity()
        return capacity.as_array()


@dataclass(frozen=True)
class ContainerSpec:
    """One container of a :class:`BatchScenario`.

    ``trace`` is the ``(P, R)`` non-negative demand cycle the container
    replays, indexed by wall-clock phase ``tick % P`` (canonical column
    order). ``total_work`` is the accumulated progress at which the
    container finishes (None = runs forever); ``start_tick`` delays its
    first running tick.
    """

    name: str
    host: str
    trace: np.ndarray
    weight: float = 1.0
    total_work: Optional[float] = None
    start_tick: int = 0
    sensitive: bool = False

    def __post_init__(self) -> None:
        trace = np.asarray(self.trace, dtype=np.float64)
        if trace.ndim != 2 or trace.shape[0] < 1 or trace.shape[1] != NUM_RESOURCES:
            raise ValueError(
                f"container {self.name!r}: trace must be (P>=1, {NUM_RESOURCES}), "
                f"got {trace.shape}"
            )
        if np.any(trace < 0):
            raise ValueError(f"container {self.name!r}: trace demands must be >= 0")
        object.__setattr__(self, "trace", trace)
        if self.weight <= 0:
            raise ValueError(f"container {self.name!r}: weight must be positive")
        if self.total_work is not None and self.total_work <= 0:
            raise ValueError(f"container {self.name!r}: total_work must be positive")
        if self.start_tick < 0:
            raise ValueError(f"container {self.name!r}: start_tick must be >= 0")


@dataclass(frozen=True)
class BatchEvent:
    """One scheduled control action, applied just before its tick steps.

    ``action`` is from :data:`EVENT_ACTIONS`; ``target`` names a
    container (pause/resume/stop/migrate) or a host
    (fail_host/recover_host); ``destination`` names the migration
    target host.
    """

    tick: int
    action: str
    target: str
    destination: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in EVENT_ACTIONS:
            raise ValueError(
                f"action must be one of {EVENT_ACTIONS}, got {self.action!r}"
            )
        if (self.action == "migrate") != (self.destination is not None):
            raise ValueError("destination is required for (exactly) migrate events")
        if self.tick < 0:
            raise ValueError("event tick must be >= 0")


@dataclass(frozen=True)
class BatchScenario:
    """A self-contained fleet description every engine can run.

    Hosts, containers (host-major insertion order = the order given
    here) and an optional deterministic event schedule. The same
    scenario object drives :class:`BatchEngine`,
    :func:`build_scalar_cluster` and :class:`ShardedBatchEngine`.
    """

    hosts: Tuple[HostSpec, ...]
    containers: Tuple[ContainerSpec, ...]
    events: Tuple[BatchEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "hosts", tuple(self.hosts))
        object.__setattr__(self, "containers", tuple(self.containers))
        object.__setattr__(self, "events", tuple(self.events))
        if not self.hosts:
            raise ValueError("a scenario needs at least one host")
        host_names = [h.name for h in self.hosts]
        if len(set(host_names)) != len(host_names):
            raise ValueError("duplicate host names in scenario")
        container_names = [c.name for c in self.containers]
        if len(set(container_names)) != len(container_names):
            raise ValueError("duplicate container names in scenario")
        known = set(host_names)
        for spec in self.containers:
            if spec.host not in known:
                raise ValueError(
                    f"container {spec.name!r} references unknown host {spec.host!r}"
                )
        containers = set(container_names)
        for event in self.events:
            if event.action in ("fail_host", "recover_host"):
                if event.target not in known:
                    raise ValueError(
                        f"event targets unknown host {event.target!r}"
                    )
            else:
                if event.target not in containers:
                    raise ValueError(
                        f"event targets unknown container {event.target!r}"
                    )
                if event.destination is not None and event.destination not in known:
                    raise ValueError(
                        f"event destination {event.destination!r} is unknown"
                    )


@dataclass(frozen=True)
class ScenarioResult:
    """What one engine run produced, in scenario container order.

    ``trajectory`` is the ``(T, C)`` per-tick progress factor matrix
    (0.0 for ticks a container was idle, paused, migrating or on a
    down host) — the array the equivalence contract compares
    bit-for-bit across engines.
    """

    ticks: int
    container_names: Tuple[str, ...]
    work_done: np.ndarray
    running_ticks: np.ndarray
    paused_ticks: np.ndarray
    pause_count: np.ndarray
    states: Tuple[str, ...]
    trajectory: Optional[np.ndarray] = None


# ---------------------------------------------------------------------------
# The batched engine
# ---------------------------------------------------------------------------


@dataclass
class _Flight:
    """One in-flight batched migration (row index + endpoints + ETA)."""

    row: int
    source: int
    destination: int
    due_tick: int


class BatchEngine:
    """Steps a whole :class:`BatchScenario` as dense arrays.

    All per-container state lives in ``(C,)``/``(C, R)`` arrays and all
    per-host state in ``(H,)``/``(H, R)`` arrays; one :meth:`step` is a
    constant number of NumPy passes regardless of fleet size. Control
    actions (:meth:`pause`, :meth:`migrate`, :meth:`fail_host`, …)
    mirror the object engine's semantics exactly, including its
    validation errors.

    Parameters
    ----------
    scenario:
        The fleet to simulate.
    record_trajectory:
        When True, every tick appends the ``(C,)`` progress row used
        by the equivalence contract (costs one array copy per tick).
    """

    def __init__(self, scenario: BatchScenario, record_trajectory: bool = False) -> None:
        self.scenario = scenario
        self.record_trajectory = record_trajectory
        self.tick = 0

        hosts = scenario.hosts
        containers = scenario.containers
        self._host_pos: Dict[str, int] = {h.name: i for i, h in enumerate(hosts)}
        self._row_of: Dict[str, int] = {c.name: i for i, c in enumerate(containers)}
        n_hosts = len(hosts)
        rows = len(containers)

        # -- host arrays (H,) / (H, R) --------------------------------
        self.capacity = np.stack([h.capacity_array() for h in hosts]) if hosts else np.zeros((0, NUM_RESOURCES))
        self.swap_cost = np.array([h.swap_cost for h in hosts])
        self.swap_io_rate = np.array([h.swap_io_per_overcommit_mb for h in hosts])
        self.host_up = np.ones(n_hosts, dtype=bool)
        #: True where the host water-fills (False = proportional share).
        self.host_weighted = np.array([h.model == "waterfill" for h in hosts])

        # -- container arrays (C,) ------------------------------------
        self.host_index = np.array(
            [self._host_pos[c.host] for c in containers], dtype=np.intp
        )
        self.weight = np.array([c.weight for c in containers])
        self.start_tick = np.array([c.start_tick for c in containers], dtype=np.int64)
        self.total_work = np.array(
            [np.inf if c.total_work is None else c.total_work for c in containers]
        )
        self.state = np.full(rows, STATE_CREATED, dtype=np.int8)
        self.work_done = np.zeros(rows)
        self.running_ticks = np.zeros(rows, dtype=np.int64)
        self.paused_ticks = np.zeros(rows, dtype=np.int64)
        self.pause_count = np.zeros(rows, dtype=np.int64)
        self.in_flight = np.zeros(rows, dtype=bool)
        self.last_granted_memory = np.zeros(rows)
        # Host-major insertion sequence; migrations re-append a row at
        # the back of its new host, exactly like ``dict`` insertion in
        # the object engine — the fold order bit-parity depends on it.
        self.order = np.arange(rows, dtype=np.int64)
        self._next_order = rows

        # -- trace cube (C, Pmax, R) + periods (C,) -------------------
        period_max = max((c.trace.shape[0] for c in containers), default=1)
        self.period = np.array(
            [c.trace.shape[0] for c in containers], dtype=np.int64
        )
        self.traces = np.zeros((rows, period_max, NUM_RESOURCES))
        for i, spec in enumerate(containers):
            p = spec.trace.shape[0]
            self.traces[i, :p] = spec.trace

        self._flights: List[_Flight] = []
        self._trajectory: List[np.ndarray] = []
        self.stats: Dict[str, int] = {
            "ticks": 0,
            "rows_resolved": 0,
            "migrations": 0,
            "bounced": 0,
            "lost": 0,
        }
        self._events_by_tick: Dict[int, List[BatchEvent]] = {}
        for event in scenario.events:
            self._events_by_tick.setdefault(event.tick, []).append(event)

    # -- control surface (mask updates) --------------------------------
    def _row(self, name: str) -> int:
        try:
            return self._row_of[name]
        except KeyError:
            raise KeyError(f"unknown container {name!r}") from None

    def _host(self, name: str) -> int:
        try:
            return self._host_pos[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def pause(self, name: str) -> None:
        """SIGSTOP analogue; no-op unless the container is RUNNING."""
        row = self._row(name)
        if self.in_flight[row]:
            raise KeyError(f"container {name!r} is migrating; not on any host")
        if self.state[row] == STATE_STOPPED:
            raise ContainerError(f"container {name!r} is stopped; cannot pause")
        if self.state[row] == STATE_RUNNING:
            self.state[row] = STATE_PAUSED
            self.pause_count[row] += 1

    def resume(self, name: str) -> None:
        """SIGCONT analogue; no-op unless the container is PAUSED."""
        row = self._row(name)
        if self.in_flight[row]:
            raise KeyError(f"container {name!r} is migrating; not on any host")
        if self.state[row] == STATE_STOPPED:
            raise ContainerError(f"container {name!r} is stopped; cannot resume")
        if self.state[row] == STATE_PAUSED:
            self.state[row] = STATE_RUNNING

    def stop(self, name: str) -> None:
        """Terminate a container; it never demands resources again."""
        row = self._row(name)
        if self.in_flight[row]:
            raise KeyError(f"container {name!r} is migrating; not on any host")
        self.state[row] = STATE_STOPPED

    def fail_host(self, name: str) -> bool:
        """Crash a host: its rows freeze until :meth:`recover_host`."""
        pos = self._host(name)
        if not self.host_up[pos]:
            return False
        self.host_up[pos] = False
        return True

    def recover_host(self, name: str) -> bool:
        """Bring a crashed host back; its rows thaw next tick."""
        pos = self._host(name)
        if self.host_up[pos]:
            return False
        self.host_up[pos] = True
        return True

    def migrate(self, name: str, destination: str) -> int:
        """Start a live migration; returns the downtime in ticks.

        Same cost model and validation as
        :meth:`repro.sim.cluster.Cluster.migrate`: the row leaves its
        source immediately and is unavailable for
        ``max(1, ceil(resident_mb / migration_mb_per_tick))`` ticks
        (resident set = memory last granted), then lands at the back
        of the destination's insertion order — or bounces / is lost if
        hosts died meanwhile.
        """
        row = self._row(name)
        if self.in_flight[row]:
            raise ValueError(f"container {name!r} is already migrating")
        source = int(self.host_index[row])
        if not self.host_up[source]:
            raise ValueError(f"source host {self.scenario.hosts[source].name!r} is down")
        dest = self._host(destination)
        if not self.host_up[dest]:
            raise ValueError(f"destination host {destination!r} is down")
        if dest == source:
            raise ValueError("destination equals source host")
        resident_mb = float(self.last_granted_memory[row])
        downtime = max(1, int(-(-resident_mb // self.migration_mb_per_tick)))
        self.in_flight[row] = True
        self._flights.append(
            _Flight(row=row, source=source, destination=dest, due_tick=self.tick + downtime)
        )
        self.stats["migrations"] += 1
        return downtime

    #: Memory copy rate for migrations (same default as Cluster).
    migration_mb_per_tick: float = 1000.0

    def _land_migrations(self) -> None:
        remaining: List[_Flight] = []
        for flight in self._flights:
            if self.tick < flight.due_tick:
                remaining.append(flight)
                continue
            self.in_flight[flight.row] = False
            if self.host_up[flight.destination]:
                self.host_index[flight.row] = flight.destination
            elif self.host_up[flight.source]:
                self.host_index[flight.row] = flight.source
                self.stats["bounced"] += 1
            else:
                self.state[flight.row] = STATE_STOPPED
                self.stats["lost"] += 1
            # Either landing appends the row to its host's order.
            self.order[flight.row] = self._next_order
            self._next_order += 1
        self._flights = remaining

    # -- stepping -------------------------------------------------------
    def step(self) -> np.ndarray:
        """One batched tick; returns the ``(C,)`` progress row.

        The phases mirror ``Cluster.step`` exactly: land due
        migrations, autostart, gather demand (one trace-cube index),
        resolve contention per model kind (segmented over hosts),
        deliver, account paused ticks, advance the clock.
        """
        self._land_migrations()
        tick = self.tick

        placed = ~self.in_flight
        up_rows = self.host_up[self.host_index] & placed

        auto = (self.state == STATE_CREATED) & (self.start_tick <= tick) & up_rows
        self.state[auto] = STATE_RUNNING

        phase = tick % self.period
        demand = self.traces[np.arange(self.traces.shape[0]), phase]
        unfinished = self.work_done < self.total_work
        running = (self.state == STATE_RUNNING) & up_rows & unfinished
        nonzero = np.abs(demand).max(axis=1, initial=0.0) > 1e-12
        active = running & nonzero

        progress = np.zeros(demand.shape[0])
        sel = np.nonzero(active)[0]
        # Fold rows host-major in insertion order (migrated rows last),
        # matching the object engine's dict iteration for bit parity.
        sel = sel[np.argsort(self.order[sel], kind="stable")]
        if sel.size:
            weighted_rows = self.host_weighted[self.host_index[sel]]
            for use_waterfill in (False, True):
                rows = sel[weighted_rows == use_waterfill]
                if not rows.size:
                    continue
                if use_waterfill:
                    resolution = resolve_waterfill_arrays(
                        demand[rows],
                        self.host_index[rows],
                        self.weight[rows],
                        self.capacity,
                        self.swap_cost,
                        self.swap_io_rate,
                    )
                else:
                    resolution = resolve_proportional_arrays(
                        demand[rows],
                        self.host_index[rows],
                        self.capacity,
                        self.swap_cost,
                        self.swap_io_rate,
                    )
                progress[rows] = resolution.progress
                self.last_granted_memory[rows] = resolution.granted[:, MEMORY_INDEX]
                self.stats["rows_resolved"] += int(rows.size)

        # Delivery: active rows run and accumulate progress as work.
        self.running_ticks[active] += 1
        self.work_done[active] += progress[active]
        finished = active & (self.work_done >= self.total_work)
        self.state[finished] = STATE_STOPPED

        # Paused accounting only happens on up hosts (down hosts are
        # skipped entirely, like the object cluster).
        self.paused_ticks[(self.state == STATE_PAUSED) & up_rows] += 1

        if self.record_trajectory:
            self._trajectory.append(progress.copy())
        self.stats["ticks"] += 1
        self.tick += 1
        return progress

    def apply_events(self, tick: int) -> None:
        """Apply the scenario's scheduled events for one tick."""
        for event in self._events_by_tick.get(tick, ()):
            if event.action == "pause":
                self.pause(event.target)
            elif event.action == "resume":
                self.resume(event.target)
            elif event.action == "stop":
                self.stop(event.target)
            elif event.action == "migrate":
                self.migrate(event.target, event.destination)
            elif event.action == "fail_host":
                self.fail_host(event.target)
            elif event.action == "recover_host":
                self.recover_host(event.target)

    def run(self, ticks: int) -> ScenarioResult:
        """Run ``ticks`` steps, applying scheduled events, and report."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        for _ in range(ticks):
            self.apply_events(self.tick)
            self.step()
        return self.result()

    def result(self) -> ScenarioResult:
        """Snapshot the run as a :class:`ScenarioResult`."""
        trajectory = (
            np.array(self._trajectory)
            if self.record_trajectory and self._trajectory
            else (np.zeros((0, len(self.scenario.containers))) if self.record_trajectory else None)
        )
        return ScenarioResult(
            ticks=self.tick,
            container_names=tuple(c.name for c in self.scenario.containers),
            work_done=self.work_done.copy(),
            running_ticks=self.running_ticks.copy(),
            paused_ticks=self.paused_ticks.copy(),
            pause_count=self.pause_count.copy(),
            states=tuple(_STATE_NAMES[s] for s in self.state),
            trajectory=trajectory,
        )


# ---------------------------------------------------------------------------
# Scalar twin: the same scenario on the object engine
# ---------------------------------------------------------------------------


class TraceApp:
    """Deterministic trace-replay application (the batch engine's twin).

    Replays a fixed ``(P, R)`` demand cycle indexed by wall-clock
    phase ``tick % P`` — no jitter, no RNG — and finishes once
    accumulated progress reaches ``total_work``. Implements the
    :class:`~repro.sim.container.ApplicationLike` protocol so it runs
    in ordinary :class:`~repro.sim.container.Container` objects.
    """

    def __init__(
        self, name: str, trace: np.ndarray, total_work: Optional[float] = None
    ) -> None:
        self.name = name
        self.trace = np.asarray(trace, dtype=np.float64)
        self.total_work = total_work
        self.work_done = 0.0
        self.elapsed_ticks = 0
        self._finished = False

    def demand(self, clock: SimulationClock) -> ResourceVector:
        """Demand for this tick: the trace row at phase ``tick % P``."""
        if self._finished:
            return ResourceVector.zero()
        return ResourceVector.from_array(
            self.trace[clock.tick % self.trace.shape[0]]
        )

    def advance(self, allocation, clock: SimulationClock) -> None:
        """Accumulate granted progress as work; finish at total_work."""
        self.elapsed_ticks += 1
        self.work_done += allocation.progress
        if self.total_work is not None and self.work_done >= self.total_work:
            self._finished = True

    @property
    def finished(self) -> bool:
        return self._finished


def build_scalar_cluster(scenario: BatchScenario, engine: str = "scalar") -> Cluster:
    """Materialize a scenario as an object-engine :class:`Cluster`.

    Every host gets its spec'd capacity and contention model, every
    container a :class:`TraceApp`. Pass ``engine="vector"`` for the
    hybrid batched-cluster path — same objects, batched resolve.
    """
    hosts: Dict[str, Host] = {}
    for spec in scenario.hosts:
        if spec.model == "waterfill":
            model = WeightedWaterFillModel(
                swap_cost=spec.swap_cost,
                swap_io_per_overcommit_mb=spec.swap_io_per_overcommit_mb,
            )
        else:
            model = ProportionalShareModel(
                swap_cost=spec.swap_cost,
                swap_io_per_overcommit_mb=spec.swap_io_per_overcommit_mb,
            )
        hosts[spec.name] = Host(
            capacity=spec.capacity or default_host_capacity(),
            contention=model,
        )
    cluster = Cluster(hosts=hosts, engine=engine)
    for spec in scenario.containers:
        cluster.hosts[spec.host].add_container(
            Container(
                name=spec.name,
                app=TraceApp(spec.name, spec.trace, spec.total_work),
                sensitive=spec.sensitive,
                weight=spec.weight,
                start_tick=spec.start_tick,
            )
        )
    return cluster


def _apply_cluster_events(cluster: Cluster, events: Sequence[BatchEvent]) -> None:
    for event in events:
        if event.action == "pause":
            host = cluster.host_of(event.target)
            cluster.hosts[host].pause_container(event.target)
        elif event.action == "resume":
            host = cluster.host_of(event.target)
            cluster.hosts[host].resume_container(event.target)
        elif event.action == "stop":
            host = cluster.host_of(event.target)
            cluster.hosts[host].containers[event.target].stop()
        elif event.action == "migrate":
            cluster.migrate(event.target, event.destination)
        elif event.action == "fail_host":
            cluster.fail_host(event.target)
        elif event.action == "recover_host":
            cluster.recover_host(event.target)


def run_scenario(
    scenario: BatchScenario,
    ticks: int,
    engine: str = "batch",
    record_trajectory: bool = True,
) -> ScenarioResult:
    """Run one scenario on one engine and return its result.

    ``engine`` is ``"batch"`` (:class:`BatchEngine`), ``"scalar"``
    (object cluster, per-host model calls) or ``"vector"`` (object
    cluster, batched cluster resolve). All three produce bit-identical
    :class:`ScenarioResult` contents on the same platform — the
    equivalence gate :mod:`benchmarks.bench_engine` asserts.
    """
    if engine == "batch":
        batch = BatchEngine(scenario, record_trajectory=record_trajectory)
        return batch.run(ticks)
    if engine not in ("scalar", "vector"):
        raise ValueError(f"unknown engine {engine!r}")

    cluster = build_scalar_cluster(scenario, engine=engine)
    events_by_tick: Dict[int, List[BatchEvent]] = {}
    for event in scenario.events:
        events_by_tick.setdefault(event.tick, []).append(event)

    names = [c.name for c in scenario.containers]
    containers = {
        name: cluster.hosts[spec.host].containers[name]
        for name, spec in zip(names, scenario.containers)
    }
    trajectory: List[List[float]] = []
    for _ in range(ticks):
        _apply_cluster_events(cluster, events_by_tick.get(cluster.clock.tick, ()))
        snapshots = cluster.step()
        if record_trajectory:
            row = []
            for name in names:
                progress = 0.0
                for snapshot in snapshots.values():
                    allocation = snapshot.allocations.get(name)
                    if allocation is not None:
                        progress = allocation.progress
                        break
                row.append(progress)
            trajectory.append(row)

    # A migrated-but-never-landed container still exists; find every
    # container object wherever it ended up (flights keep a reference).
    def final(name: str) -> Container:
        return containers[name]

    states = tuple(final(name).state.value for name in names)
    return ScenarioResult(
        ticks=ticks,
        container_names=tuple(names),
        work_done=np.array([final(n).app.work_done for n in names]),
        running_ticks=np.array([final(n).running_ticks for n in names]),
        paused_ticks=np.array([final(n).paused_ticks for n in names]),
        pause_count=np.array([final(n).pause_count for n in names]),
        states=states,
        trajectory=np.array(trajectory) if record_trajectory else None,
    )


# ---------------------------------------------------------------------------
# Standard scenario suite
# ---------------------------------------------------------------------------


def standard_scenario(
    hosts: int = 8,
    containers_per_host: int = 12,
    seed: int = 7,
    model: str = "proportional",
    with_events: bool = True,
    period: int = 48,
) -> BatchScenario:
    """The benchmark's standard fleet: mixed archetypes under churn.

    Each host carries ``containers_per_host`` containers cycling
    through four archetypes (diurnal webservice, CPU bomb, memory
    hog, I/O batch) with seeded random magnitudes/periods sized so
    hosts saturate CPU and occasionally overcommit memory. With
    ``with_events`` a deterministic pause/resume, migration and
    host-crash schedule exercises the mask paths.
    """
    if model not in MODEL_KINDS:
        raise ValueError(f"model must be one of {MODEL_KINDS}, got {model!r}")
    rng = np.random.default_rng(seed)
    host_specs = tuple(
        HostSpec(name=f"host-{h}", model=model) for h in range(hosts)
    )
    containers: List[ContainerSpec] = []
    for h in range(hosts):
        for i in range(containers_per_host):
            archetype = i % 4
            p = int(rng.integers(max(2, period // 2), period + 1))
            trace = np.zeros((p, NUM_RESOURCES))
            phase = np.arange(p)
            if archetype == 0:  # diurnal webservice
                curve = 0.6 + 0.5 * np.sin(2 * np.pi * phase / p + rng.uniform(0, 2 * np.pi))
                trace[:, 0] = np.maximum(0.05, curve * rng.uniform(0.5, 1.2))
                trace[:, 1] = rng.uniform(250.0, 600.0)
                trace[:, 4] = np.maximum(1.0, curve * rng.uniform(40.0, 120.0))
            elif archetype == 1:  # CPU bomb
                trace[:, 0] = rng.uniform(1.0, 2.5)
                trace[:, 2] = rng.uniform(500.0, 2000.0)
            elif archetype == 2:  # memory hog (ramps into overcommit)
                ramp = np.linspace(0.3, 1.0, p)
                trace[:, 0] = rng.uniform(0.2, 0.6)
                trace[:, 1] = ramp * rng.uniform(700.0, 1400.0)
                trace[:, 2] = rng.uniform(800.0, 3000.0)
            else:  # I/O batch
                trace[:, 0] = rng.uniform(0.2, 0.8)
                trace[:, 3] = rng.uniform(20.0, 80.0)
                trace[:, 1] = rng.uniform(100.0, 300.0)
            total_work = float(rng.uniform(120.0, 400.0)) if archetype != 0 else None
            containers.append(
                ContainerSpec(
                    name=f"c-{h}-{i}",
                    host=f"host-{h}",
                    trace=trace,
                    weight=float(rng.choice([1.0, 2.0, 4.0])),
                    total_work=total_work,
                    start_tick=int(rng.integers(0, 6)),
                    sensitive=(archetype == 0),
                )
            )

    events: List[BatchEvent] = []
    if with_events:
        # Deterministic churn: pause/resume a bomb on every even host,
        # migrate one container per fourth host, crash/recover host 1.
        for h in range(0, hosts, 2):
            events.append(BatchEvent(tick=20 + h, action="pause", target=f"c-{h}-1"))
            events.append(BatchEvent(tick=35 + h, action="resume", target=f"c-{h}-1"))
        for h in range(0, hosts, 4):
            dest = f"host-{(h + 1) % hosts}"
            events.append(
                BatchEvent(
                    tick=30 + h, action="migrate", target=f"c-{h}-2", destination=dest
                )
            )
        if hosts > 2:
            events.append(BatchEvent(tick=44, action="fail_host", target="host-1"))
            events.append(BatchEvent(tick=60, action="recover_host", target="host-1"))
    return BatchScenario(
        hosts=host_specs, containers=tuple(containers), events=tuple(events)
    )


# ---------------------------------------------------------------------------
# Sharded (multiprocessing) mode
# ---------------------------------------------------------------------------


def _partition_scenario(scenario: BatchScenario, shards: int) -> List[BatchScenario]:
    """Split a scenario into per-shard sub-scenarios (hosts round-robin).

    Containers and host events follow their host; a migrate event whose
    endpoints land in different shards raises ``ValueError`` — shards
    run independently and cannot exchange containers.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shard_of_host = {
        spec.name: i % shards for i, spec in enumerate(scenario.hosts)
    }
    shard_of_container = {
        spec.name: shard_of_host[spec.host] for spec in scenario.containers
    }
    hosts: List[List[HostSpec]] = [[] for _ in range(shards)]
    containers: List[List[ContainerSpec]] = [[] for _ in range(shards)]
    events: List[List[BatchEvent]] = [[] for _ in range(shards)]
    for i, spec in enumerate(scenario.hosts):
        hosts[i % shards].append(spec)
    for spec in scenario.containers:
        containers[shard_of_container[spec.name]].append(spec)
    for event in scenario.events:
        if event.action in ("fail_host", "recover_host"):
            shard = shard_of_host[event.target]
        else:
            shard = shard_of_container[event.target]
            if event.action == "migrate":
                dest_shard = shard_of_host[event.destination]
                if dest_shard != shard:
                    raise ValueError(
                        f"migrate {event.target!r} -> {event.destination!r} "
                        f"crosses shards {shard} -> {dest_shard}; "
                        "cross-shard migration is not supported"
                    )
        events[shard].append(event)
    return [
        BatchScenario(
            hosts=tuple(hosts[i]),
            containers=tuple(containers[i]),
            events=tuple(events[i]),
        )
        for i in range(shards)
        if hosts[i]
    ]


def _run_shard(payload: Tuple[BatchScenario, int, bool]) -> ScenarioResult:
    """Module-level worker entry point (must be picklable)."""
    scenario, ticks, record = payload
    return BatchEngine(scenario, record_trajectory=record).run(ticks)


class ShardedBatchEngine:
    """Runs shard-per-core :class:`BatchEngine` instances in parallel.

    Hosts (with their containers and events) are partitioned
    round-robin over ``shards`` OS processes; each shard steps its
    sub-fleet independently — valid because hosts only interact through
    migrations, which are confined to a shard
    (:func:`_partition_scenario` rejects cross-shard migrate events).
    Results merge back into scenario container order, bit-identical to
    a single :class:`BatchEngine` run of the same scenario.
    """

    def __init__(self, scenario: BatchScenario, shards: int = 2) -> None:
        self.scenario = scenario
        self.shards = _partition_scenario(scenario, shards)

    def run(self, ticks: int, record_trajectory: bool = True) -> ScenarioResult:
        """Run all shards for ``ticks`` and merge their results."""
        import multiprocessing

        payloads = [(shard, ticks, record_trajectory) for shard in self.shards]
        if len(payloads) == 1:
            results = [_run_shard(payloads[0])]
        else:
            ctx = multiprocessing.get_context()
            with ctx.Pool(processes=len(payloads)) as pool:
                results = pool.map(_run_shard, payloads)
        return _merge_results(self.scenario, self.shards, results, record_trajectory)


def _merge_results(
    scenario: BatchScenario,
    shards: Sequence[BatchScenario],
    results: Sequence[ScenarioResult],
    record_trajectory: bool,
) -> ScenarioResult:
    names = tuple(c.name for c in scenario.containers)
    index = {name: i for i, name in enumerate(names)}
    rows = len(names)
    ticks = results[0].ticks if results else 0
    work_done = np.zeros(rows)
    running = np.zeros(rows, dtype=np.int64)
    paused = np.zeros(rows, dtype=np.int64)
    count = np.zeros(rows, dtype=np.int64)
    states: List[str] = ["created"] * rows
    trajectory = np.zeros((ticks, rows)) if record_trajectory else None
    for result in results:
        for j, name in enumerate(result.container_names):
            i = index[name]
            work_done[i] = result.work_done[j]
            running[i] = result.running_ticks[j]
            paused[i] = result.paused_ticks[j]
            count[i] = result.pause_count[j]
            states[i] = result.states[j]
            if record_trajectory and result.trajectory is not None:
                trajectory[:, i] = result.trajectory[:, j]
    return ScenarioResult(
        ticks=ticks,
        container_names=names,
        work_done=work_done,
        running_ticks=running,
        paused_ticks=paused,
        pause_count=count,
        states=tuple(states),
        trajectory=trajectory,
    )
