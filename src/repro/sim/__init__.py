"""Discrete-time host/container simulator.

This package is the substrate standing in for the paper's physical
testbed (a 4-core Intel i5 host running Ubuntu with LXC containers).
It models a single physical host with a fixed set of resources (CPU,
memory, memory bandwidth, disk I/O, network), LXC-like containers that
can be paused/resumed with SIGSTOP/SIGCONT semantics, and a
proportional-share contention model that slows applications down when
aggregate demand exceeds capacity.

The simulator is deliberately observable in exactly the way Stay-Away
observes a real host: per-container resource-usage snapshots each tick,
plus whatever QoS signal the applications themselves report.
"""

from repro.sim.batch import (
    BatchEngine,
    BatchEvent,
    BatchScenario,
    ContainerSpec,
    HostSpec,
    ScenarioResult,
    ShardedBatchEngine,
    TraceApp,
    build_scalar_cluster,
    run_scenario,
    standard_scenario,
)
from repro.sim.clock import SimulationClock
from repro.sim.cluster import (
    ENGINE_MODES,
    Cluster,
    ContainerLocation,
    HostEvent,
    MigrationRecord,
)
from repro.sim.container import Container, ContainerState
from repro.sim.scheduler import (
    ConstrainedScheduler,
    Placement,
    PlacementRequest,
    SchedulingError,
)
from repro.sim.contention import (
    Allocation,
    BatchResolution,
    ContentionModel,
    ProportionalShareModel,
    WeightedWaterFillModel,
    resolve_proportional_arrays,
    resolve_waterfill_arrays,
    segmented_water_fill,
    swap_pressure,
    weighted_water_fill,
)
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.sim.faults import (
    ActuatorFaultInjector,
    ContainerFlapper,
    DemandSpiker,
    FaultSchedule,
    HostCrashInjector,
    HostRecoveryScript,
    InvariantBreach,
    InvariantChecker,
    MonitoringDropout,
    QosDropout,
    SensorCorruptor,
    TelemetryBlackout,
)
from repro.sim.host import Host, HostSnapshot
from repro.sim.resources import (
    RATE_RESOURCES,
    Resource,
    ResourceVector,
    default_host_capacity,
)

__all__ = [
    "ActuatorFaultInjector",
    "Allocation",
    "BatchEngine",
    "BatchEvent",
    "BatchResolution",
    "BatchScenario",
    "Cluster",
    "ContainerSpec",
    "ENGINE_MODES",
    "HostSpec",
    "ScenarioResult",
    "ShardedBatchEngine",
    "TraceApp",
    "build_scalar_cluster",
    "resolve_proportional_arrays",
    "resolve_waterfill_arrays",
    "run_scenario",
    "segmented_water_fill",
    "standard_scenario",
    "swap_pressure",
    "ConstrainedScheduler",
    "Container",
    "ContainerFlapper",
    "ContainerLocation",
    "DemandSpiker",
    "FaultSchedule",
    "HostCrashInjector",
    "HostEvent",
    "HostRecoveryScript",
    "InvariantBreach",
    "InvariantChecker",
    "MigrationRecord",
    "TelemetryBlackout",
    "MonitoringDropout",
    "Placement",
    "PlacementRequest",
    "QosDropout",
    "SchedulingError",
    "SensorCorruptor",
    "ContainerState",
    "ContentionModel",
    "Host",
    "HostSnapshot",
    "ProportionalShareModel",
    "RATE_RESOURCES",
    "Resource",
    "ResourceVector",
    "SimulationClock",
    "SimulationEngine",
    "SimulationResult",
    "WeightedWaterFillModel",
    "default_host_capacity",
    "weighted_water_fill",
]
