"""Simulation clock.

The simulator is discrete-time: every tick corresponds to a fixed wall
clock interval (1 second by default, matching the paper's monitoring
period granularity). All components that need time read it from a
shared :class:`SimulationClock` so there is a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulationClock:
    """A monotonically advancing discrete clock.

    Parameters
    ----------
    tick_seconds:
        Wall-clock duration that one tick represents. Used by
        workloads whose demand is expressed per second.
    """

    tick_seconds: float = 1.0
    _tick: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0:
            raise ValueError(f"tick_seconds must be positive, got {self.tick_seconds}")

    @property
    def tick(self) -> int:
        """Number of completed ticks since the start of the simulation."""
        return self._tick

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._tick * self.tick_seconds

    def advance(self, ticks: int = 1) -> int:
        """Advance the clock by ``ticks`` ticks and return the new tick."""
        if ticks < 0:
            raise ValueError(f"cannot advance clock by a negative amount: {ticks}")
        self._tick += ticks
        return self._tick

    def reset(self) -> None:
        """Rewind the clock to tick zero (used when reusing an engine)."""
        self._tick = 0
