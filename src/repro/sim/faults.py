"""Fault injection: scripted and probabilistic disturbances.

The controller must stay well-behaved when the environment misbehaves —
containers dying mid-throttle, demand spikes, monitoring dropouts. This
module turns those disturbances into declarative, reproducible
middleware instead of ad-hoc test code.

Two layers:

* **Scripted faults** (:class:`FaultSchedule`, :class:`DemandSpiker`,
  :class:`MonitoringDropout`) fire at fixed ticks — precise, replayable
  unit-test material.
* **Chaos faults** (:class:`SensorCorruptor`, :class:`QosDropout`,
  :class:`ContainerFlapper`, :class:`ActuatorFaultInjector`) fire
  probabilistically from a seeded RNG — the hostile-host mix the
  resilience layer (sensor guard, degraded modes, reconciliation) is
  built to survive. :class:`InvariantChecker` rides along and records
  per-tick consistency breaches instead of crashing the run.
* **Cluster faults** (:class:`HostCrashInjector`,
  :class:`HostRecoveryScript`, :class:`TelemetryBlackout`) operate on a
  whole :class:`~repro.sim.cluster.Cluster`: machines crash and come
  back, and the control plane's view of individual hosts goes dark —
  the failure modes a fleet coordinator must stay correct under. All
  probabilistic decisions are pure functions of ``(seed, tick, host)``
  so the fault script is identical across policy arms regardless of how
  control flow diverges after the first fault.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.host import Host, HostSnapshot
from repro.sim.resources import Resource, ResourceVector

if TYPE_CHECKING:
    from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class FaultEvent:
    """A fault that fired during the run."""

    tick: int
    kind: str
    target: str


class FaultSchedule:
    """A middleware executing scripted faults at fixed ticks.

    Supported actions: ``kill`` (stop a container), ``pause`` /
    ``resume`` (external signals racing the controller's own), and
    ``restart`` (revive a stopped/paused container — a crash-looping
    supervisor; pause-count bookkeeping is left untouched).
    """

    def __init__(self) -> None:
        self._scripted: List = []
        self.fired: List[FaultEvent] = []

    def kill(self, tick: int, container: str) -> "FaultSchedule":
        """Stop a container at a tick (process crash / OOM kill)."""
        self._scripted.append((tick, "kill", container))
        return self

    def pause(self, tick: int, container: str) -> "FaultSchedule":
        """Externally SIGSTOP a container (an operator or another agent)."""
        self._scripted.append((tick, "pause", container))
        return self

    def resume(self, tick: int, container: str) -> "FaultSchedule":
        """Externally SIGCONT a container."""
        self._scripted.append((tick, "resume", container))
        return self

    def restart(self, tick: int, container: str) -> "FaultSchedule":
        """Supervisor-restart a stopped/paused container at a tick."""
        self._scripted.append((tick, "restart", container))
        return self

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """Fire any faults scheduled for this tick."""
        for tick, kind, target in self._scripted:
            if tick != snapshot.tick or target not in host.containers:
                continue
            container = host.container(target)
            if kind == "kill":
                container.stop()
            elif kind == "pause" and container.is_running:
                container.pause()
            elif kind == "resume" and container.is_paused:
                container.resume()
            elif kind == "restart" and not container.is_running:
                container.restart()
            else:
                continue
            self.fired.append(FaultEvent(tick=tick, kind=kind, target=target))


class DemandSpiker:
    """Inject transient demand spikes into an application.

    Wraps the app's ``demand`` so that during scripted windows the
    demand is multiplied — a flash crowd, a garbage-collection storm, a
    runaway query. Spikes are the 'instantaneous transitions' stressor
    for the predictor (§3.2.3).
    """

    def __init__(
        self,
        app,
        windows: List,
        factor: float = 2.0,
    ) -> None:
        """``windows`` is a list of ``(start_tick, end_tick)`` pairs."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        for start, end in windows:
            if end <= start:
                raise ValueError(f"empty spike window ({start}, {end})")
        ordered = sorted(windows)
        for (s1, e1), (s2, e2) in zip(ordered, ordered[1:]):
            if s2 < e1:
                raise ValueError(
                    f"overlapping spike windows ({s1}, {e1}) and ({s2}, {e2}); "
                    "merge them or use a larger factor"
                )
        self.app = app
        self.windows = list(windows)
        self.factor = factor
        self._original_demand = app.demand
        self._removed = False
        app.demand = self._spiked_demand  # type: ignore[method-assign]

    def active(self, tick: int) -> bool:
        """Whether a spike window covers the tick."""
        return any(start <= tick < end for start, end in self.windows)

    def _spiked_demand(self, clock) -> ResourceVector:
        base = self._original_demand(clock)
        if self.active(clock.tick):
            return base.scaled(self.factor)
        return base

    def remove(self) -> None:
        """Restore the app's original demand function (idempotent)."""
        if self._removed:
            return
        self.app.demand = self._original_demand  # type: ignore[method-assign]
        self._removed = True


class MonitoringDropout:
    """Drop (skip) a middleware's ticks during scripted windows.

    Models a monitoring agent that loses samples — the controller
    simply sees nothing for those periods and must resynchronize.
    """

    def __init__(self, inner, windows: List) -> None:
        for start, end in windows:
            if end <= start:
                raise ValueError(f"empty dropout window ({start}, {end})")
        self.inner = inner
        self.windows = list(windows)
        self.dropped_ticks: List[int] = []

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        for start, end in self.windows:
            if start <= snapshot.tick < end:
                self.dropped_ticks.append(snapshot.tick)
                return
        self.inner.on_tick(snapshot, host)


# ---------------------------------------------------------------------------
# Chaos layer: seeded probabilistic faults
# ---------------------------------------------------------------------------

class SensorCorruptor:
    """Corrupt the snapshots an inner middleware observes.

    Models a broken monitoring channel between the host and the
    controller: with probability ``probability`` per tick the usage
    readings handed to ``inner`` are corrupted — NaN/Inf injection, a
    sign flip, an absurd spike, or a frozen replay of the previous
    snapshot. The host itself is untouched; only the observation is.

    Parameters
    ----------
    inner:
        The middleware whose view is corrupted (e.g. the controller).
    seed:
        RNG seed; every corruption is reproducible.
    probability:
        Per-tick corruption probability.
    kinds:
        Corruption kinds to draw from (default: all).
    """

    KINDS: Tuple[str, ...] = ("nan", "inf", "negative", "spike", "freeze")

    def __init__(
        self,
        inner,
        seed: int = 0,
        probability: float = 0.05,
        kinds: Optional[Sequence[str]] = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.inner = inner
        self.rng = np.random.default_rng(seed)
        self.probability = probability
        self.kinds = tuple(kinds) if kinds is not None else self.KINDS
        unknown = set(self.kinds) - set(self.KINDS)
        if unknown:
            raise ValueError(f"unknown corruption kinds: {sorted(unknown)}")
        self.corrupted_ticks: List[FaultEvent] = []
        self._previous_usage: Optional[Dict[str, ResourceVector]] = None

    def _corrupt_value(self, kind: str, value: float) -> float:
        if kind == "nan":
            return float("nan")
        if kind == "inf":
            return float("inf")
        if kind == "negative":
            return -abs(value) - 1.0
        if kind == "spike":
            return max(abs(value), 1.0) * 1e6
        raise AssertionError(kind)

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        corrupted = snapshot
        if snapshot.usage and self.rng.uniform() < self.probability:
            kind = str(self.rng.choice(self.kinds))
            if kind == "freeze" and self._previous_usage is not None:
                corrupted = dataclasses.replace(
                    snapshot, usage=dict(self._previous_usage)
                )
                self.corrupted_ticks.append(
                    FaultEvent(tick=snapshot.tick, kind="sensor-freeze", target="*")
                )
            elif kind != "freeze":
                name = str(self.rng.choice(sorted(snapshot.usage)))
                resource = Resource(
                    str(self.rng.choice([res.value for res in Resource]))
                )
                vector = snapshot.usage[name]
                bad = dataclasses.replace(
                    vector,
                    **{resource.value: self._corrupt_value(kind, vector.get(resource))},
                )
                usage = dict(snapshot.usage)
                usage[name] = bad
                corrupted = dataclasses.replace(snapshot, usage=usage)
                self.corrupted_ticks.append(
                    FaultEvent(tick=snapshot.tick, kind=f"sensor-{kind}", target=name)
                )
        self._previous_usage = dict(snapshot.usage)
        self.inner.on_tick(corrupted, host)


class QosDropout:
    """Silence an application's QoS channel.

    Wraps ``app.qos_report`` so that during scripted windows — or with
    a per-tick probability — the report is swallowed (``None``), as if
    the application wedged or the reporting IPC broke. The silence the
    degraded-mode machine must detect.

    Parameters
    ----------
    app:
        The (sensitive) application whose reports are dropped.
    windows:
        Optional ``(start_tick, end_tick)`` silence windows; needs a
        ``clock`` to know the current tick.
    probability / seed:
        Optional per-call drop probability (seeded).
    clock:
        The simulation clock consulted for window checks.
    """

    def __init__(
        self,
        app,
        windows: Optional[List] = None,
        probability: float = 0.0,
        seed: int = 0,
        clock=None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if windows:
            for start, end in windows:
                if end <= start:
                    raise ValueError(f"empty dropout window ({start}, {end})")
            if clock is None:
                raise ValueError("windows require a clock to consult")
        self.app = app
        self.windows = list(windows or [])
        self.probability = probability
        self.rng = np.random.default_rng(seed)
        self.clock = clock
        self.dropped_reports = 0
        self._original_report = app.qos_report
        self._removed = False
        app.qos_report = self._guarded_report  # type: ignore[method-assign]

    def _silenced_now(self) -> bool:
        if self.windows and self.clock is not None:
            tick = self.clock.tick
            if any(start <= tick < end for start, end in self.windows):
                return True
        return self.probability > 0 and self.rng.uniform() < self.probability

    def _guarded_report(self):
        report = self._original_report()
        if report is not None and self._silenced_now():
            self.dropped_reports += 1
            return None
        return report

    def remove(self) -> None:
        """Restore the app's original report method (idempotent)."""
        if self._removed:
            return
        self.app.qos_report = self._original_report  # type: ignore[method-assign]
        self._removed = True


class ContainerFlapper:
    """Randomly pause/resume/kill/restart containers behind the
    controller's back.

    The crash-looping supervisor and trigger-happy operator rolled into
    one middleware: each tick, each target container flips state with
    the configured probabilities. All faults are recorded.

    Parameters
    ----------
    targets:
        Container names to harass.
    flap_probability:
        Per-tick chance to toggle pause/resume on a target.
    kill_probability:
        Per-tick chance to stop a running target outright.
    restart_probability:
        Per-tick chance to supervisor-restart a stopped/paused target.
    """

    def __init__(
        self,
        targets: Sequence[str],
        seed: int = 0,
        flap_probability: float = 0.02,
        kill_probability: float = 0.0,
        restart_probability: float = 0.0,
    ) -> None:
        for name, p in (
            ("flap_probability", flap_probability),
            ("kill_probability", kill_probability),
            ("restart_probability", restart_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.targets = list(targets)
        self.rng = np.random.default_rng(seed)
        self.flap_probability = flap_probability
        self.kill_probability = kill_probability
        self.restart_probability = restart_probability
        self.fired: List[FaultEvent] = []

    def _record(self, tick: int, kind: str, target: str) -> None:
        self.fired.append(FaultEvent(tick=tick, kind=kind, target=target))

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        for name in self.targets:
            if name not in host.containers:
                continue
            container = host.container(name)
            if container.is_running and self.rng.uniform() < self.kill_probability:
                container.stop()
                self._record(snapshot.tick, "kill", name)
                continue
            if (
                not container.is_running
                and self.rng.uniform() < self.restart_probability
            ):
                container.restart()
                self._record(snapshot.tick, "restart", name)
                continue
            if self.rng.uniform() < self.flap_probability:
                if container.is_running:
                    container.pause()
                    self._record(snapshot.tick, "pause", name)
                elif container.is_paused:
                    container.resume()
                    self._record(snapshot.tick, "resume", name)


class ActuatorFaultInjector:
    """Make the host's pause/resume signals unreliable.

    With probability ``probability`` a ``pause_container`` /
    ``resume_container`` call silently does nothing — the SIGSTOP or
    SIGCONT was lost (ptrace interference, a frozen cgroup, a races-
    with-teardown kernel path). The reconciliation loop must notice the
    desired/actual drift and retry.

    Use :meth:`install` / :meth:`remove` around the run.
    """

    def __init__(self, host: Host, seed: int = 0, probability: float = 0.2) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.host = host
        self.rng = np.random.default_rng(seed)
        self.probability = probability
        self.dropped_signals: List[Tuple[str, str]] = []
        self._original_pause = None
        self._original_resume = None

    def install(self) -> "ActuatorFaultInjector":
        """Start dropping signals (idempotent)."""
        if self._original_pause is not None:
            return self
        self._original_pause = self.host.pause_container
        self._original_resume = self.host.resume_container
        self.host.pause_container = self._flaky_pause  # type: ignore[method-assign]
        self.host.resume_container = self._flaky_resume  # type: ignore[method-assign]
        return self

    def remove(self) -> None:
        """Restore reliable signal delivery (idempotent)."""
        if self._original_pause is None:
            return
        self.host.pause_container = self._original_pause  # type: ignore[method-assign]
        self.host.resume_container = self._original_resume  # type: ignore[method-assign]
        self._original_pause = None
        self._original_resume = None

    def _flaky_pause(self, name: str) -> None:
        if self.rng.uniform() < self.probability:
            self.dropped_signals.append(("pause", name))
            return
        self._original_pause(name)

    def _flaky_resume(self, name: str) -> None:
        if self.rng.uniform() < self.probability:
            self.dropped_signals.append(("resume", name))
            return
        self._original_resume(name)


# ---------------------------------------------------------------------------
# Controller-internal faults: stage crashes and model poisoning
# ---------------------------------------------------------------------------

class InjectedStageError(RuntimeError):
    """A deliberately injected controller-stage failure.

    Carries the stage and tick so the firewall's event record (and the
    chaos experiment's crash forensics) can attribute the fault.
    """

    def __init__(self, stage: str, tick: int) -> None:
        super().__init__(f"injected {stage}-stage fault at tick {tick}")
        self.fault_name = f"stage-{stage}"
        self.stage = stage
        self.tick = tick


class StageExceptionInjector:
    """Make controller stages raise — scripted or probabilistic.

    Wraps the controller's patchable stage seams (``_stage_guard``,
    ``_stage_map``, ``_stage_predict``, ``_stage_act``) so they raise
    :class:`InjectedStageError` at scripted ticks, during scripted
    windows, or with a per-period probability. The probabilistic
    decision is a pure function of ``(seed, tick, stage)`` — the fault
    script is identical across policy variants regardless of how each
    run's control flow diverges after the first fault.

    Use :meth:`install` / :meth:`remove` around the run.
    """

    STAGES: Tuple[str, ...] = ("guard", "map", "predict", "act")

    def __init__(
        self,
        controller,
        seed: int = 0,
        probability: float = 0.0,
        stages: Sequence[str] = ("map",),
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        unknown = set(stages) - set(self.STAGES)
        if unknown:
            raise ValueError(f"unknown stages: {sorted(unknown)}")
        self.controller = controller
        self.seed = seed
        self.probability = probability
        self.stages = tuple(stages)
        self._scripted: set = set()
        self._windows: List[Tuple[int, int, str]] = []
        self.fired: List[FaultEvent] = []
        self._originals: Dict[str, object] = {}

    def at(self, tick: int, stage: str) -> "StageExceptionInjector":
        """Script a single-period failure of ``stage`` at ``tick``."""
        if stage not in self.STAGES:
            raise ValueError(f"unknown stage {stage!r}")
        self._scripted.add((tick, stage))
        return self

    def during(self, start: int, end: int, stage: str) -> "StageExceptionInjector":
        """Script ``stage`` to fail every period in ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty fault window ({start}, {end})")
        if stage not in self.STAGES:
            raise ValueError(f"unknown stage {stage!r}")
        self._windows.append((start, end, stage))
        return self

    def _should_fail(self, tick: int, stage: str) -> bool:
        if (tick, stage) in self._scripted:
            return True
        for start, end, name in self._windows:
            if name == stage and start <= tick < end:
                return True
        if self.probability > 0 and stage in self.stages:
            rng = np.random.default_rng(
                [self.seed, tick, self.STAGES.index(stage)]
            )
            return bool(rng.uniform() < self.probability)
        return False

    def _wrap(self, stage: str, original):
        def faulty(tick, *args, **kwargs):
            if self._should_fail(tick, stage):
                self.fired.append(
                    FaultEvent(tick=tick, kind=f"stage-{stage}", target=stage)
                )
                raise InjectedStageError(stage=stage, tick=tick)
            return original(tick, *args, **kwargs)

        return faulty

    def install(self) -> "StageExceptionInjector":
        """Start injecting stage faults (idempotent)."""
        if self._originals:
            return self
        for stage in self.STAGES:
            name = f"_stage_{stage}"
            original = getattr(self.controller, name)
            self._originals[name] = original
            setattr(self.controller, name, self._wrap(stage, original))
        return self

    def remove(self) -> None:
        """Restore the original stage methods (idempotent)."""
        for name, original in self._originals.items():
            setattr(self.controller, name, original)
        self._originals = {}


class ModelPoisoner:
    """Silently corrupt the controller's learned state.

    The stressor the model-health watchdog exists for: NaN coordinates
    that escaped a numerical blow-up, representatives replaced with
    garbage, negative violation-range radii in the materialized
    geometry cache, non-finite step-histogram samples, a degenerated
    beta. Nothing raises — the damage only shows when the model is next
    used, exactly like real silent corruption.

    Registered as a middleware *after* the controller; poisons on
    period boundaries with a per-period probability that is a pure
    function of ``(seed, tick)``, so fault scripts are identical across
    policy variants.

    Parameters
    ----------
    controller:
        The :class:`~repro.core.controller.StayAway` whose model is
        poisoned.
    seed / probability:
        Seeded per-period poisoning probability.
    kinds:
        Poison kinds to draw from (default: all).
    """

    KINDS: Tuple[str, ...] = (
        "nan-coords",
        "garbage-coords",
        "nan-representative",
        "negative-radius",
        "nan-histogram",
        "nan-beta",
    )

    def __init__(
        self,
        controller,
        seed: int = 0,
        probability: float = 0.02,
        kinds: Optional[Sequence[str]] = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.controller = controller
        self.seed = seed
        self.probability = probability
        self.kinds = tuple(kinds) if kinds is not None else self.KINDS
        unknown = set(self.kinds) - set(self.KINDS)
        if unknown:
            raise ValueError(f"unknown poison kinds: {sorted(unknown)}")
        self.fired: List[FaultEvent] = []

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        tick = snapshot.tick
        if tick % self.controller.config.period != 0:
            return
        rng = np.random.default_rng([self.seed, tick])
        if rng.uniform() >= self.probability:
            return
        kind = str(rng.choice(self.kinds))
        if self._poison(kind, rng):
            self.fired.append(
                FaultEvent(tick=tick, kind=f"poison-{kind}", target="model")
            )

    def _poison(self, kind: str, rng: np.random.Generator) -> bool:
        """Apply one poison; returns False when there is nothing to hit."""
        controller = self.controller
        space = controller.state_space
        if kind in ("nan-coords", "garbage-coords"):
            n = int(space.coords.shape[0])
            if n == 0:
                return False
            index = int(rng.integers(n))
            value = float("nan") if kind == "nan-coords" else 1e9
            space.coords[index] = value
            return True
        if kind == "nan-representative":
            points = space.representatives._points
            if not points:
                return False
            index = int(rng.integers(len(points)))
            points[index] = points[index].copy()
            points[index][0] = float("nan")
            # Poison the backing store *and* drop the matrix cache so
            # the damage is visible immediately, as a real in-place
            # corruption of the live arrays would be.
            space.representatives._matrix = None
            return True
        if kind == "negative-radius":
            geometry = space._geometry
            if geometry is None or geometry.radii.size == 0:
                return False
            index = int(rng.integers(geometry.radii.size))
            geometry.radii[index] = -abs(float(geometry.radii[index])) - 1.0
            return True
        if kind == "nan-histogram":
            models = [
                model
                for model in controller.predictor.modes.models.values()
                if len(model.distances.samples)
            ]
            if not models:
                return False
            model = models[int(rng.integers(len(models)))]
            model.distances._samples.append(float("nan"))
            return True
        if kind == "nan-beta":
            controller.throttle.beta = float("nan")
            return True
        raise AssertionError(kind)


# ---------------------------------------------------------------------------
# Invariant checking
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InvariantBreach:
    """One recorded consistency violation."""

    tick: int
    check: str
    detail: str


class InvariantChecker:
    """Assert per-tick controller/host consistency; record breaches.

    Registered *after* the controller, it verifies on every controller
    period that:

    * throttle bookkeeping matches container states — every container
      the manager believes paused is actually not running (or has a
      reconciliation retry in flight), and a non-throttling manager
      holds no pause-set;
    * no non-finite mapped coordinates entered the trajectory;
    * the learned beta stays finite and positive;
    * headline counters never decrease.

    Breaches are recorded, not raised — under chaos the run must keep
    going so the full breach census is available at the end.
    """

    def __init__(self, controller) -> None:
        self.controller = controller
        self.breaches: List[InvariantBreach] = []
        self._last_counters: Dict[str, float] = {}

    def _breach(self, tick: int, check: str, detail: str) -> None:
        self.breaches.append(InvariantBreach(tick=tick, check=check, detail=detail))

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        controller = self.controller
        period = getattr(controller.config, "period", 1)
        if snapshot.tick % period != 0:
            return
        tick = snapshot.tick
        throttle = controller.throttle

        # 1. Throttle bookkeeping vs container states.
        pending = set(getattr(throttle, "pending_retries", {}))
        for name in throttle.desired_paused:
            container = host.containers.get(name)
            if container is None:
                self._breach(
                    tick, "pause-set", f"{name!r} in pause-set but not on host"
                )
            elif container.is_running and name not in pending:
                self._breach(
                    tick,
                    "pause-set",
                    f"{name!r} running while believed paused (no retry pending)",
                )
        if not throttle.throttling and throttle.desired_paused:
            self._breach(
                tick, "pause-set", "pause-set nonempty while not throttling"
            )

        # 2. Mapped coordinates stay finite.
        if controller.trajectory:
            coords = controller.trajectory[-1].coords
            if not np.all(np.isfinite(coords)):
                self._breach(tick, "coords", f"non-finite mapped coords {coords}")

        # 3. Beta sane.
        beta = throttle.beta
        if not np.isfinite(beta) or beta <= 0:
            self._breach(tick, "beta", f"beta degenerated to {beta}")

        # 4. Monotone counters.
        counters = {
            "throttles": throttle.throttle_count,
            "resumes": throttle.resume_count,
            "violations": controller.qos.violation_count,
        }
        for key, value in counters.items():
            previous = self._last_counters.get(key)
            if previous is not None and value < previous:
                self._breach(tick, "counters", f"{key} decreased {previous}->{value}")
        self._last_counters = counters

    @property
    def ok(self) -> bool:
        """True when no breach was recorded."""
        return not self.breaches

    def summary(self) -> dict:
        """Breach counts per check."""
        counts: Dict[str, int] = {}
        for breach in self.breaches:
            counts[breach.check] = counts.get(breach.check, 0) + 1
        return {"breaches": len(self.breaches), "by_check": counts}


# ---------------------------------------------------------------------------
# Cluster-level faults: host crashes, recovery, telemetry blackout
# ---------------------------------------------------------------------------

class HostCrashInjector:
    """Crash whole hosts — scripted or probabilistic — and recover them.

    A cluster middleware (``on_cluster_tick``): registered on a
    :class:`~repro.sim.cluster.Cluster`, it takes hosts down via
    :meth:`~repro.sim.cluster.Cluster.fail_host` and brings them back
    after ``recovery_ticks`` via
    :meth:`~repro.sim.cluster.Cluster.recover_host`.

    The probabilistic decision for each host is a pure function of
    ``(seed, tick, host)`` — the host's index in the sorted name order
    captured when the injector first sees the cluster — so the crash
    script is identical across policy arms no matter how each arm's
    control flow diverges after the first crash. ``max_down_fraction``
    caps simultaneous outages (a correlated-failure guard, applied in
    the same deterministic host order).
    """

    def __init__(
        self,
        seed: int = 0,
        probability: float = 0.0,
        recovery_ticks: Optional[int] = 20,
        max_down_fraction: float = 0.5,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if recovery_ticks is not None and recovery_ticks < 1:
            raise ValueError("recovery_ticks must be >= 1 (or None: never)")
        if not 0.0 < max_down_fraction <= 1.0:
            raise ValueError("max_down_fraction must be in (0, 1]")
        self.seed = seed
        self.probability = probability
        self.recovery_ticks = recovery_ticks
        self.max_down_fraction = max_down_fraction
        self._scripted_crashes: List[Tuple[int, str]] = []
        self._order: Optional[Tuple[str, ...]] = None
        self._recover_due: Dict[str, int] = {}
        self.fired: List[FaultEvent] = []

    def crash_at(self, tick: int, host: str) -> "HostCrashInjector":
        """Script a crash of ``host`` at ``tick`` (bypasses the cap)."""
        self._scripted_crashes.append((tick, host))
        return self

    def host_order(self, cluster: "Cluster") -> Tuple[str, ...]:
        """The stable host order indices are drawn from (captured once)."""
        if self._order is None:
            self._order = tuple(sorted(cluster.hosts))
        return self._order

    def _crash(self, tick: int, host: str, cluster: "Cluster") -> bool:
        if host not in cluster.hosts or not cluster.fail_host(host):
            return False
        self.fired.append(FaultEvent(tick=tick, kind="host-crash", target=host))
        if self.recovery_ticks is not None:
            self._recover_due[host] = tick + self.recovery_ticks
        return True

    def on_cluster_tick(
        self, snapshots: Dict[str, HostSnapshot], cluster: "Cluster"
    ) -> None:
        """Apply due recoveries, then scripted and probabilistic crashes."""
        tick = cluster.clock.tick - 1  # the tick the snapshots describe
        order = self.host_order(cluster)

        for host, due in sorted(self._recover_due.items()):
            if due <= tick and host in cluster.hosts:
                if cluster.recover_host(host):
                    self.fired.append(
                        FaultEvent(tick=tick, kind="host-recover", target=host)
                    )
                del self._recover_due[host]

        for scripted_tick, host in self._scripted_crashes:
            if scripted_tick == tick:
                self._crash(tick, host, cluster)

        if self.probability <= 0:
            return
        cap = int(self.max_down_fraction * len(cluster.hosts))
        for index, host in enumerate(order):
            if host in cluster.down or host not in cluster.hosts:
                continue
            if len(cluster.down) >= cap:
                break
            rng = np.random.default_rng([self.seed, tick, index])
            if rng.uniform() < self.probability:
                self._crash(tick, host, cluster)

    def summary(self) -> dict:
        """Crash/recover counts and the ticks they fired at."""
        crashes = [e for e in self.fired if e.kind == "host-crash"]
        recoveries = [e for e in self.fired if e.kind == "host-recover"]
        return {
            "crashes": len(crashes),
            "recoveries": len(recoveries),
            "crash_ticks": [e.tick for e in crashes],
        }


class HostRecoveryScript:
    """Bring scripted hosts back up at fixed ticks.

    The operator-side counterpart of :class:`HostCrashInjector` for
    drills that separate the crash script from the repair script (e.g.
    crash injected by chaos, repair modelling a human on-call): recover
    actions that find the host already up are silently skipped.
    """

    def __init__(self) -> None:
        self._scripted: List[Tuple[int, str]] = []
        self.fired: List[FaultEvent] = []

    def recover_at(self, tick: int, host: str) -> "HostRecoveryScript":
        """Script a recovery of ``host`` at ``tick``."""
        self._scripted.append((tick, host))
        return self

    def on_cluster_tick(
        self, snapshots: Dict[str, HostSnapshot], cluster: "Cluster"
    ) -> None:
        tick = cluster.clock.tick - 1
        for scripted_tick, host in self._scripted:
            if scripted_tick != tick or host not in cluster.hosts:
                continue
            if cluster.recover_host(host):
                self.fired.append(
                    FaultEvent(tick=tick, kind="host-recover", target=host)
                )


class TelemetryBlackout:
    """Hide host snapshots from an inner cluster middleware.

    Models a network partition between the monitoring plane and
    individual hosts: the machine is up and its containers keep
    running, but the coordinator receives no snapshot for it — the
    same view a crashed host produces, which is exactly why a fleet
    control plane must not treat 'no telemetry' as 'safe to act'.

    Scripted windows (``dark(start, end, host)``) and probabilistic
    blackouts are pure functions of ``(seed, tick, host)`` using the
    same stable host-index scheme as :class:`HostCrashInjector`, so
    the blackout script is arm-invariant too.
    """

    def __init__(
        self,
        inner,
        seed: int = 0,
        probability: float = 0.0,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.inner = inner
        self.seed = seed
        self.probability = probability
        self._windows: List[Tuple[int, int, str]] = []
        self._order: Optional[Tuple[str, ...]] = None
        self.fired: List[FaultEvent] = []

    def dark(self, start: int, end: int, host: str) -> "TelemetryBlackout":
        """Script ``host``'s telemetry dark for ticks in ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty blackout window ({start}, {end})")
        self._windows.append((start, end, host))
        return self

    def _is_dark(self, tick: int, host: str, index: int) -> bool:
        for start, end, name in self._windows:
            if name == host and start <= tick < end:
                return True
        if self.probability > 0:
            rng = np.random.default_rng([self.seed, tick, index, 1])
            return bool(rng.uniform() < self.probability)
        return False

    def on_cluster_tick(
        self, snapshots: Dict[str, HostSnapshot], cluster: "Cluster"
    ) -> None:
        tick = cluster.clock.tick - 1
        if self._order is None:
            self._order = tuple(sorted(cluster.hosts))
        index_of = {host: i for i, host in enumerate(self._order)}
        visible: Dict[str, HostSnapshot] = {}
        for host, snapshot in snapshots.items():
            if self._is_dark(tick, host, index_of.get(host, len(index_of))):
                self.fired.append(
                    FaultEvent(tick=tick, kind="blackout", target=host)
                )
            else:
                visible[host] = snapshot
        self.inner.on_cluster_tick(visible, cluster)


# ---------------------------------------------------------------------------
# Stream-transport faults: the metric stream itself misbehaves
# ---------------------------------------------------------------------------
#
# These wrap a stream *source* — any object with ``poll() -> List[dict]``,
# ``reconnect()`` and ``exhausted`` (the ``repro.service.stream`` duck
# type; wire records are plain dicts, so this module needs no service
# import and the layering stays one-directional). Every probabilistic
# decision is a pure function of ``(seed, tick, record-key)`` via
# ``np.random.default_rng([seed, tick, key])``, with string keys hashed
# by :func:`zlib.crc32` (stable across processes, unlike ``hash``) — the
# fault script is identical across the assembler-on / assembler-off
# arms regardless of how each consumer behaves after the first fault.


def _record_key(record: dict) -> int:
    """Stable per-record hash for seeded fault decisions."""
    text = "{}|{}".format(record.get("kind", ""), record.get("container", ""))
    return zlib.crc32(text.encode("utf-8"))


class StreamDropper:
    """Lose wire records in transit with a seeded per-record probability.

    Only tick-bearing records are dropped (the ``header`` always
    arrives — losing it is a different failure: a dead stream). The
    assembler sees the loss as missing cells at close and imputes;
    the assembler-less arm zero-fills and poisons its map.
    """

    def __init__(self, inner, seed: int = 0, probability: float = 0.05) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.inner = inner
        self.seed = seed
        self.probability = probability
        self.dropped: List[FaultEvent] = []

    def poll(self) -> List[dict]:
        kept: List[dict] = []
        for record in self.inner.poll():
            tick = record.get("tick")
            if tick is None:
                kept.append(record)
                continue
            rng = np.random.default_rng([self.seed, tick, _record_key(record), 2])
            if rng.uniform() < self.probability:
                self.dropped.append(
                    FaultEvent(
                        tick=tick,
                        kind="stream-drop",
                        target=str(record.get("container", record.get("kind"))),
                    )
                )
                continue
            kept.append(record)
        return kept

    def reconnect(self) -> None:
        self.inner.reconnect()

    @property
    def exhausted(self) -> bool:
        return self.inner.exhausted


class StreamReorderer:
    """Delay wire records so they arrive behind newer ticks.

    With probability ``probability`` a tick-bearing record is held for
    ``1..max_delay`` polls before delivery — by which time newer ticks
    have usually passed it, so the consumer sees genuine reordering.
    Held records still drain after the inner source is exhausted
    (delayed, not lost).
    """

    def __init__(
        self,
        inner,
        seed: int = 0,
        probability: float = 0.1,
        max_delay: int = 3,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        self.inner = inner
        self.seed = seed
        self.probability = probability
        self.max_delay = max_delay
        self.delayed: List[FaultEvent] = []
        self._poll_index = 0
        self._held: List[Tuple[int, dict]] = []  # (due poll index, record)

    def poll(self) -> List[dict]:
        self._poll_index += 1
        out: List[dict] = []
        still_held: List[Tuple[int, dict]] = []
        for due, record in self._held:
            if due <= self._poll_index:
                out.append(record)
            else:
                still_held.append((due, record))
        self._held = still_held
        for record in self.inner.poll():
            tick = record.get("tick")
            if tick is None:
                out.append(record)
                continue
            rng = np.random.default_rng([self.seed, tick, _record_key(record), 3])
            if rng.uniform() < self.probability:
                delay = 1 + int(rng.integers(self.max_delay))
                self._held.append((self._poll_index + delay, record))
                self.delayed.append(
                    FaultEvent(
                        tick=tick,
                        kind="stream-reorder",
                        target=str(record.get("container", record.get("kind"))),
                    )
                )
                continue
            out.append(record)
        return out

    def reconnect(self) -> None:
        self.inner.reconnect()

    @property
    def exhausted(self) -> bool:
        return self.inner.exhausted and not self._held


class StreamDuplicator:
    """Deliver wire records twice — once now, once a poll later.

    At-least-once transports redeliver; the assembler's
    ``(tick, host, container, metric)`` dedup key absorbs the copy,
    the naive consumer double-applies it.
    """

    def __init__(self, inner, seed: int = 0, probability: float = 0.1) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.inner = inner
        self.seed = seed
        self.probability = probability
        self.duplicated: List[FaultEvent] = []
        self._echo: List[dict] = []

    def poll(self) -> List[dict]:
        out: List[dict] = list(self._echo)
        self._echo = []
        for record in self.inner.poll():
            out.append(record)
            tick = record.get("tick")
            if tick is None:
                continue
            rng = np.random.default_rng([self.seed, tick, _record_key(record), 4])
            if rng.uniform() < self.probability:
                self._echo.append(dict(record))
                self.duplicated.append(
                    FaultEvent(
                        tick=tick,
                        kind="stream-duplicate",
                        target=str(record.get("container", record.get("kind"))),
                    )
                )
        return out

    def reconnect(self) -> None:
        self.inner.reconnect()

    @property
    def exhausted(self) -> bool:
        return self.inner.exhausted and not self._echo


class StreamStaller:
    """Freeze the transport for scripted windows of polls.

    During a stall the wrapper neither polls the inner source nor
    delivers anything — the consumer's newest tick stops advancing,
    which is exactly what its stall-deadline degradation watches for.
    Data is delayed, not lost: polling resumes where it left off.
    Windows are ``(start, end)`` in *poll indices* (first poll is 1).
    """

    def __init__(self, inner, windows: Optional[List[Tuple[int, int]]] = None) -> None:
        self.inner = inner
        self.windows = list(windows or [])
        for start, end in self.windows:
            if end <= start:
                raise ValueError(f"empty stall window ({start}, {end})")
        self.stalled_polls: List[int] = []
        self._poll_index = 0

    def stall(self, start: int, end: int) -> "StreamStaller":
        """Add a stall window covering polls ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty stall window ({start}, {end})")
        self.windows.append((start, end))
        return self

    def poll(self) -> List[dict]:
        self._poll_index += 1
        if any(start <= self._poll_index < end for start, end in self.windows):
            self.stalled_polls.append(self._poll_index)
            return []
        return self.inner.poll()

    def reconnect(self) -> None:
        self.inner.reconnect()

    @property
    def exhausted(self) -> bool:
        return self.inner.exhausted


class ActuatorAckDropper:
    """Lose actuation acknowledgements with a seeded probability.

    Plugs into :class:`~repro.service.actuator.SimHostActuator` as its
    ``ack_filter``: the pause/resume *lands* on the host but the ack
    does not come back, so the tracker redelivers — the
    at-least-once double-delivery case idempotent pause/resume must
    absorb. Deterministic in ``(seed, tick, command_id)``.
    """

    def __init__(self, seed: int = 0, probability: float = 0.3) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.seed = seed
        self.probability = probability
        self.dropped_acks: List[FaultEvent] = []

    def __call__(self, command, tick: int) -> bool:
        rng = np.random.default_rng(
            [self.seed, tick, int(command.command_id), int(command.attempts), 5]
        )
        if rng.uniform() < self.probability:
            self.dropped_acks.append(
                FaultEvent(tick=tick, kind="ack-drop", target=command.container)
            )
            return False
        return True
