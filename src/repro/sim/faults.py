"""Fault injection: scripted disturbances for robustness experiments.

The controller must stay well-behaved when the environment misbehaves —
containers dying mid-throttle, demand spikes, monitoring dropouts. This
module turns those disturbances into declarative, reproducible
middleware instead of ad-hoc test code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.host import Host, HostSnapshot
from repro.sim.resources import ResourceVector


@dataclass(frozen=True)
class FaultEvent:
    """A fault that fired during the run."""

    tick: int
    kind: str
    target: str


class FaultSchedule:
    """A middleware executing scripted faults at fixed ticks.

    Supported actions: ``kill`` (stop a container), ``pause`` /
    ``resume`` (external signals racing the controller's own), and
    ``restart`` (resume a paused container and reset its pause count
    bookkeeping is left untouched — a crash-looping supervisor).
    """

    def __init__(self) -> None:
        self._scripted: List = []
        self.fired: List[FaultEvent] = []

    def kill(self, tick: int, container: str) -> "FaultSchedule":
        """Stop a container at a tick (process crash / OOM kill)."""
        self._scripted.append((tick, "kill", container))
        return self

    def pause(self, tick: int, container: str) -> "FaultSchedule":
        """Externally SIGSTOP a container (an operator or another agent)."""
        self._scripted.append((tick, "pause", container))
        return self

    def resume(self, tick: int, container: str) -> "FaultSchedule":
        """Externally SIGCONT a container."""
        self._scripted.append((tick, "resume", container))
        return self

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """Fire any faults scheduled for this tick."""
        for tick, kind, target in self._scripted:
            if tick != snapshot.tick or target not in host.containers:
                continue
            container = host.container(target)
            if kind == "kill":
                container.stop()
            elif kind == "pause" and container.is_running:
                container.pause()
            elif kind == "resume" and container.is_paused:
                container.resume()
            else:
                continue
            self.fired.append(FaultEvent(tick=tick, kind=kind, target=target))


class DemandSpiker:
    """Inject transient demand spikes into an application.

    Wraps the app's ``demand`` so that during scripted windows the
    demand is multiplied — a flash crowd, a garbage-collection storm, a
    runaway query. Spikes are the 'instantaneous transitions' stressor
    for the predictor (§3.2.3).
    """

    def __init__(
        self,
        app,
        windows: List,
        factor: float = 2.0,
    ) -> None:
        """``windows`` is a list of ``(start_tick, end_tick)`` pairs."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        for start, end in windows:
            if end <= start:
                raise ValueError(f"empty spike window ({start}, {end})")
        self.app = app
        self.windows = list(windows)
        self.factor = factor
        self._original_demand = app.demand
        app.demand = self._spiked_demand  # type: ignore[method-assign]

    def active(self, tick: int) -> bool:
        """Whether a spike window covers the tick."""
        return any(start <= tick < end for start, end in self.windows)

    def _spiked_demand(self, clock) -> ResourceVector:
        base = self._original_demand(clock)
        if self.active(clock.tick):
            return base.scaled(self.factor)
        return base

    def remove(self) -> None:
        """Restore the app's original demand function."""
        self.app.demand = self._original_demand  # type: ignore[method-assign]


class MonitoringDropout:
    """Drop (skip) a middleware's ticks during scripted windows.

    Models a monitoring agent that loses samples — the controller
    simply sees nothing for those periods and must resynchronize.
    """

    def __init__(self, inner, windows: List) -> None:
        for start, end in windows:
            if end <= start:
                raise ValueError(f"empty dropout window ({start}, {end})")
        self.inner = inner
        self.windows = list(windows)
        self.dropped_ticks: List[int] = []

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        for start, end in self.windows:
            if start <= snapshot.tick < end:
                self.dropped_ticks.append(snapshot.tick)
                return
        self.inner.on_tick(snapshot, host)
