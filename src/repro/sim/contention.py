"""Contention resolution: how co-located demand turns into allocations.

The paper's observable phenomenon is simple: when co-located containers
contend for a shared resource, the sensitive application's service rate
drops and a QoS violation manifests (§1, §3). This module reproduces
that phenomenon with two mechanisms:

* **Proportional share on rate resources** (CPU, memory bandwidth, disk
  I/O, network): when the summed demand exceeds capacity, each tenant
  receives ``demand * capacity / total`` — the fair-share behaviour of
  the Linux CFS scheduler and of saturated buses/devices.

* **Swap pressure on memory**: memory is a space resource. When the
  summed resident-set demand exceeds physical memory, the OS swaps
  pages; in the paper this is exactly how Twitter-Analysis hurts the
  Webservice ("its memory operation is intensive enough to force the OS
  to swap pages of Webservice to disk", §7.2). We model this as a
  progress penalty applied to every memory-resident tenant plus induced
  disk traffic, growing with the overcommit ratio.

An application's *progress factor* for the tick is the worst
satisfaction ratio across the rate resources it actually demanded,
multiplied by the swap penalty. A progress factor of 1.0 means the
application ran as if alone on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.sim.resources import (
    RATE_RESOURCES,
    Resource,
    ResourceVector,
    sum_vectors,
)


@dataclass(frozen=True)
class Allocation:
    """What one container actually received during a tick.

    Attributes
    ----------
    granted:
        The resource amounts actually delivered this tick.
    progress:
        Fraction of the work the application wanted to do this tick
        that it could complete, in ``[0, 1]``.
    swap_penalty:
        The multiplicative slow-down attributable to memory
        overcommit (1.0 = no swapping). Folded into ``progress``;
        reported separately for analysis.
    """

    granted: ResourceVector
    progress: float
    swap_penalty: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.progress <= 1.0 + 1e-9:
            raise ValueError(f"progress must be in [0, 1], got {self.progress}")


class ContentionModel:
    """Interface: turn per-container demands into per-container allocations."""

    def resolve(
        self,
        demands: Mapping[str, ResourceVector],
        capacity: ResourceVector,
        weights: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, Allocation]:
        """Resolve contention for one tick.

        Parameters
        ----------
        demands:
            Demand vector per container name. Paused containers must
            not appear here (they demand nothing).
        capacity:
            The host's total capacity.
        weights:
            Optional cgroup-shares-style weights per container; how a
            model honours them is model-specific. ``None`` means equal
            weights.
        """
        raise NotImplementedError


@dataclass
class ProportionalShareModel(ContentionModel):
    """Fair proportional sharing with a swap penalty on memory overcommit.

    Parameters
    ----------
    swap_cost:
        Strength of the swapping penalty. With overcommit ratio
        ``rho = total_memory_demand / capacity`` the multiplicative
        penalty applied to memory-resident tenants is
        ``1 / (1 + swap_cost * (rho - 1))`` for ``rho > 1``. The
        default makes a 25% overcommit cost roughly half the machine's
        effective speed — deliberately harsh, as real swapping is.
    swap_io_per_overcommit_mb:
        Disk traffic (MB/s) induced per MB of overcommitted memory,
        charged against disk capacity so that swapping also congests
        the disk for everyone.
    """

    swap_cost: float = 3.0
    swap_io_per_overcommit_mb: float = 0.05
    _last_swap_ratio: float = field(default=1.0, repr=False)

    def resolve(
        self,
        demands: Mapping[str, ResourceVector],
        capacity: ResourceVector,
        weights: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, Allocation]:
        # Proportional share divides saturated resources by demand; it
        # deliberately ignores weights (see WeightedWaterFillModel for
        # a shares-aware scheduler).
        if not demands:
            return {}
        for name, demand in demands.items():
            for resource, value in demand.items():
                if value < 0:
                    raise ValueError(
                        f"container {name!r} demanded negative {resource.name}: {value}"
                    )

        total = sum_vectors(demands.values())

        # Swap pressure from memory overcommit. The induced disk I/O is
        # added to the disk demand pool *before* disk shares are
        # computed, so heavy swapping congests the disk for all tenants.
        memory_total = total.get(Resource.MEMORY)
        memory_capacity = capacity.get(Resource.MEMORY)
        overcommit_mb = max(0.0, memory_total - memory_capacity)
        if memory_capacity > 0 and overcommit_mb > 0:
            ratio = memory_total / memory_capacity
            swap_penalty = 1.0 / (1.0 + self.swap_cost * (ratio - 1.0))
        else:
            ratio = 1.0
            swap_penalty = 1.0
        self._last_swap_ratio = ratio
        swap_io = overcommit_mb * self.swap_io_per_overcommit_mb

        # Per-resource satisfaction ratio shared by all tenants.
        share_ratio: Dict[Resource, float] = {}
        for resource in RATE_RESOURCES:
            demanded = total.get(resource)
            if resource is Resource.DISK_IO:
                demanded += swap_io
            available = capacity.get(resource)
            if demanded <= available or demanded <= 0:
                share_ratio[resource] = 1.0
            else:
                share_ratio[resource] = available / demanded

        memory_ratio = 1.0
        if memory_total > memory_capacity > 0:
            memory_ratio = memory_capacity / memory_total

        allocations: Dict[str, Allocation] = {}
        for name, demand in demands.items():
            granted_values: Dict[Resource, float] = {}
            progress = 1.0
            for resource in RATE_RESOURCES:
                wanted = demand.get(resource)
                got = wanted * share_ratio[resource]
                granted_values[resource] = got
                if wanted > 0:
                    progress = min(progress, got / wanted)
            granted_values[Resource.MEMORY] = demand.get(Resource.MEMORY) * memory_ratio

            tenant_swap_penalty = 1.0
            if demand.get(Resource.MEMORY) > 0:
                tenant_swap_penalty = swap_penalty
            progress *= tenant_swap_penalty

            allocations[name] = Allocation(
                granted=ResourceVector.from_mapping(granted_values),
                progress=min(1.0, max(0.0, progress)),
                swap_penalty=tenant_swap_penalty,
            )
        return allocations

    @property
    def last_swap_ratio(self) -> float:
        """Memory overcommit ratio observed in the most recent resolve."""
        return self._last_swap_ratio


def weighted_water_fill(
    demands: Mapping[str, float],
    weights: Mapping[str, float],
    capacity: float,
) -> Dict[str, float]:
    """Weighted max-min allocation of one rate resource.

    The work-conserving behaviour of the Linux CFS scheduler with
    cgroup shares: each tenant is entitled to a weight-proportional
    slice; tenants demanding less than their slice are fully satisfied
    and their leftover is redistributed among the still-hungry ones.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    granted = {name: 0.0 for name in demands}
    hungry = {
        name for name, demand in demands.items() if demand > 0
    }
    for name in hungry:
        if weights.get(name, 1.0) <= 0:
            raise ValueError(f"weight for {name!r} must be positive")
    remaining = capacity
    # Each pass either satisfies at least one tenant fully or ends.
    while hungry and remaining > 1e-12:
        total_weight = sum(weights.get(name, 1.0) for name in hungry)
        satisfied = set()
        distributed = 0.0
        for name in hungry:
            slice_ = remaining * weights.get(name, 1.0) / total_weight
            need = demands[name] - granted[name]
            take = min(slice_, need)
            granted[name] += take
            distributed += take
            if granted[name] >= demands[name] - 1e-12:
                satisfied.add(name)
        remaining -= distributed
        if not satisfied:
            break
        hungry -= satisfied
    return granted


@dataclass
class WeightedWaterFillModel(ContentionModel):
    """Work-conserving weighted fair sharing (CFS + cgroup shares).

    Unlike :class:`ProportionalShareModel`, a tenant demanding less
    than its fair slice is fully satisfied, and cgroup-style ``weights``
    shift the slices under saturation. Memory stays a space resource
    with the same swap penalty — crucially, *weights cannot buy a
    tenant out of swap pressure*, which is exactly the headroom limit
    that Q-Clouds-style weight boosting runs into (§8).
    """

    swap_cost: float = 3.0
    swap_io_per_overcommit_mb: float = 0.05
    _last_swap_ratio: float = field(default=1.0, repr=False)

    def resolve(
        self,
        demands: Mapping[str, ResourceVector],
        capacity: ResourceVector,
        weights: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, Allocation]:
        if not demands:
            return {}
        weights = dict(weights) if weights else {}
        for name, demand in demands.items():
            for resource, value in demand.items():
                if value < 0:
                    raise ValueError(
                        f"container {name!r} demanded negative {resource.name}: {value}"
                    )

        total = sum_vectors(demands.values())
        memory_total = total.get(Resource.MEMORY)
        memory_capacity = capacity.get(Resource.MEMORY)
        overcommit_mb = max(0.0, memory_total - memory_capacity)
        if memory_capacity > 0 and overcommit_mb > 0:
            ratio = memory_total / memory_capacity
            swap_penalty = 1.0 / (1.0 + self.swap_cost * (ratio - 1.0))
        else:
            ratio = 1.0
            swap_penalty = 1.0
        self._last_swap_ratio = ratio
        swap_io = overcommit_mb * self.swap_io_per_overcommit_mb

        # Per-resource weighted water-filling.
        per_resource_grants: Dict[Resource, Dict[str, float]] = {}
        for resource in RATE_RESOURCES:
            available = capacity.get(resource)
            if resource is Resource.DISK_IO:
                available = max(0.0, available - swap_io)
            per_resource_grants[resource] = weighted_water_fill(
                {name: demand.get(resource) for name, demand in demands.items()},
                weights,
                available,
            )

        memory_ratio = 1.0
        if memory_total > memory_capacity > 0:
            memory_ratio = memory_capacity / memory_total

        allocations: Dict[str, Allocation] = {}
        for name, demand in demands.items():
            granted_values: Dict[Resource, float] = {}
            progress = 1.0
            for resource in RATE_RESOURCES:
                wanted = demand.get(resource)
                got = per_resource_grants[resource][name]
                granted_values[resource] = got
                if wanted > 0:
                    progress = min(progress, got / wanted)
            granted_values[Resource.MEMORY] = demand.get(Resource.MEMORY) * memory_ratio

            tenant_swap_penalty = 1.0
            if demand.get(Resource.MEMORY) > 0:
                tenant_swap_penalty = swap_penalty
            progress *= tenant_swap_penalty

            allocations[name] = Allocation(
                granted=ResourceVector.from_mapping(granted_values),
                progress=min(1.0, max(0.0, progress)),
                swap_penalty=tenant_swap_penalty,
            )
        return allocations

    @property
    def last_swap_ratio(self) -> float:
        """Memory overcommit ratio observed in the most recent resolve."""
        return self._last_swap_ratio
