"""Contention resolution: how co-located demand turns into allocations.

The paper's observable phenomenon is simple: when co-located containers
contend for a shared resource, the sensitive application's service rate
drops and a QoS violation manifests (§1, §3). This module reproduces
that phenomenon with two mechanisms:

* **Proportional share on rate resources** (CPU, memory bandwidth, disk
  I/O, network): when the summed demand exceeds capacity, each tenant
  receives ``demand * capacity / total`` — the fair-share behaviour of
  the Linux CFS scheduler and of saturated buses/devices.

* **Swap pressure on memory**: memory is a space resource. When the
  summed resident-set demand exceeds physical memory, the OS swaps
  pages; in the paper this is exactly how Twitter-Analysis hurts the
  Webservice ("its memory operation is intensive enough to force the OS
  to swap pages of Webservice to disk", §7.2). We model this as a
  progress penalty applied to every memory-resident tenant plus induced
  disk traffic, growing with the overcommit ratio.

An application's *progress factor* for the tick is the worst
satisfaction ratio across the rate resources it actually demanded,
multiplied by the swap penalty. A progress factor of 1.0 means the
application ran as if alone on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.sim.resources import (
    MEMORY_INDEX,
    RATE_INDICES,
    RATE_RESOURCES,
    Resource,
    ResourceVector,
    sum_vectors,
)

#: Position of disk I/O within the ``RATE_INDICES`` column block —
#: the rate column that swap-induced I/O congests.
_DISK_RATE_POS = RATE_RESOURCES.index(Resource.DISK_IO)


def swap_pressure(
    memory_total: float,
    memory_capacity: float,
    swap_cost: float,
    swap_io_per_overcommit_mb: float,
) -> Tuple[float, float, float]:
    """The swap-pressure equation, shared by every contention path.

    With overcommit ratio ``rho = memory_total / memory_capacity`` the
    multiplicative progress penalty applied to memory-resident tenants
    is ``1 / (1 + swap_cost * (rho - 1))`` for ``rho > 1``, and the
    page traffic charged against the disk is
    ``(memory_total - memory_capacity) * swap_io_per_overcommit_mb``.

    Returns ``(ratio, penalty, swap_io)``; ``(1.0, 1.0, 0.0)`` when
    there is no overcommit (or no finite memory capacity). The array
    resolvers (:func:`resolve_proportional_arrays`,
    :func:`resolve_waterfill_arrays`) implement this same equation
    vectorized, operation for operation — keep the two in sync.
    """
    overcommit_mb = max(0.0, memory_total - memory_capacity)
    if memory_capacity > 0 and overcommit_mb > 0:
        ratio = memory_total / memory_capacity
        penalty = 1.0 / (1.0 + swap_cost * (ratio - 1.0))
    else:
        ratio = 1.0
        penalty = 1.0
    return ratio, penalty, overcommit_mb * swap_io_per_overcommit_mb


@dataclass(frozen=True)
class Allocation:
    """What one container actually received during a tick.

    Attributes
    ----------
    granted:
        The resource amounts actually delivered this tick.
    progress:
        Fraction of the work the application wanted to do this tick
        that it could complete, in ``[0, 1]``.
    swap_penalty:
        The multiplicative slow-down attributable to memory
        overcommit (1.0 = no swapping). Folded into ``progress``;
        reported separately for analysis.
    """

    granted: ResourceVector
    progress: float
    swap_penalty: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.progress <= 1.0 + 1e-9:
            raise ValueError(f"progress must be in [0, 1], got {self.progress}")


class ContentionModel:
    """Interface: turn per-container demands into per-container allocations."""

    def resolve(
        self,
        demands: Mapping[str, ResourceVector],
        capacity: ResourceVector,
        weights: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, Allocation]:
        """Resolve contention for one tick.

        Parameters
        ----------
        demands:
            Demand vector per container name. Paused containers must
            not appear here (they demand nothing).
        capacity:
            The host's total capacity.
        weights:
            Optional cgroup-shares-style weights per container; how a
            model honours them is model-specific. ``None`` means equal
            weights.
        """
        raise NotImplementedError


@dataclass
class ProportionalShareModel(ContentionModel):
    """Fair proportional sharing with a swap penalty on memory overcommit.

    Parameters
    ----------
    swap_cost:
        Strength of the swapping penalty. With overcommit ratio
        ``rho = total_memory_demand / capacity`` the multiplicative
        penalty applied to memory-resident tenants is
        ``1 / (1 + swap_cost * (rho - 1))`` for ``rho > 1``. The
        default makes a 25% overcommit cost roughly half the machine's
        effective speed — deliberately harsh, as real swapping is.
    swap_io_per_overcommit_mb:
        Disk traffic (MB/s) induced per MB of overcommitted memory,
        charged against disk capacity so that swapping also congests
        the disk for everyone.
    """

    swap_cost: float = 3.0
    swap_io_per_overcommit_mb: float = 0.05
    _last_swap_ratio: float = field(default=1.0, repr=False)

    def resolve(
        self,
        demands: Mapping[str, ResourceVector],
        capacity: ResourceVector,
        weights: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, Allocation]:
        # Proportional share divides saturated resources by demand; it
        # deliberately ignores weights (see WeightedWaterFillModel for
        # a shares-aware scheduler).
        if not demands:
            return {}
        for name, demand in demands.items():
            for resource, value in demand.items():
                if value < 0:
                    raise ValueError(
                        f"container {name!r} demanded negative {resource.name}: {value}"
                    )

        total = sum_vectors(demands.values())

        # Swap pressure from memory overcommit. The induced disk I/O is
        # added to the disk demand pool *before* disk shares are
        # computed, so heavy swapping congests the disk for all tenants.
        memory_total = total.get(Resource.MEMORY)
        memory_capacity = capacity.get(Resource.MEMORY)
        ratio, swap_penalty, swap_io = swap_pressure(
            memory_total, memory_capacity,
            self.swap_cost, self.swap_io_per_overcommit_mb,
        )
        self._last_swap_ratio = ratio

        # Per-resource satisfaction ratio shared by all tenants.
        share_ratio: Dict[Resource, float] = {}
        for resource in RATE_RESOURCES:
            demanded = total.get(resource)
            if resource is Resource.DISK_IO:
                demanded += swap_io
            available = capacity.get(resource)
            if demanded <= available or demanded <= 0:
                share_ratio[resource] = 1.0
            else:
                share_ratio[resource] = available / demanded

        memory_ratio = 1.0
        if memory_total > memory_capacity > 0:
            memory_ratio = memory_capacity / memory_total

        allocations: Dict[str, Allocation] = {}
        for name, demand in demands.items():
            granted_values: Dict[Resource, float] = {}
            progress = 1.0
            for resource in RATE_RESOURCES:
                wanted = demand.get(resource)
                got = wanted * share_ratio[resource]
                granted_values[resource] = got
                if wanted > 0:
                    progress = min(progress, got / wanted)
            granted_values[Resource.MEMORY] = demand.get(Resource.MEMORY) * memory_ratio

            tenant_swap_penalty = 1.0
            if demand.get(Resource.MEMORY) > 0:
                tenant_swap_penalty = swap_penalty
            progress *= tenant_swap_penalty

            allocations[name] = Allocation(
                granted=ResourceVector.from_mapping(granted_values),
                progress=min(1.0, max(0.0, progress)),
                swap_penalty=tenant_swap_penalty,
            )
        return allocations

    @property
    def last_swap_ratio(self) -> float:
        """Memory overcommit ratio observed in the most recent resolve."""
        return self._last_swap_ratio

    def record_swap_ratio(self, ratio: float) -> None:
        """Store an externally computed overcommit ratio.

        Seam for the batched cluster engine: it resolves contention for
        many hosts in one array pass, then writes each host's ratio
        back so ``last_swap_ratio`` (and the host snapshot built from
        it) reads identically on either path.
        """
        self._last_swap_ratio = float(ratio)


# ---------------------------------------------------------------------------
# Batched (struct-of-arrays) resolvers
# ---------------------------------------------------------------------------
#
# These resolve contention for *all containers on all hosts* in one
# pass over dense arrays. Shapes follow one convention throughout:
#
#   C — number of active (demanding) containers across the fleet
#   H — number of hosts
#   R — number of resource dimensions (``NUM_RESOURCES``, column order
#       ``RESOURCE_INDEX``)
#
# Per-host aggregation uses ``np.add.at`` — an *unbuffered, ordered*
# segmented reduction that folds rows in index order. Because the
# scalar models fold their Python dicts in the same (insertion) order,
# the array resolvers produce bit-identical floats to the scalar path
# on the same platform; see docs/SIMULATION.md for the full
# equivalence contract.


@dataclass(frozen=True)
class BatchResolution:
    """Result of one batched contention pass.

    Attributes
    ----------
    granted:
        ``(C, R)`` resources actually delivered per container row.
    progress:
        ``(C,)`` progress factor per container row, in ``[0, 1]``.
    swap_penalty:
        ``(C,)`` multiplicative swap slow-down per container row
        (1.0 where the row demanded no memory).
    swap_ratio:
        ``(H,)`` memory overcommit ratio per host (1.0 = none).
    """

    granted: np.ndarray
    progress: np.ndarray
    swap_penalty: np.ndarray
    swap_ratio: np.ndarray


def _swap_pressure_arrays(
    totals: np.ndarray,
    capacity: np.ndarray,
    swap_cost: np.ndarray,
    swap_io_rate: np.ndarray,
):
    """Vectorized :func:`swap_pressure` over ``(H, R)`` demand totals.

    Returns ``(ratio (H,), penalty (H,), swap_io (H,), memory_ratio
    (H,))`` — the per-host swap state plus the residency scale factor
    applied to memory grants under overcommit.
    """
    memory_total = totals[:, MEMORY_INDEX]
    memory_capacity = capacity[:, MEMORY_INDEX]
    overcommit = np.maximum(0.0, memory_total - memory_capacity)
    swapping = (memory_capacity > 0) & (overcommit > 0)
    safe_capacity = np.where(memory_capacity > 0, memory_capacity, 1.0)
    ratio = np.where(swapping, memory_total / safe_capacity, 1.0)
    penalty = np.where(swapping, 1.0 / (1.0 + swap_cost * (ratio - 1.0)), 1.0)
    swap_io = overcommit * swap_io_rate
    squeezed = (memory_total > memory_capacity) & (memory_capacity > 0)
    safe_total = np.where(memory_total > 0, memory_total, 1.0)
    memory_ratio = np.where(squeezed, memory_capacity / safe_total, 1.0)
    return ratio, penalty, swap_io, memory_ratio


def _finish_batch(
    demand: np.ndarray,
    host_index: np.ndarray,
    got_rate: np.ndarray,
    penalty: np.ndarray,
    memory_ratio: np.ndarray,
    swap_ratio: np.ndarray,
) -> BatchResolution:
    """Assemble granted/progress arrays from per-row rate grants.

    ``got_rate`` is ``(C, len(RATE_INDICES))`` in ``RATE_INDICES``
    column order; progress is the worst satisfaction ratio across the
    rate resources each row demanded, times the host's swap penalty
    where the row holds memory — exactly the scalar models' math.
    """
    wanted_rate = demand[:, RATE_INDICES]
    safe_wanted = np.where(wanted_rate > 0, wanted_rate, 1.0)
    satisfaction = np.where(wanted_rate > 0, got_rate / safe_wanted, np.inf)
    progress = np.minimum(1.0, satisfaction.min(axis=1, initial=np.inf))

    granted = np.zeros_like(demand)
    granted[:, RATE_INDICES] = got_rate
    granted[:, MEMORY_INDEX] = demand[:, MEMORY_INDEX] * memory_ratio[host_index]

    tenant_penalty = np.where(
        demand[:, MEMORY_INDEX] > 0, penalty[host_index], 1.0
    )
    progress = progress * tenant_penalty
    progress = np.minimum(1.0, np.maximum(0.0, progress))
    return BatchResolution(
        granted=granted,
        progress=progress,
        swap_penalty=tenant_penalty,
        swap_ratio=swap_ratio,
    )


def resolve_proportional_arrays(
    demand: np.ndarray,
    host_index: np.ndarray,
    capacity: np.ndarray,
    swap_cost: np.ndarray,
    swap_io_rate: np.ndarray,
) -> BatchResolution:
    """Batched :class:`ProportionalShareModel` over all hosts at once.

    Parameters
    ----------
    demand:
        ``(C, R)`` non-negative demand rows for the fleet's demanding
        containers (zero-demand rows are legal but see the engine's
        ``is_zero`` gate for scalar parity).
    host_index:
        ``(C,)`` integer row -> host assignment; rows of one host must
        appear in that host's container insertion order for bit parity
        with the scalar path.
    capacity:
        ``(H, R)`` per-host capacities.
    swap_cost / swap_io_rate:
        ``(H,)`` per-host swap model parameters (one scalar model
        instance per host in the object world).
    """
    if demand.size and np.any(demand < 0):
        raise ValueError("batched demands must be non-negative")
    totals = np.zeros_like(capacity)
    np.add.at(totals, host_index, demand)

    swap_ratio, penalty, swap_io, memory_ratio = _swap_pressure_arrays(
        totals, capacity, swap_cost, swap_io_rate
    )

    demanded = totals[:, RATE_INDICES].copy()
    demanded[:, _DISK_RATE_POS] += swap_io
    available = capacity[:, RATE_INDICES]
    safe_demanded = np.where(demanded > 0, demanded, 1.0)
    share = np.where(
        (demanded <= available) | (demanded <= 0),
        1.0,
        available / safe_demanded,
    )

    got_rate = demand[:, RATE_INDICES] * share[host_index]
    return _finish_batch(
        demand, host_index, got_rate, penalty, memory_ratio, swap_ratio
    )


def segmented_water_fill(
    demands: np.ndarray,
    weights: np.ndarray,
    host_index: np.ndarray,
    capacity: np.ndarray,
) -> np.ndarray:
    """Weighted max-min allocation of one rate resource, per host segment.

    The batched twin of :func:`weighted_water_fill`: rows sharing a
    ``host_index`` value form one segment and water-fill that host's
    ``capacity`` entry. Fold order inside a segment is row order, so a
    segment reproduces the scalar function bit for bit when rows are in
    the host's insertion order.

    Parameters
    ----------
    demands / weights / host_index:
        ``(C,)`` arrays; weights must be positive wherever demand > 0.
    capacity:
        ``(H,)`` per-host capacity of this one resource.

    Returns the ``(C,)`` granted amounts.
    """
    if np.any(capacity < 0):
        raise ValueError("capacity must be non-negative")
    rows = demands.shape[0]
    hosts = capacity.shape[0]
    granted = np.zeros(rows)
    hungry = demands > 0
    if np.any(hungry & (weights <= 0)):
        raise ValueError("weights must be positive for demanding rows")
    remaining = capacity.astype(np.float64).copy()
    host_live = np.ones(hosts, dtype=bool)
    # Each pass fully satisfies at least one row per still-live host,
    # so ``rows + 1`` passes bound the loop.
    for _ in range(rows + 1):
        live = hungry & host_live[host_index] & (remaining[host_index] > 1e-12)
        if not live.any():
            break
        total_weight = np.zeros(hosts)
        np.add.at(total_weight, host_index[live], weights[live])
        safe_total = np.where(total_weight > 0, total_weight, 1.0)
        slice_ = remaining[host_index] * weights / safe_total[host_index]
        need = demands - granted
        take = np.where(live, np.minimum(slice_, need), 0.0)
        granted = granted + take
        distributed = np.zeros(hosts)
        np.add.at(distributed, host_index[live], take[live])
        remaining = remaining - distributed
        satisfied = live & (granted >= demands - 1e-12)
        had_live = np.zeros(hosts, dtype=bool)
        had_live[host_index[live]] = True
        saw_satisfied = np.zeros(hosts, dtype=bool)
        saw_satisfied[host_index[satisfied]] = True
        host_live &= ~had_live | saw_satisfied
        hungry &= ~satisfied
    return granted


def resolve_waterfill_arrays(
    demand: np.ndarray,
    host_index: np.ndarray,
    weights: np.ndarray,
    capacity: np.ndarray,
    swap_cost: np.ndarray,
    swap_io_rate: np.ndarray,
) -> BatchResolution:
    """Batched :class:`WeightedWaterFillModel` over all hosts at once.

    Shapes as in :func:`resolve_proportional_arrays`, plus ``weights``
    ``(C,)`` — the cgroup-shares weights per container row. Swap
    pressure *reduces available disk capacity* before filling (the
    scalar model's convention), and weights cannot buy a tenant out of
    the swap penalty.
    """
    if demand.size and np.any(demand < 0):
        raise ValueError("batched demands must be non-negative")
    totals = np.zeros_like(capacity)
    np.add.at(totals, host_index, demand)

    swap_ratio, penalty, swap_io, memory_ratio = _swap_pressure_arrays(
        totals, capacity, swap_cost, swap_io_rate
    )

    available = capacity[:, RATE_INDICES].copy()
    available[:, _DISK_RATE_POS] = np.maximum(
        0.0, available[:, _DISK_RATE_POS] - swap_io
    )
    got_rate = np.empty((demand.shape[0], len(RATE_INDICES)))
    for pos, column in enumerate(RATE_INDICES):
        got_rate[:, pos] = segmented_water_fill(
            demand[:, column], weights, host_index, available[:, pos]
        )
    return _finish_batch(
        demand, host_index, got_rate, penalty, memory_ratio, swap_ratio
    )


def weighted_water_fill(
    demands: Mapping[str, float],
    weights: Mapping[str, float],
    capacity: float,
) -> Dict[str, float]:
    """Weighted max-min allocation of one rate resource.

    The work-conserving behaviour of the Linux CFS scheduler with
    cgroup shares: each tenant is entitled to a weight-proportional
    slice; tenants demanding less than their slice are fully satisfied
    and their leftover is redistributed among the still-hungry ones.

    Tenants are processed in ``demands`` insertion order. The floating-
    point fold order (weight totals, distributed sums) follows that
    order too, so results are reproducible across interpreter runs and
    bit-identical to the segmented array implementation
    (:func:`segmented_water_fill`). The hungry set used to be a Python
    ``set`` of names, which made the fold follow string-hash order —
    results then varied in the last ulp with ``PYTHONHASHSEED``.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    granted = {name: 0.0 for name in demands}
    hungry = [name for name, demand in demands.items() if demand > 0]
    for name in hungry:
        if weights.get(name, 1.0) <= 0:
            raise ValueError(f"weight for {name!r} must be positive")
    remaining = capacity
    # Each pass either satisfies at least one tenant fully or ends.
    while hungry and remaining > 1e-12:
        total_weight = sum(weights.get(name, 1.0) for name in hungry)
        satisfied = set()
        distributed = 0.0
        for name in hungry:
            slice_ = remaining * weights.get(name, 1.0) / total_weight
            need = demands[name] - granted[name]
            take = min(slice_, need)
            granted[name] += take
            distributed += take
            if granted[name] >= demands[name] - 1e-12:
                satisfied.add(name)
        remaining -= distributed
        if not satisfied:
            break
        hungry = [name for name in hungry if name not in satisfied]
    return granted


@dataclass
class WeightedWaterFillModel(ContentionModel):
    """Work-conserving weighted fair sharing (CFS + cgroup shares).

    Unlike :class:`ProportionalShareModel`, a tenant demanding less
    than its fair slice is fully satisfied, and cgroup-style ``weights``
    shift the slices under saturation. Memory stays a space resource
    with the same swap penalty — crucially, *weights cannot buy a
    tenant out of swap pressure*, which is exactly the headroom limit
    that Q-Clouds-style weight boosting runs into (§8).
    """

    swap_cost: float = 3.0
    swap_io_per_overcommit_mb: float = 0.05
    _last_swap_ratio: float = field(default=1.0, repr=False)

    def resolve(
        self,
        demands: Mapping[str, ResourceVector],
        capacity: ResourceVector,
        weights: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, Allocation]:
        if not demands:
            return {}
        weights = dict(weights) if weights else {}
        for name, demand in demands.items():
            for resource, value in demand.items():
                if value < 0:
                    raise ValueError(
                        f"container {name!r} demanded negative {resource.name}: {value}"
                    )

        total = sum_vectors(demands.values())
        memory_total = total.get(Resource.MEMORY)
        memory_capacity = capacity.get(Resource.MEMORY)
        ratio, swap_penalty, swap_io = swap_pressure(
            memory_total, memory_capacity,
            self.swap_cost, self.swap_io_per_overcommit_mb,
        )
        self._last_swap_ratio = ratio

        # Per-resource weighted water-filling.
        per_resource_grants: Dict[Resource, Dict[str, float]] = {}
        for resource in RATE_RESOURCES:
            available = capacity.get(resource)
            if resource is Resource.DISK_IO:
                available = max(0.0, available - swap_io)
            per_resource_grants[resource] = weighted_water_fill(
                {name: demand.get(resource) for name, demand in demands.items()},
                weights,
                available,
            )

        memory_ratio = 1.0
        if memory_total > memory_capacity > 0:
            memory_ratio = memory_capacity / memory_total

        allocations: Dict[str, Allocation] = {}
        for name, demand in demands.items():
            granted_values: Dict[Resource, float] = {}
            progress = 1.0
            for resource in RATE_RESOURCES:
                wanted = demand.get(resource)
                got = per_resource_grants[resource][name]
                granted_values[resource] = got
                if wanted > 0:
                    progress = min(progress, got / wanted)
            granted_values[Resource.MEMORY] = demand.get(Resource.MEMORY) * memory_ratio

            tenant_swap_penalty = 1.0
            if demand.get(Resource.MEMORY) > 0:
                tenant_swap_penalty = swap_penalty
            progress *= tenant_swap_penalty

            allocations[name] = Allocation(
                granted=ResourceVector.from_mapping(granted_values),
                progress=min(1.0, max(0.0, progress)),
                swap_penalty=tenant_swap_penalty,
            )
        return allocations

    @property
    def last_swap_ratio(self) -> float:
        """Memory overcommit ratio observed in the most recent resolve."""
        return self._last_swap_ratio

    def record_swap_ratio(self, ratio: float) -> None:
        """Store an externally computed overcommit ratio.

        Seam for the batched cluster engine: it resolves contention for
        many hosts in one array pass, then writes each host's ratio
        back so ``last_swap_ratio`` (and the host snapshot built from
        it) reads identically on either path.
        """
        self._last_swap_ratio = float(ratio)
