"""Constrained placement (a Choosy-like scheduler, §2.1).

"Stay-Away is not a scheduler. It relies on dynamic reconfiguration and
can complement ... schedulers like Choosy that allows scheduling with
constraints. ... either best-effort batch applications are scheduled
with latency sensitive applications or multiple sensitive applications
are scheduled with the notion of priorities."

:class:`ConstrainedScheduler` enforces exactly that constraint while
packing workload requests onto cluster hosts: at most one sensitive
application per host (unless priorities are declared), batch
applications placed onto the least-loaded compatible host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.cluster import Cluster
from repro.sim.container import Container
from repro.sim.resources import Resource, ResourceVector
from repro.workloads.base import Application


@dataclass(frozen=True)
class PlacementRequest:
    """One workload to place.

    Attributes
    ----------
    app:
        The application instance.
    sensitive:
        Whether the container is latency-sensitive.
    priority:
        Only meaningful for sensitive requests sharing a host; higher
        is stricter. ``None`` forbids co-locating two sensitive apps.
    estimated_demand:
        Demand estimate used for bin-packing (defaults to the app's
        demand at tick zero).
    start_tick:
        When the container begins executing.
    """

    app: Application
    sensitive: bool = False
    priority: Optional[int] = None
    estimated_demand: Optional[ResourceVector] = None
    start_tick: int = 0


@dataclass(frozen=True)
class Placement:
    """The scheduler's decision for one request."""

    container: str
    host: str
    sensitive: bool


class SchedulingError(RuntimeError):
    """No host satisfies a request's constraints."""


class ConstrainedScheduler:
    """Greedy least-loaded placement under the paper's co-location rule.

    Parameters
    ----------
    cluster:
        The cluster to place onto.
    cpu_headroom:
        Fraction of a host's CPU the *estimated* placements may fill;
        Stay-Away handles the rest at runtime, so mild overcommit is
        allowed by default.
    """

    def __init__(self, cluster: Cluster, cpu_headroom: float = 1.25) -> None:
        if cpu_headroom <= 0:
            raise ValueError("cpu_headroom must be positive")
        self.cluster = cluster
        self.cpu_headroom = cpu_headroom
        self.placements: List[Placement] = []
        self._estimated_cpu: Dict[str, float] = {
            name: 0.0 for name in cluster.hosts
        }
        self._sensitive_on: Dict[str, List[Optional[int]]] = {
            name: [] for name in cluster.hosts
        }

    def _estimate(self, request: PlacementRequest) -> ResourceVector:
        if request.estimated_demand is not None:
            return request.estimated_demand
        # Pre-admission estimate: the app has never run, so this first
        # demand() draw is the profiling read; callers that care about
        # pairing pass estimated_demand instead.
        return request.app.demand(self.cluster.clock)  # sacheck: disable=SA201 -- pre-admission profiling read

    def _compatible(self, host_name: str, request: PlacementRequest) -> bool:
        sensitive_priorities = self._sensitive_on[host_name]
        if request.sensitive:
            if sensitive_priorities and (
                request.priority is None
                or any(priority is None for priority in sensitive_priorities)
                or request.priority in sensitive_priorities
            ):
                # Two sensitive apps may share a host only under a
                # total priority order (§2.1).
                return False
        capacity = self.cluster.hosts[host_name].capacity.get(Resource.CPU)
        estimated = self._estimated_cpu[host_name] + self._estimate(request).get(
            Resource.CPU
        )
        return estimated <= capacity * self.cpu_headroom

    def place(self, request: PlacementRequest) -> Placement:
        """Place one request; raises :class:`SchedulingError` if impossible."""
        candidates = [
            name for name in self.cluster.hosts if self._compatible(name, request)
        ]
        if not candidates:
            raise SchedulingError(
                f"no host satisfies constraints for {request.app.name!r}"
            )
        # Least estimated CPU load first.
        chosen = min(candidates, key=lambda name: self._estimated_cpu[name])
        host = self.cluster.hosts[chosen]
        container = Container(
            name=request.app.name,
            app=request.app,
            sensitive=request.sensitive,
            start_tick=request.start_tick,
        )
        host.add_container(container)
        self._estimated_cpu[chosen] += self._estimate(request).get(Resource.CPU)
        if request.sensitive:
            self._sensitive_on[chosen].append(request.priority)
        placement = Placement(
            container=request.app.name, host=chosen, sensitive=request.sensitive
        )
        self.placements.append(placement)
        return placement

    def place_all(self, requests: List[PlacementRequest]) -> List[Placement]:
        """Place sensitive requests first (they constrain hosts), then batch."""
        ordered = sorted(requests, key=lambda r: not r.sensitive)
        return [self.place(request) for request in ordered]
