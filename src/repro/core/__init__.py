"""Stay-Away: the paper's mechanism (Mapping -> Prediction -> Action).

:class:`~repro.core.controller.StayAway` is the middleware that runs on
the host each period:

1. **Mapping** (:mod:`repro.core.mapping`) — normalize the measurement
   vector, deduplicate against known representatives and place it on
   the 2-D MDS map; label it a violation-state when the sensitive
   application reported a QoS violation this period.
2. **Prediction** (:mod:`repro.core.prediction`) — learn per-execution-
   mode step distributions, sample candidate next states, and vote them
   against the violation-ranges kept by
   :class:`~repro.core.state_space.StateSpace`.
3. **Action** (:mod:`repro.core.action`) — pause the batch containers
   (SIGSTOP) when a transition toward violation is predicted or
   observed; resume (SIGCONT) on a learned phase-change threshold beta,
   with a random probe against starvation.

Templates (:mod:`repro.core.template`) let a map captured for a
repeatable sensitive application seed future runs with different batch
co-locations (§6).
"""

from repro.core.action import ThrottleManager
from repro.core.checkpoint import (
    CheckpointError,
    ControllerCheckpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.core.config import StayAwayConfig
from repro.core.controller import StayAway
from repro.core.events import Event, EventKind, EventLog
from repro.core.mapping import MappedSample, MappingPipeline
from repro.core.prediction import Prediction, Predictor
from repro.core.priorities import PrioritizedApp, PrioritizedStayAway
from repro.core.resilience import ControllerHealth, DegradedModeMachine
from repro.core.state_space import StateLabel, StateSpace, violation_range_radius
from repro.core.template import MapTemplate

__all__ = [
    "CheckpointError",
    "ControllerCheckpoint",
    "ControllerHealth",
    "DegradedModeMachine",
    "Event",
    "EventKind",
    "EventLog",
    "MapTemplate",
    "MappedSample",
    "MappingPipeline",
    "Prediction",
    "Predictor",
    "PrioritizedApp",
    "PrioritizedStayAway",
    "StateLabel",
    "StateSpace",
    "StayAway",
    "StayAwayConfig",
    "ThrottleManager",
    "restore_checkpoint",
    "save_checkpoint",
    "violation_range_radius",
]
