"""Stay-Away configuration.

Defaults follow the paper where it gives numbers (beta starts at 0.01,
5 uncertainty samples, §3.2.3/§3.3) and otherwise use values calibrated
on the reproduction experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class StayAwayConfig:
    """All tunables of the Stay-Away runtime.

    Parameters
    ----------
    period:
        Control period in ticks: mapping, prediction and action all run
        every ``period`` ticks (§3: "runs on each host periodically").
    n_samples:
        Candidate next states drawn per prediction. The paper reports
        that 5 samples already reach >90% accuracy.
    majority:
        Fraction of candidates that must land in a violation-range to
        trigger throttling ("whenever a majority of the generated
        sample set fall within a violation range").
    min_steps_for_prediction:
        Steps a mode's trajectory model needs before its pdfs count as
        a usable first approximation.
    dedup_epsilon:
        Merge radius (normalized metric space) of the representative-
        sample optimization (§4).
    refit_interval:
        Run a full SMACOF refit after this many *new* representatives;
        between refits new states are placed incrementally.
    smacof_max_iter:
        Iteration cap per SMACOF refit.
    beta_initial / beta_increment:
        The resume threshold beta: "Initially beta is set to 0.01 ...
        the system increments beta by a small amount" on premature
        resumes (§3.3).
    resume_grace:
        Periods after a resume within which a new throttle counts as a
        premature resume (and bumps beta).
    starvation_patience:
        Throttled periods without a phase change before random probe
        resumes are considered (§3.3's anti-starvation factor).
    probe_probability:
        Per-period probability of a probe resume once patience ran out.
    trajectory_window / histogram_bins:
        Step-feature retention and histogram resolution per mode model.
    aggregate_batch:
        Treat all batch containers as one logical VM (§5).
    act_on_violation:
        Also throttle reactively when a violation is actually observed
        (the paper's behaviour in the early learning phase).
    enabled:
        When False the controller maps and predicts but never acts —
        used for the template-validation experiment (§7.3).
    per_mode_models:
        Keep one trajectory model per execution mode (the paper's
        design, §3.2.3). False collapses everything into a single
        global model — the ablation showing why per-mode matters.
    radius_law:
        "rayleigh" (the paper's §3.2.2 law) or "fixed" (ablation:
        constant ``fixed_radius`` discs around violation-states).
    fixed_radius:
        Disc radius used when ``radius_law == "fixed"``.
    seed:
        RNG seed for candidate sampling and probe decisions.
    sensor_guard:
        Validate measurement vectors (NaN/Inf, negative, implausible
        spikes) and impute rejects by last-good-value hold before they
        reach the mapping pipeline.
    guard_staleness_budget:
        Consecutive rejected samples bridged by imputation before the
        period counts as a monitoring gap.
    guard_freeze_patience:
        Identical consecutive vectors tolerated before the channel is
        declared frozen (0 disables; flat simulated workloads repeat
        vectors legitimately).
    guard_plausibility_factor:
        Readings above ``factor x host capacity`` for their metric are
        rejected as sensor corruption rather than load.
    degraded_mode:
        Run the health state machine: fall back to reactive-only
        throttling while monitoring or QoS is silent past its deadline,
        resynchronize before trusting predictions again.
    monitoring_deadline / qos_deadline:
        Silence deadlines (ticks) for the two input channels.
    resync_periods:
        Consecutive healthy periods required to re-enter predictive
        mode after a degradation.
    degraded_pause_batch:
        Preemptively pause all throttle targets when entering degraded
        mode (flying blind: protect the sensitive app first).
    reconcile_actions:
        Diff the desired pause-set against actual container states each
        period and repair drift (external SIGCONT/kills racing the
        controller), with capped exponential retry backoff.
    action_backoff_cap:
        Maximum retry backoff in periods (exponential, capped).
    action_escalation_threshold:
        Consecutive failed repair attempts on one container before an
        ACTION_ESCALATION event is recorded.
    telemetry:
        Record self-telemetry: per-period trace spans and ``*_seconds``
        stage histograms around Mapping -> Prediction -> Action (see
        :mod:`repro.telemetry`). Counters and gauges stay live either
        way; disabling only removes the clock reads and span records
        (the delta measured by ``benchmarks/bench_perf_overhead.py``).
    telemetry_max_spans:
        Retention cap for finished trace spans per controller.
    fault_containment:
        Wrap each controller stage (guard, map, predict, act) in an
        exception firewall with a per-stage circuit breaker: a stage
        failure degrades that period instead of crashing the run. Off,
        a stage exception unwinds ``StayAway.on_tick`` — the behaviour
        ``benchmarks/bench_robustness_chaos.py`` compares against.
    breaker_error_budget:
        Stage failures within ``breaker_window`` periods before the
        stage's circuit breaker trips OPEN.
    breaker_window:
        Sliding error-budget window, in periods.
    breaker_cooldown:
        Periods an OPEN breaker holds before letting probes through
        (HALF_OPEN).
    breaker_probes:
        Consecutive successful probes required to close a HALF_OPEN
        breaker; one probe failure re-opens it for a fresh cooldown.
    model_watchdog:
        Check learned-state invariants every period (finite
        coordinates/representatives, sane violation-range geometry,
        finite step histograms, positive finite beta, stress
        non-divergence) and heal violations by geometry rebuild,
        representative quarantine or rollback to the last-known-good
        snapshot.
    watchdog_quarantine:
        Allow the watchdog to remove (quarantine) individual poisoned
        representatives; off, it always falls back to rollback.
    snapshot_interval:
        Periods between automatic last-known-good model snapshots
        (taken only after a clean watchdog check).
    fleet_score_period:
        Ticks between fleet-coordinator scoring/placement rounds (the
        coordinator's own control period; per-host controllers still
        run every ``period`` ticks).
    fleet_hot_score:
        Interference score at or above which a host counts *hot* and
        becomes an eviction source.
    fleet_cold_score:
        Interference score at or below which a host counts *cold* and
        may receive migrated or newly admitted work. Must be strictly
        below ``fleet_hot_score`` (the gap is the hysteresis band that
        stops placement flapping).
    fleet_score_smoothing:
        EWMA weight of the newest observation in the per-host QoS
        history term of the interference score.
    fleet_migration_timeout:
        Ticks a single migration attempt may stay in COPY before the
        supervisor cancels it and retries or rolls back.
    fleet_migration_retries:
        Re-attempts after a failed/bounced/timed-out migration attempt
        before the supervisor rolls back to the source for good.
    fleet_migration_backoff:
        Base backoff in ticks between migration attempts (doubles per
        attempt).
    fleet_migration_cooldown:
        Ticks a host pair stays off-limits for new evictions after a
        migration involving it committed or rolled back.
    fleet_max_concurrent_migrations:
        Cap on simultaneously supervised in-flight migrations across
        the fleet.
    fleet_cell_mode:
        How each host cell feeds its controller: ``"direct"`` hands it
        the in-process snapshot; ``"stream"`` routes every tick
        through the wire-record service seam
        (:class:`~repro.fleet.coordinator.StreamHostCell`) with
        acknowledged actuation — decisions then lag the host by
        ``stream_watermark`` ticks.
    detector_mode:
        Violation-detection source for the Stay-Away controller:
        ``"geometry"`` (the paper's MDS trajectory predictor alone),
        or ``"hybrid"`` (the GMM threshold verdict votes alongside the
        trajectory predictor in the predict stage; requires an
        ``aux_detector`` — ``experiments.runner`` wires a
        :class:`~repro.baselines.gmm_threshold.GmmThresholdModel`).
        The pure threshold detector runs as its own policy
        (``policy="gmm"``), not through the controller.
    gmm_bins:
        Utilization bins for the GMM threshold learner: the sensitive
        app's CPU utilization in [0, 1] selects one of these bins and
        each bin learns its own per-metric fences.
    gmm_max_components:
        Mixture components tried per fit (1..n, lowest BIC wins).
    gmm_min_samples:
        Samples a (metric, bin) buffer needs before its first fit.
    gmm_refit_interval:
        New samples per (metric, bin) between refits.
    gmm_window:
        Rolling sample-buffer cap per (metric, bin).
    gmm_span:
        Fence span in standard deviations (gmmfense's ``mean + span *
        std`` bound for unimodal fits / normal-component boundary for
        multimodal ones).
    gmm_quorum:
        Metrics that must exceed their fence in the same period for a
        contention verdict.
    gmm_metrics:
        Contention-correlated metric kinds judged against fences
        (non-sensitive measurement columns; subset of the monitored
        resource names).
    gmm_cooldown:
        Clear-verdict periods before the standalone GMM detector
        resumes paused batch containers.
    gmm_hybrid_rule:
        How the hybrid combines the geometry and GMM votes: ``"or"``
        (either alarms — the conservative default) or ``"and"`` (both
        must agree).
    engine_mode:
        Simulation stepping path for cluster-backed runs: ``"scalar"``
        steps each host through its own contention model (the
        reference), ``"vector"`` batches all up hosts into one
        struct-of-arrays contention resolve per tick (bit-identical
        snapshots; see docs/SIMULATION.md for the equivalence
        contract).
    engine_shards:
        Worker processes for the shard-per-core batch engine
        (:class:`repro.sim.batch.ShardedBatchEngine`). 0 disables
        sharding (single-process); values >= 1 partition hosts
        round-robin over that many OS processes. Only pure
        :class:`~repro.sim.batch.BatchScenario` runs shard — the
        object cluster ignores this knob.
    stream_watermark:
        Ticks of reorder slack in the streaming service's
        :class:`~repro.service.assembler.StreamAssembler`: tick ``t``
        closes once a record for ``t + stream_watermark`` has been
        seen. 0 closes each tick as soon as any record for it arrives.
    stream_retire_after:
        Consecutive non-gap closes a metric cell may miss before the
        assembler retires it from the expected set (its container is
        presumed to have left the host, e.g. fleet migration) instead
        of imputing its last value forever. 0 disables retirement.
    stream_stall_deadline:
        Ticks the service waits without the stream's newest data tick
        advancing before forcing the controller's
        :class:`~repro.core.resilience.DegradedModeMachine` into
        DEGRADED (reason ``stream-stall``).
    stream_retry_backoff:
        Base backoff in ticks between source reconnect attempts after
        a :class:`~repro.service.stream.StreamError`; doubles per
        consecutive failure up to ``stream_retry_cap``.
    stream_retry_cap:
        Upper bound on the reconnect backoff, in ticks.
    stream_retry_jitter:
        Uniform jitter fraction applied to each reconnect backoff
        (0.2 = up to ±20%), decorrelating reconnect storms across
        services; drawn from the service's seeded RNG so runs stay
        reproducible.
    actuator_ack_timeout:
        Ticks the :class:`~repro.service.actuator.AckTracker` waits
        for a command acknowledgement before redelivering.
    actuator_max_retries:
        Redelivery budget per actuator command; one more failed
        attempt dead-letters it (reconciled through the
        ``ACTION_ESCALATION`` event path).
    actuator_retry_backoff:
        Base backoff in ticks added between actuator redeliveries
        (doubles per attempt).
    """

    period: int = 1
    n_samples: int = 5
    majority: float = 0.5
    min_steps_for_prediction: int = 3
    dedup_epsilon: float = 0.03
    refit_interval: int = 40
    smacof_max_iter: int = 40
    beta_initial: float = 0.01
    beta_increment: float = 0.005
    resume_grace: int = 5
    starvation_patience: int = 20
    probe_probability: float = 0.15
    trajectory_window: int = 400
    histogram_bins: int = 16
    aggregate_batch: bool = True
    act_on_violation: bool = True
    enabled: bool = True
    per_mode_models: bool = True
    radius_law: str = "rayleigh"
    fixed_radius: float = 0.05
    seed: int = 0
    sensor_guard: bool = True
    guard_staleness_budget: int = 8
    guard_freeze_patience: int = 0
    guard_plausibility_factor: float = 4.0
    degraded_mode: bool = True
    monitoring_deadline: int = 10
    qos_deadline: int = 10
    resync_periods: int = 3
    degraded_pause_batch: bool = False
    reconcile_actions: bool = True
    action_backoff_cap: int = 8
    action_escalation_threshold: int = 3
    telemetry: bool = True
    telemetry_max_spans: int = 20_000
    fault_containment: bool = True
    breaker_error_budget: int = 3
    breaker_window: int = 20
    breaker_cooldown: int = 15
    breaker_probes: int = 2
    model_watchdog: bool = True
    watchdog_quarantine: bool = True
    snapshot_interval: int = 50
    fleet_score_period: int = 5
    fleet_hot_score: float = 0.45
    fleet_cold_score: float = 0.25
    fleet_score_smoothing: float = 0.2
    fleet_migration_timeout: int = 40
    fleet_migration_retries: int = 2
    fleet_migration_backoff: int = 5
    fleet_migration_cooldown: int = 25
    fleet_max_concurrent_migrations: int = 4
    fleet_cell_mode: str = "direct"
    detector_mode: str = "geometry"
    gmm_bins: int = 5
    gmm_max_components: int = 3
    gmm_min_samples: int = 40
    gmm_refit_interval: int = 20
    gmm_window: int = 400
    gmm_span: float = 3.0
    gmm_quorum: int = 1
    gmm_metrics: tuple = ("cpu", "memory_bw")
    gmm_cooldown: int = 10
    gmm_hybrid_rule: str = "or"
    engine_mode: str = "scalar"
    engine_shards: int = 0
    stream_watermark: int = 2
    stream_retire_after: int = 8
    stream_stall_deadline: int = 10
    stream_retry_backoff: int = 1
    stream_retry_cap: int = 16
    stream_retry_jitter: float = 0.2
    actuator_ack_timeout: int = 2
    actuator_max_retries: int = 3
    actuator_retry_backoff: int = 1

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if self.n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if self.min_steps_for_prediction < 1:
            raise ValueError("min_steps_for_prediction must be >= 1")
        if not 0.0 < self.majority <= 1.0:
            raise ValueError("majority must be in (0, 1]")
        threshold = math.ceil(self.majority * self.n_samples)
        if not 1 <= threshold <= self.n_samples:
            raise ValueError(
                f"majority={self.majority} with n_samples={self.n_samples} "
                f"yields an unreachable vote threshold {threshold}"
            )
        if self.dedup_epsilon < 0:
            raise ValueError("dedup_epsilon must be non-negative")
        if self.beta_initial <= 0:
            raise ValueError("beta_initial must be positive")
        if self.beta_increment < 0:
            raise ValueError("beta_increment must be non-negative")
        if not 0.0 <= self.probe_probability <= 1.0:
            raise ValueError("probe_probability must be in [0, 1]")
        if self.refit_interval < 1:
            raise ValueError("refit_interval must be >= 1")
        if self.smacof_max_iter < 1:
            raise ValueError("smacof_max_iter must be >= 1")
        if self.resume_grace < 0:
            raise ValueError("resume_grace must be non-negative")
        if self.starvation_patience < 1:
            raise ValueError("starvation_patience must be >= 1")
        if self.trajectory_window < 2:
            raise ValueError("trajectory_window must be >= 2 (need steps)")
        if self.histogram_bins < 1:
            raise ValueError("histogram_bins must be >= 1")
        if self.telemetry_max_spans < 0:
            raise ValueError("telemetry_max_spans must be non-negative")
        if self.radius_law not in ("rayleigh", "fixed"):
            raise ValueError(
                f"radius_law must be 'rayleigh' or 'fixed', got {self.radius_law!r}"
            )
        if self.fixed_radius < 0:
            raise ValueError("fixed_radius must be non-negative")
        if self.guard_staleness_budget < 0:
            raise ValueError("guard_staleness_budget must be non-negative")
        if self.guard_freeze_patience < 0:
            raise ValueError("guard_freeze_patience must be non-negative")
        if self.guard_plausibility_factor <= 0:
            raise ValueError("guard_plausibility_factor must be positive")
        if self.monitoring_deadline < 1:
            raise ValueError("monitoring_deadline must be >= 1")
        if self.qos_deadline < 1:
            raise ValueError("qos_deadline must be >= 1")
        if self.resync_periods < 1:
            raise ValueError("resync_periods must be >= 1")
        if self.action_backoff_cap < 1:
            raise ValueError("action_backoff_cap must be >= 1")
        if self.action_escalation_threshold < 1:
            raise ValueError("action_escalation_threshold must be >= 1")
        if self.breaker_error_budget < 1:
            raise ValueError("breaker_error_budget must be >= 1")
        if self.breaker_window < 1:
            raise ValueError("breaker_window must be >= 1")
        if self.breaker_cooldown < 1:
            raise ValueError("breaker_cooldown must be >= 1")
        if self.breaker_probes < 1:
            raise ValueError("breaker_probes must be >= 1")
        if self.snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        if self.fleet_score_period < 1:
            raise ValueError("fleet_score_period must be >= 1")
        if not 0.0 < self.fleet_hot_score <= 1.0:
            raise ValueError("fleet_hot_score must be in (0, 1]")
        if not 0.0 <= self.fleet_cold_score < self.fleet_hot_score:
            raise ValueError(
                "fleet_cold_score must be in [0, fleet_hot_score); the gap "
                "is the placement hysteresis band"
            )
        if not 0.0 < self.fleet_score_smoothing <= 1.0:
            raise ValueError("fleet_score_smoothing must be in (0, 1]")
        if self.fleet_migration_timeout < 1:
            raise ValueError("fleet_migration_timeout must be >= 1")
        if self.fleet_migration_retries < 0:
            raise ValueError("fleet_migration_retries must be non-negative")
        if self.fleet_migration_backoff < 1:
            raise ValueError("fleet_migration_backoff must be >= 1")
        if self.fleet_migration_cooldown < 0:
            raise ValueError("fleet_migration_cooldown must be non-negative")
        if self.fleet_max_concurrent_migrations < 1:
            raise ValueError("fleet_max_concurrent_migrations must be >= 1")
        if self.fleet_cell_mode not in ("direct", "stream"):
            raise ValueError(
                "fleet_cell_mode must be 'direct' or 'stream', "
                f"got {self.fleet_cell_mode!r}"
            )
        if self.detector_mode not in ("geometry", "gmm", "hybrid"):
            raise ValueError(
                "detector_mode must be 'geometry', 'gmm' or 'hybrid', "
                f"got {self.detector_mode!r}"
            )
        if self.gmm_bins < 1:
            raise ValueError("gmm_bins must be >= 1")
        if self.gmm_max_components < 1:
            raise ValueError("gmm_max_components must be >= 1")
        if self.gmm_min_samples < 2:
            raise ValueError("gmm_min_samples must be >= 2")
        if self.gmm_refit_interval < 1:
            raise ValueError("gmm_refit_interval must be >= 1")
        if self.gmm_window < self.gmm_min_samples:
            raise ValueError("gmm_window must be >= gmm_min_samples")
        if not self.gmm_metrics:
            raise ValueError("gmm_metrics must name at least one metric kind")
        allowed_metrics = {"cpu", "memory", "memory_bw", "disk_io", "network"}
        unknown = [m for m in self.gmm_metrics if m not in allowed_metrics]
        if unknown:
            raise ValueError(
                f"unknown gmm_metrics {unknown}; allowed: {sorted(allowed_metrics)}"
            )
        if not 1 <= self.gmm_quorum <= len(self.gmm_metrics):
            raise ValueError(
                f"gmm_quorum must be in [1, {len(self.gmm_metrics)}] "
                f"(one vote per configured metric), got {self.gmm_quorum}"
            )
        if self.gmm_span < 0:
            raise ValueError("gmm_span must be non-negative")
        if self.gmm_cooldown < 1:
            raise ValueError("gmm_cooldown must be >= 1")
        if self.gmm_hybrid_rule not in ("or", "and"):
            raise ValueError(
                f"gmm_hybrid_rule must be 'or' or 'and', got {self.gmm_hybrid_rule!r}"
            )
        if self.engine_mode not in ("scalar", "vector"):
            raise ValueError(
                f"engine_mode must be 'scalar' or 'vector', got {self.engine_mode!r}"
            )
        if self.engine_shards < 0:
            raise ValueError("engine_shards must be non-negative")
        if self.stream_watermark < 0:
            raise ValueError("stream_watermark must be non-negative")
        if self.stream_retire_after < 0:
            raise ValueError("stream_retire_after must be non-negative")
        if self.stream_stall_deadline < 1:
            raise ValueError("stream_stall_deadline must be >= 1")
        if self.stream_retry_backoff < 1:
            raise ValueError("stream_retry_backoff must be >= 1")
        if self.stream_retry_cap < self.stream_retry_backoff:
            raise ValueError("stream_retry_cap must be >= stream_retry_backoff")
        if not 0.0 <= self.stream_retry_jitter <= 1.0:
            raise ValueError("stream_retry_jitter must be in [0, 1]")
        if self.actuator_ack_timeout < 1:
            raise ValueError("actuator_ack_timeout must be >= 1")
        if self.actuator_max_retries < 0:
            raise ValueError("actuator_max_retries must be non-negative")
        if self.actuator_retry_backoff < 1:
            raise ValueError("actuator_retry_backoff must be >= 1")

    def vote_threshold(self) -> int:
        """Votes needed to flag an impending violation.

        ``ceil(majority * n_samples)``, compared with ``>=`` by the
        predictor. The previous strict ``votes > majority * n_samples``
        test made unanimity (``majority = 1.0``) unsatisfiable: with 5
        samples it demanded more than 5 votes. The ceiling keeps the
        paper's "majority of the generated sample set" reading (0.5
        with 5 samples still needs 3 votes) while every configured
        majority, including 1.0, stays reachable.
        """
        return max(1, math.ceil(self.majority * self.n_samples))
