"""Stay-Away configuration.

Defaults follow the paper where it gives numbers (beta starts at 0.01,
5 uncertainty samples, §3.2.3/§3.3) and otherwise use values calibrated
on the reproduction experiments.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StayAwayConfig:
    """All tunables of the Stay-Away runtime.

    Parameters
    ----------
    period:
        Control period in ticks: mapping, prediction and action all run
        every ``period`` ticks (§3: "runs on each host periodically").
    n_samples:
        Candidate next states drawn per prediction. The paper reports
        that 5 samples already reach >90% accuracy.
    majority:
        Fraction of candidates that must land in a violation-range to
        trigger throttling ("whenever a majority of the generated
        sample set fall within a violation range").
    min_steps_for_prediction:
        Steps a mode's trajectory model needs before its pdfs count as
        a usable first approximation.
    dedup_epsilon:
        Merge radius (normalized metric space) of the representative-
        sample optimization (§4).
    refit_interval:
        Run a full SMACOF refit after this many *new* representatives;
        between refits new states are placed incrementally.
    smacof_max_iter:
        Iteration cap per SMACOF refit.
    beta_initial / beta_increment:
        The resume threshold beta: "Initially beta is set to 0.01 ...
        the system increments beta by a small amount" on premature
        resumes (§3.3).
    resume_grace:
        Periods after a resume within which a new throttle counts as a
        premature resume (and bumps beta).
    starvation_patience:
        Throttled periods without a phase change before random probe
        resumes are considered (§3.3's anti-starvation factor).
    probe_probability:
        Per-period probability of a probe resume once patience ran out.
    trajectory_window / histogram_bins:
        Step-feature retention and histogram resolution per mode model.
    aggregate_batch:
        Treat all batch containers as one logical VM (§5).
    act_on_violation:
        Also throttle reactively when a violation is actually observed
        (the paper's behaviour in the early learning phase).
    enabled:
        When False the controller maps and predicts but never acts —
        used for the template-validation experiment (§7.3).
    per_mode_models:
        Keep one trajectory model per execution mode (the paper's
        design, §3.2.3). False collapses everything into a single
        global model — the ablation showing why per-mode matters.
    radius_law:
        "rayleigh" (the paper's §3.2.2 law) or "fixed" (ablation:
        constant ``fixed_radius`` discs around violation-states).
    fixed_radius:
        Disc radius used when ``radius_law == "fixed"``.
    seed:
        RNG seed for candidate sampling and probe decisions.
    """

    period: int = 1
    n_samples: int = 5
    majority: float = 0.5
    min_steps_for_prediction: int = 3
    dedup_epsilon: float = 0.03
    refit_interval: int = 40
    smacof_max_iter: int = 40
    beta_initial: float = 0.01
    beta_increment: float = 0.005
    resume_grace: int = 5
    starvation_patience: int = 20
    probe_probability: float = 0.15
    trajectory_window: int = 400
    histogram_bins: int = 16
    aggregate_batch: bool = True
    act_on_violation: bool = True
    enabled: bool = True
    per_mode_models: bool = True
    radius_law: str = "rayleigh"
    fixed_radius: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if self.n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if not 0.0 < self.majority <= 1.0:
            raise ValueError("majority must be in (0, 1]")
        if self.dedup_epsilon < 0:
            raise ValueError("dedup_epsilon must be non-negative")
        if self.beta_initial <= 0:
            raise ValueError("beta_initial must be positive")
        if self.beta_increment < 0:
            raise ValueError("beta_increment must be non-negative")
        if not 0.0 <= self.probe_probability <= 1.0:
            raise ValueError("probe_probability must be in [0, 1]")
        if self.refit_interval < 1:
            raise ValueError("refit_interval must be >= 1")
        if self.radius_law not in ("rayleigh", "fixed"):
            raise ValueError(
                f"radius_law must be 'rayleigh' or 'fixed', got {self.radius_law!r}"
            )
        if self.fixed_radius < 0:
            raise ValueError("fixed_radius must be non-negative")
