"""Model-health watchdog: learned-state invariants, quarantine, rollback.

The exception firewall and circuit breakers (:mod:`repro.core.breakers`)
contain *loud* stage failures; this module contains the silent ones. A
NaN that escapes SMACOF, a degenerate geometry rebuild or a poisoned
representative does not raise — it quietly corrupts the learned model,
and every prediction made over it afterwards is garbage. Production
interference managers treat the controller's own model as a fallible
component; the reproduction does the same:

* every period the watchdog checks **learned-state invariants**: finite
  2-D coordinates and representative vectors, index-aligned
  labels/coords/representatives, finite non-negative violation-range
  radii and scale, finite step-histogram samples, a positive finite
  beta, and normalized stress that neither diverges nor goes
  non-finite;
* on violation it **heals** with the least destructive repair that
  fits: rebuild the violation geometry when only the materialized cache
  is poisoned, **quarantine** the offending representatives when
  individual rows went bad, **roll back** the state space and
  trajectory models to the last-known-good snapshot for structural or
  model-wide damage, and as a last resort hard-reset the learned state
  and relearn;
* after every clean check it refreshes the **last-known-good snapshot**
  on the configured cadence (``StayAwayConfig.snapshot_interval``) via
  :class:`~repro.core.checkpoint.ControllerCheckpoint`.

Quarantines, rollbacks and snapshot refreshes are recorded in the
:class:`~repro.core.events.EventLog` and counted in the telemetry
registry (surfaced under ``summary()["telemetry"]["containment"]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.checkpoint import CheckpointError, ControllerCheckpoint
from repro.core.config import StayAwayConfig
from repro.core.events import EventKind, EventLog
from repro.trajectory.modes import ExecutionMode

if TYPE_CHECKING:
    from repro.core.controller import StayAway

#: Stress above this (on a map of >= MIN_STATES_FOR_STRESS states)
#: means the embedding degenerated — a healthy SMACOF fit sits far
#: below it.
STRESS_DIVERGENCE = 0.95
MIN_STATES_FOR_STRESS = 10

#: Coordinates/representatives live in a normalized metric space with
#: magnitudes of order 1; anything beyond this is corruption, not
#: learning. Checked per-row (ungated) so garbage cannot slip into a
#: last-known-good snapshot while size-gated checks are still off.
MAGNITUDE_LIMIT = 1e6


@dataclass(frozen=True)
class HealthIssue:
    """One learned-state invariant violation."""

    check: str
    detail: str


@dataclass
class HealthReport:
    """Outcome of one watchdog inspection."""

    tick: int
    issues: List[HealthIssue] = field(default_factory=list)
    #: State indices whose learned rows (coords/representatives) are bad.
    bad_states: List[int] = field(default_factory=list)
    #: Execution modes whose step histograms hold non-finite samples.
    bad_modes: List[ExecutionMode] = field(default_factory=list)
    #: Structural damage (length mismatches) that per-row quarantine
    #: cannot repair.
    structural: bool = False
    #: Poisoning confined to the materialized geometry cache while the
    #: underlying coords/labels are clean.
    cache_poisoned: bool = False
    #: Beta degenerated (non-finite or non-positive).
    beta_bad: bool = False

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.issues


class ModelHealthWatchdog:
    """Per-period learned-state invariant checks with tiered healing.

    Parameters
    ----------
    config:
        The controller's :class:`~repro.core.config.StayAwayConfig`
        (quarantine toggle, snapshot cadence, beta reset value).
    events:
        Event log receiving quarantine/rollback/snapshot records.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` for the
        ``containment.*`` counters.
    """

    def __init__(
        self, config: StayAwayConfig, events: EventLog, telemetry=None
    ) -> None:
        self.config = config
        self.events = events
        self.last_good: Optional[ControllerCheckpoint] = None
        self.last_snapshot_tick: Optional[int] = None
        self.checks = 0
        self.violations = 0
        self.quarantines = 0
        self.quarantined_states = 0
        self.rollbacks = 0
        self.geometry_repairs = 0
        self.resets = 0
        self.beta_resets = 0
        self._counters = None
        if telemetry is not None:
            self._counters = {
                name: telemetry.counter(f"containment.{name}", help=help_text)
                for name, help_text in (
                    ("watchdog_checks", "model-health inspections run"),
                    ("watchdog_violations", "inspections that found a breach"),
                    ("quarantines", "poisoned representatives quarantined"),
                    ("rollbacks", "model rollbacks to last-known-good"),
                    ("geometry_repairs", "poisoned geometry caches rebuilt"),
                    ("model_resets", "hard resets of the learned state"),
                )
            }

    def _count(self, name: str, amount: int = 1) -> None:
        if self._counters is not None:
            self._counters[name].inc(amount)

    # -- inspection --------------------------------------------------------
    def inspect(self, tick: int, controller: "StayAway") -> HealthReport:
        """Check every learned-state invariant; never raises."""
        report = HealthReport(tick=tick)
        space = controller.state_space
        self.checks += 1
        self._count("watchdog_checks")

        # 1. Structural consistency: labels, coords and representatives
        #    must stay index-aligned.
        n_labels = len(space.labels)
        n_coords = int(space.coords.shape[0])
        n_reps = len(space.representatives)
        if not (n_labels == n_coords == n_reps):
            report.structural = True
            report.issues.append(
                HealthIssue(
                    "consistency",
                    f"labels={n_labels} coords={n_coords} reps={n_reps}",
                )
            )

        # 2. Per-row sanity of the learned map: finite and of plausible
        #    magnitude (both live in normalized spaces of order-1
        #    values; 1e9 is corruption, not learning).
        if not report.structural and n_coords:
            bad = set()
            coords_ok = np.isfinite(space.coords).all(axis=1) & (
                np.abs(np.nan_to_num(space.coords)) <= MAGNITUDE_LIMIT
            ).all(axis=1)
            bad.update(int(i) for i in np.nonzero(~coords_ok)[0])
            points = space.representatives.points
            if points.size:
                reps_ok = np.isfinite(points).all(axis=1) & (
                    np.abs(np.nan_to_num(points)) <= MAGNITUDE_LIMIT
                ).all(axis=1)
                bad.update(int(i) for i in np.nonzero(~reps_ok)[0])
            if bad:
                report.bad_states = sorted(bad)
                report.issues.append(
                    HealthIssue(
                        "finite-rows",
                        f"{len(bad)} state row(s) non-finite: "
                        f"{report.bad_states[:8]}",
                    )
                )

        # 3. Materialized violation geometry: radii non-negative and
        #    finite, scale and centers finite. Only the *cached* object
        #    is checked — rebuilding here would mask in-place poisoning.
        cached = space._geometry
        if cached is not None:
            geometry_bad = (
                not np.isfinite(cached.scale)
                or (cached.radii.size and not np.isfinite(cached.radii).all())
                or bool(np.any(cached.radii < 0))
                or (cached.centers.size and not np.isfinite(cached.centers).all())
            )
            if geometry_bad:
                report.issues.append(
                    HealthIssue("geometry", "cached violation geometry poisoned")
                )
                if not report.bad_states and not report.structural:
                    report.cache_poisoned = True

        # 4. Trajectory models: step histograms must stay finite.
        for mode, model in controller.predictor.modes.models.items():
            samples = list(model.distances.samples) + list(model.angles.samples)
            last = model._last_point
            finite = all(np.isfinite(v) for v in samples) and (
                last is None or bool(np.isfinite(last).all())
            )
            if not finite:
                report.bad_modes.append(mode)
                report.issues.append(
                    HealthIssue("histograms", f"{mode.value} model non-finite")
                )

        # 5. Beta stays a usable threshold.
        beta = controller.throttle.beta
        if not np.isfinite(beta) or beta <= 0:
            report.beta_bad = True
            report.issues.append(HealthIssue("beta", f"beta degenerated to {beta}"))

        # 6. Stress non-divergence (only meaningful on a clean map of
        #    useful size; a poisoned map is already flagged above).
        if (
            not report.issues
            and n_labels >= MIN_STATES_FOR_STRESS
        ):
            stress = space.stress()
            if not np.isfinite(stress) or stress > STRESS_DIVERGENCE:
                report.structural = True
                report.issues.append(
                    HealthIssue("stress", f"normalized stress diverged to {stress}")
                )

        if report.issues:
            self.violations += 1
            self._count("watchdog_violations")
        return report

    # -- healing -----------------------------------------------------------
    def heal(self, tick: int, controller: "StayAway", report: HealthReport) -> List[str]:
        """Apply the least destructive repairs for a bad report.

        Returns the list of actions taken (``geometry-rebuild``,
        ``quarantine``, ``rollback``, ``beta-reset``, ``reset``).
        """
        actions: List[str] = []
        if report.ok:
            return actions
        space = controller.state_space

        if report.beta_bad:
            controller.throttle.beta = self.config.beta_initial
            self.beta_resets += 1
            actions.append("beta-reset")

        if report.cache_poisoned:
            # Underlying rows are clean — drop the cache and let the
            # next vote rebuild from truth.
            space.invalidate_geometry()
            self.geometry_repairs += 1
            self._count("geometry_repairs")
            actions.append("geometry-rebuild")

        needs_rollback = report.structural or bool(report.bad_modes)
        if (
            not needs_rollback
            and report.bad_states
            and self.config.watchdog_quarantine
            and len(report.bad_states) < len(space.labels)
        ):
            removed = space.quarantine(report.bad_states)
            self.quarantines += 1
            self.quarantined_states += removed
            self._count("quarantines", removed)
            self.events.record(
                tick,
                EventKind.MODEL_QUARANTINE,
                states=list(report.bad_states),
                removed=removed,
            )
            actions.append("quarantine")
        elif report.bad_states:
            needs_rollback = True

        if needs_rollback:
            if self.last_good is not None and self._rollback(tick, controller):
                actions.append("rollback")
            else:
                self._hard_reset(tick, controller)
                actions.append("reset")
        return actions

    def _rollback(self, tick: int, controller: "StayAway") -> bool:
        assert self.last_good is not None
        try:
            self.last_good.restore_models_into(controller)
        except CheckpointError:
            return False
        self.rollbacks += 1
        self._count("rollbacks")
        self.events.record(
            tick,
            EventKind.MODEL_ROLLBACK,
            snapshot_tick=self.last_good.captured_tick,
            states=self.last_good.state_count,
        )
        return True

    def _hard_reset(self, tick: int, controller: "StayAway") -> None:
        """Last resort: drop the learned state entirely and relearn."""
        space = controller.state_space
        space.representatives._points = []
        space.representatives._counts = []
        space.representatives.invalidate_index()
        space.coords = np.empty((0, 2))
        space.labels = []
        space._new_since_refit = 0
        space.invalidate_geometry()
        for model in controller.predictor.modes.models.values():
            model.distances._samples.clear()
            model.angles._samples.clear()
            model.steps_observed = 0
            model.break_continuity()
        self.resets += 1
        self._count("model_resets")
        self.events.record(tick, EventKind.MODEL_ROLLBACK, snapshot_tick=None, reset=True)

    # -- snapshots ---------------------------------------------------------
    def maybe_snapshot(self, tick: int, controller: "StayAway") -> bool:
        """Refresh the last-known-good snapshot on the configured cadence.

        Only called after a clean inspection — a snapshot of a poisoned
        model would make rollback itself an attack vector. Returns True
        when a new snapshot was captured.
        """
        interval = self.config.snapshot_interval * self.config.period
        if (
            self.last_snapshot_tick is not None
            and tick - self.last_snapshot_tick < interval
        ):
            return False
        self.last_good = ControllerCheckpoint.capture(controller, tick=tick)
        self.last_snapshot_tick = tick
        self.events.record(
            tick, EventKind.MODEL_SNAPSHOT, states=self.last_good.state_count
        )
        return True

    # -- the per-period entry point ----------------------------------------
    def check_and_heal(self, tick: int, controller: "StayAway") -> List[str]:
        """Inspect, heal, refresh the snapshot; returns actions taken."""
        report = self.inspect(tick, controller)
        if report.ok:
            self.maybe_snapshot(tick, controller)
            return []
        return self.heal(tick, controller, report)

    def summary(self) -> dict:
        """Counters for reports and tests."""
        return {
            "checks": self.checks,
            "violations": self.violations,
            "quarantines": self.quarantines,
            "quarantined_states": self.quarantined_states,
            "rollbacks": self.rollbacks,
            "geometry_repairs": self.geometry_repairs,
            "resets": self.resets,
            "beta_resets": self.beta_resets,
            "snapshot_tick": self.last_snapshot_tick,
        }


__all__ = [
    "HealthIssue",
    "HealthReport",
    "ModelHealthWatchdog",
    "MIN_STATES_FOR_STRESS",
    "STRESS_DIVERGENCE",
]
