"""The 2-D state space: mapped states, labels and violation-ranges.

This module owns the geometry of §3.2:

* every deduplicated measurement vector is a *mapped-state* with 2-D
  coordinates;
* states observed during a reported QoS violation are *violation-states*
  (sticky: a state seen violating stays a violation-state);
* around every violation-state lives a *violation-range* disc whose
  radius follows the Rayleigh-scaled law of §3.2.2:

      R = d * exp(-d^2 / (2 c^2))

  where ``d`` is the distance to the nearest safe-state and ``c`` is
  the median of the coordinate ranges of the mapped space. The radius
  grows with ``d`` up to ``d = c`` and fades beyond, so the
  exploration-range opens up when known-safe territory is far away and
  collapses when safe states crowd in (Fig. 4).
"""

from __future__ import annotations

import enum
from typing import List, Tuple

import numpy as np

from repro.mds.dedup import RepresentativeSet
from repro.mds.distances import pairwise_distances, point_distances
from repro.mds.incremental import place_point, procrustes_align
from repro.mds.smacof import smacof
from repro.mds.stress import normalized_stress


class StateLabel(enum.Enum):
    """Safe vs violation labelling of mapped states."""

    SAFE = "safe"
    VIOLATION = "violation"


def violation_range_radius(d: float, c: float) -> float:
    """The paper's violation-range radius ``R = d * exp(-d^2 / (2 c^2))``.

    Parameters
    ----------
    d:
        Distance between the violation-state and its nearest safe-state.
    c:
        Rayleigh scale: the median of the coordinate ranges of the
        mapped space. ``c <= 0`` (degenerate map) gives radius 0.
    """
    if d < 0:
        raise ValueError(f"distance must be non-negative, got {d}")
    if c <= 0 or d == 0:
        return 0.0
    return float(d * np.exp(-(d * d) / (2.0 * c * c)))


class StateSpace:
    """Deduplicated mapped states with labels and violation-ranges.

    Parameters
    ----------
    epsilon:
        Dedup merge radius in the normalized high-dimensional space.
    refit_interval:
        Full SMACOF refit after this many new representatives.
    smacof_max_iter:
        Iteration cap for refits.
    """

    def __init__(
        self,
        epsilon: float = 0.03,
        refit_interval: int = 40,
        smacof_max_iter: int = 40,
        radius_law: str = "rayleigh",
        fixed_radius: float = 0.05,
    ) -> None:
        if radius_law not in ("rayleigh", "fixed"):
            raise ValueError(
                f"radius_law must be 'rayleigh' or 'fixed', got {radius_law!r}"
            )
        self.representatives = RepresentativeSet(epsilon=epsilon)
        self.coords: np.ndarray = np.empty((0, 2))
        self.labels: List[StateLabel] = []
        self.refit_interval = refit_interval
        self.smacof_max_iter = smacof_max_iter
        self.radius_law = radius_law
        self.fixed_radius = fixed_radius
        self.refit_count = 0
        self._new_since_refit = 0
        #: Optional :class:`~repro.telemetry.Telemetry`; when set (the
        #: controller attaches its own), refits are timed and recorded.
        self.telemetry = None

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.labels)

    @property
    def violation_indices(self) -> np.ndarray:
        """Indices of violation-states."""
        return np.asarray(
            [i for i, label in enumerate(self.labels) if label is StateLabel.VIOLATION],
            dtype=int,
        )

    @property
    def safe_indices(self) -> np.ndarray:
        """Indices of safe-states."""
        return np.asarray(
            [i for i, label in enumerate(self.labels) if label is StateLabel.SAFE],
            dtype=int,
        )

    def coordinate_scale(self) -> float:
        """The Rayleigh scale ``c``: median of the coordinate ranges.

        For a 2-D map this is the median (mean) of the x-range and the
        y-range of all mapped states.
        """
        if len(self) < 2:
            return 0.0
        ranges = self.coords.max(axis=0) - self.coords.min(axis=0)
        return float(np.median(ranges))

    # -- growth ------------------------------------------------------------
    def add_sample(
        self, normalized: np.ndarray, violated: bool
    ) -> Tuple[int, bool, bool]:
        """Absorb one normalized measurement vector.

        Returns ``(state_index, is_new_state, refitted)``. A sample
        merging into an existing representative reuses its coordinates;
        a violation observation relabels the state stickily.
        """
        index, is_new = self.representatives.assign(normalized)
        refitted = False
        if is_new:
            coords = self._place_new(normalized)
            self.coords = (
                np.vstack([self.coords, coords[None, :]])
                if self.coords.size
                else coords[None, :]
            )
            self.labels.append(StateLabel.SAFE)
            self._new_since_refit += 1
            if self._new_since_refit >= self.refit_interval:
                self.refit()
                refitted = True
        if violated:
            self.labels[index] = StateLabel.VIOLATION
        return index, is_new, refitted

    def _place_new(self, normalized: np.ndarray) -> np.ndarray:
        """2-D coordinates for a brand-new representative."""
        n_existing = len(self)
        if n_existing == 0:
            return np.zeros(2)
        deltas = self.representatives.distances_from(normalized)[:-1]
        return place_point(self.coords, deltas)

    def refit(self) -> float:
        """Full SMACOF refit, Procrustes-aligned to the previous map.

        Returns the normalized stress of the refit embedding. When a
        telemetry object is attached the refit is timed into the
        ``mapping.refit_seconds`` histogram (with a nested trace span)
        and the state-space size at refit time is recorded.
        """
        n = len(self)
        if n < 3:
            self._new_since_refit = 0
            return 0.0
        if self.telemetry is not None:
            with self.telemetry.stage("mapping.refit"):
                stress = self._refit_inner(n)
            self.telemetry.gauge(
                "mapping.refit_states", help="state-space size at the last refit"
            ).set(n)
            return stress
        return self._refit_inner(n)

    def _refit_inner(self, n: int) -> float:
        target = pairwise_distances(self.representatives.points)
        result = smacof(
            target,
            n_components=2,
            init=self.coords,
            max_iter=self.smacof_max_iter,
            telemetry=self.telemetry,
        )
        aligned, _, _ = procrustes_align(self.coords, result.embedding)
        self.coords = aligned
        self.refit_count += 1
        self._new_since_refit = 0
        return normalized_stress(self.coords, target)

    def stress(self) -> float:
        """Current normalized stress of the map (0 for tiny maps)."""
        if len(self) < 3:
            return 0.0
        target = pairwise_distances(self.representatives.points)
        return normalized_stress(self.coords, target)

    # -- violation-range geometry ------------------------------------------
    def nearest_safe_distance(self, point: np.ndarray) -> float:
        """2-D distance from ``point`` to the nearest safe-state.

        ``inf`` when no safe state exists yet.
        """
        safe = self.safe_indices
        if safe.size == 0:
            return float("inf")
        distances = point_distances(np.asarray(point, float), self.coords[safe])
        return float(distances.min())

    def _radius_for(self, index: int, c: float) -> float:
        """Violation-range radius for one violation-state."""
        if self.radius_law == "fixed":
            return self.fixed_radius
        d = self.nearest_safe_distance(self.coords[index])
        if np.isinf(d):
            # No safe knowledge at all: fall back to the Rayleigh peak
            # radius so unexplored space is treated cautiously.
            return c * float(np.exp(-0.5)) if c > 0 else 0.0
        return violation_range_radius(d, c)

    def violation_ranges(self) -> List[Tuple[np.ndarray, float]]:
        """``(center, radius)`` for every violation-state's range disc."""
        c = self.coordinate_scale()
        return [
            (self.coords[index].copy(), float(self._radius_for(index, c)))
            for index in self.violation_indices
        ]

    def in_violation_range(self, point: np.ndarray) -> bool:
        """True when ``point`` lies inside any violation-range disc.

        A violation-state's own disc always contains its center, even
        when the computed radius is 0 (an exactly revisited violation
        state is, by definition, a violation).
        """
        point = np.asarray(point, dtype=float)
        violations = self.violation_indices
        if violations.size == 0:
            return False
        centers = self.coords[violations]
        distances = point_distances(point, centers)
        if np.any(distances <= 1e-12):
            return True
        c = self.coordinate_scale()
        for center_distance, index in zip(distances, violations):
            if center_distance <= self._radius_for(index, c):
                return True
        return False

    def violation_vote(self, candidates: np.ndarray) -> int:
        """How many candidate points fall inside a violation-range."""
        candidates = np.asarray(candidates, dtype=float)
        if candidates.ndim != 2 or candidates.shape[1] != 2:
            raise ValueError(f"expected (n, 2) candidates, got {candidates.shape}")
        return sum(1 for candidate in candidates if self.in_violation_range(candidate))
