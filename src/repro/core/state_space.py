"""The 2-D state space: mapped states, labels and violation-ranges.

This module owns the geometry of §3.2:

* every deduplicated measurement vector is a *mapped-state* with 2-D
  coordinates;
* states observed during a reported QoS violation are *violation-states*
  (sticky: a state seen violating stays a violation-state);
* around every violation-state lives a *violation-range* disc whose
  radius follows the Rayleigh-scaled law of §3.2.2:

      R = d * exp(-d^2 / (2 c^2))

  where ``d`` is the distance to the nearest safe-state and ``c`` is
  the median of the coordinate ranges of the mapped space. The radius
  grows with ``d`` up to ``d = c`` and fades beyond, so the
  exploration-range opens up when known-safe territory is far away and
  collapses when safe states crowd in (Fig. 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mds.dedup import RepresentativeSet
from repro.mds.distances import cross_distances, pairwise_distances, point_distances
from repro.mds.incremental import place_point, procrustes_align
from repro.mds.smacof import smacof
from repro.mds.stress import normalized_stress

#: A point exactly on a violation-state's center counts as inside its
#: range even when the computed radius is 0 (a revisited violation
#: state is, by definition, a violation).
CENTER_EPSILON = 1e-12


class StateLabel(enum.Enum):
    """Safe vs violation labelling of mapped states."""

    SAFE = "safe"
    VIOLATION = "violation"


@dataclass(frozen=True)
class ViolationGeometry:
    """Materialized violation-range geometry of one state-space snapshot.

    Everything the per-period vote needs — violation centers, the
    Rayleigh scale and every disc radius — computed once per state-space
    change via a single broadcasted distance pass, so that
    :meth:`contains` and :meth:`vote` are single vectorized NumPy
    expressions with no per-candidate recomputation.

    Instances are immutable snapshots; :class:`StateSpace` owns the
    cache and rebuilds on its mutation events (see
    :meth:`StateSpace.geometry`).

    Attributes
    ----------
    n_states:
        State-space size the snapshot was built from (consistency
        guard for callers that mutate the space behind the cache).
    scale:
        The Rayleigh scale ``c`` at build time.
    violation_indices:
        ``(v,)`` state indices of the violation-states.
    centers:
        ``(v, 2)`` coordinates of the violation-states.
    radii:
        ``(v,)`` violation-range radii, index-aligned with ``centers``.
    """

    n_states: int
    scale: float
    violation_indices: np.ndarray
    centers: np.ndarray
    radii: np.ndarray

    @property
    def n_violations(self) -> int:
        """Number of violation-states in the snapshot."""
        return int(self.violation_indices.size)

    def contains(self, point: np.ndarray) -> bool:
        """True when ``point`` lies inside any violation-range disc."""
        if self.centers.shape[0] == 0:
            return False
        distances = point_distances(np.asarray(point, dtype=float), self.centers)
        return bool(np.any((distances <= CENTER_EPSILON) | (distances <= self.radii)))

    def vote(self, candidates: np.ndarray) -> int:
        """How many candidate points fall inside a violation-range.

        One ``(n_candidates, n_violations)`` distance broadcast and one
        boolean reduction; no Python-level loop over candidates.
        """
        if self.centers.shape[0] == 0 or candidates.shape[0] == 0:
            return 0
        distances = cross_distances(candidates, self.centers)
        inside = (distances <= CENTER_EPSILON) | (distances <= self.radii[None, :])
        return int(np.count_nonzero(inside.any(axis=1)))

    def ranges(self) -> List[Tuple[np.ndarray, float]]:
        """``(center, radius)`` per violation-state, copy-safe."""
        return [
            (self.centers[i].copy(), float(self.radii[i]))
            for i in range(self.centers.shape[0])
        ]


def violation_range_radius(d: float, c: float) -> float:
    """The paper's violation-range radius ``R = d * exp(-d^2 / (2 c^2))``.

    Parameters
    ----------
    d:
        Distance between the violation-state and its nearest safe-state.
    c:
        Rayleigh scale: the median of the coordinate ranges of the
        mapped space. ``c <= 0`` (degenerate map) gives radius 0.
    """
    if d < 0:
        raise ValueError(f"distance must be non-negative, got {d}")
    if c <= 0 or d == 0:
        return 0.0
    return float(d * np.exp(-(d * d) / (2.0 * c * c)))


class StateSpace:
    """Deduplicated mapped states with labels and violation-ranges.

    Parameters
    ----------
    epsilon:
        Dedup merge radius in the normalized high-dimensional space.
    refit_interval:
        Full SMACOF refit after this many new representatives.
    smacof_max_iter:
        Iteration cap for refits.
    """

    def __init__(
        self,
        epsilon: float = 0.03,
        refit_interval: int = 40,
        smacof_max_iter: int = 40,
        radius_law: str = "rayleigh",
        fixed_radius: float = 0.05,
    ) -> None:
        if radius_law not in ("rayleigh", "fixed"):
            raise ValueError(
                f"radius_law must be 'rayleigh' or 'fixed', got {radius_law!r}"
            )
        self.representatives = RepresentativeSet(epsilon=epsilon)
        self.coords: np.ndarray = np.empty((0, 2))
        self.labels: List[StateLabel] = []
        self.refit_interval = refit_interval
        self.smacof_max_iter = smacof_max_iter
        self.radius_law = radius_law
        self.fixed_radius = fixed_radius
        self.refit_count = 0
        self._new_since_refit = 0
        #: Optional :class:`~repro.telemetry.Telemetry`; when set (the
        #: controller attaches its own), refits are timed and recorded.
        self.telemetry = None
        self._geometry: Optional[ViolationGeometry] = None
        self._geometry_hits = 0
        self._geometry_rebuilds = 0
        self._geometry_invalidations = 0

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.labels)

    @property
    def violation_indices(self) -> np.ndarray:
        """Indices of violation-states."""
        return np.asarray(
            [i for i, label in enumerate(self.labels) if label is StateLabel.VIOLATION],
            dtype=int,
        )

    @property
    def safe_indices(self) -> np.ndarray:
        """Indices of safe-states."""
        return np.asarray(
            [i for i, label in enumerate(self.labels) if label is StateLabel.SAFE],
            dtype=int,
        )

    def coordinate_scale(self) -> float:
        """The Rayleigh scale ``c``: median of the per-axis coordinate ranges.

        For a 2-D map the per-axis ranges are two numbers — the x-range
        and the y-range of all mapped states — so their median and
        their mean coincide; ``c`` is that value.
        """
        if len(self) < 2:
            return 0.0
        ranges = self.coords.max(axis=0) - self.coords.min(axis=0)
        return float(np.median(ranges))

    # -- growth ------------------------------------------------------------
    def add_sample(
        self, normalized: np.ndarray, violated: bool
    ) -> Tuple[int, bool, bool]:
        """Absorb one normalized measurement vector.

        Returns ``(state_index, is_new_state, refitted)``. A sample
        merging into an existing representative reuses its coordinates;
        a violation observation relabels the state stickily.
        """
        index, is_new = self.representatives.assign(normalized)
        refitted = False
        if is_new:
            coords = self._place_new(normalized)
            self.coords = (
                np.vstack([self.coords, coords[None, :]])
                if self.coords.size
                else coords[None, :]
            )
            self.labels.append(StateLabel.SAFE)
            self.invalidate_geometry()
            self._new_since_refit += 1
            if self._new_since_refit >= self.refit_interval:
                self.refit()
                refitted = True
        if violated and self.labels[index] is not StateLabel.VIOLATION:
            self.labels[index] = StateLabel.VIOLATION
            self.invalidate_geometry()
        return index, is_new, refitted

    def _place_new(self, normalized: np.ndarray) -> np.ndarray:
        """2-D coordinates for a brand-new representative."""
        n_existing = len(self)
        if n_existing == 0:
            return np.zeros(2)
        deltas = self.representatives.distances_from(normalized)[:-1]
        return place_point(self.coords, deltas)

    def refit(self) -> float:
        """Full SMACOF refit, Procrustes-aligned to the previous map.

        Returns the normalized stress of the refit embedding. When a
        telemetry object is attached the refit is timed into the
        ``mapping.refit_seconds`` histogram (with a nested trace span)
        and the state-space size at refit time is recorded.
        """
        n = len(self)
        if n < 3:
            self._new_since_refit = 0
            return 0.0
        if self.telemetry is not None:
            with self.telemetry.stage("mapping.refit"):
                stress = self._refit_inner(n)
            self.telemetry.gauge(
                "mapping.refit_states", help="state-space size at the last refit"
            ).set(n)
            return stress
        return self._refit_inner(n)

    def _refit_inner(self, n: int) -> float:
        target = pairwise_distances(self.representatives.points)
        result = smacof(
            target,
            n_components=2,
            init=self.coords,
            max_iter=self.smacof_max_iter,
            telemetry=self.telemetry,
        )
        aligned, _, _ = procrustes_align(self.coords, result.embedding)
        self.coords = aligned
        self.refit_count += 1
        self._new_since_refit = 0
        self.invalidate_geometry()
        return normalized_stress(self.coords, target)

    def stress(self) -> float:
        """Current normalized stress of the map (0 for tiny maps)."""
        if len(self) < 3:
            return 0.0
        target = pairwise_distances(self.representatives.points)
        return normalized_stress(self.coords, target)

    # -- geometry cache ----------------------------------------------------
    def invalidate_geometry(self) -> None:
        """Drop the cached :class:`ViolationGeometry`.

        Called automatically on the three mutation events that change
        the violation-range geometry:

        * a new representative is placed (:meth:`add_sample` with a
          fresh epsilon-ball): the safe set, the coordinate ranges and
          therefore every radius may change;
        * a sticky relabel to VIOLATION (:meth:`add_sample` observing a
          violation on a previously safe state);
        * a SMACOF refit (:meth:`refit`) or a checkpoint/template
          restore rewriting ``coords`` wholesale.

        External code that mutates ``coords`` / ``labels`` directly
        (checkpoint restore, template loading) must call this
        explicitly — that is the cache contract.
        """
        if self._geometry is not None:
            self._geometry = None
            self._geometry_invalidations += 1
            if self.telemetry is not None:
                self.telemetry.counter(
                    "geometry.invalidations",
                    help="violation-geometry cache drops (mutation events)",
                ).inc()

    def geometry(self) -> ViolationGeometry:
        """The current violation-range geometry, cached until dirtied.

        Rebuilds materialize the violation centers, the Rayleigh scale
        and all radii in one broadcasted distance pass; when telemetry
        is attached the rebuild is timed into ``geometry.rebuild_seconds``
        and cache hits/rebuilds are counted.
        """
        cached = self._geometry
        if cached is not None and cached.n_states == len(self):
            self._geometry_hits += 1
            if self.telemetry is not None:
                self.telemetry.counter(
                    "geometry.cache_hits",
                    help="violation-geometry lookups served from cache",
                ).inc()
            return cached
        if self.telemetry is not None:
            with self.telemetry.stage("geometry.rebuild"):
                geometry = self._build_geometry()
            self.telemetry.counter(
                "geometry.rebuilds", help="violation-geometry cache rebuilds"
            ).inc()
        else:
            geometry = self._build_geometry()
        self._geometry = geometry
        self._geometry_rebuilds += 1
        return geometry

    def _build_geometry(self) -> ViolationGeometry:
        """Materialize centers, scale and radii for the current map.

        The arithmetic mirrors the scalar reference path operation for
        operation (same subtract/square/sum/sqrt/exp sequence), so the
        vectorized votes are bit-identical to the scalar ones.
        """
        violations = self.violation_indices
        c = self.coordinate_scale()
        if violations.size == 0:
            return ViolationGeometry(
                n_states=len(self),
                scale=c,
                violation_indices=violations,
                centers=np.empty((0, 2)),
                radii=np.empty(0),
            )
        centers = self.coords[violations].copy()
        if self.radius_law == "fixed":
            radii = np.full(violations.size, float(self.fixed_radius))
        else:
            safe = self.safe_indices
            if safe.size == 0:
                # No safe knowledge at all: fall back to the Rayleigh
                # peak radius so unexplored space is treated cautiously.
                fallback = c * float(np.exp(-0.5)) if c > 0 else 0.0
                radii = np.full(violations.size, fallback)
            elif c <= 0:
                radii = np.zeros(violations.size)
            else:
                nearest_safe = cross_distances(centers, self.coords[safe]).min(axis=1)
                radii = nearest_safe * np.exp(
                    -(nearest_safe * nearest_safe) / (2.0 * c * c)
                )
        return ViolationGeometry(
            n_states=len(self),
            scale=c,
            violation_indices=violations,
            centers=centers,
            radii=radii,
        )

    # -- quarantine --------------------------------------------------------
    def quarantine(self, indices) -> int:
        """Remove (quarantine) states whose learned rows are poisoned.

        Used by the model-health watchdog when a representative's
        coordinates or high-dimensional vector went non-finite: the
        offending rows are dropped from the representatives, the 2-D
        coordinates and the labels in one index-aligned pass, later
        states shift down, and every derived cache (merge grid,
        violation geometry) is invalidated. Returns how many states
        were removed.

        State *indices* held by external bookkeeping (mapping history,
        figures) are not rewritten — they refer to the map as it was at
        record time, exactly as they already do across refits.
        """
        doomed = sorted({int(i) for i in indices if 0 <= int(i) < len(self.labels)})
        if not doomed:
            return 0
        removed = self.representatives.remove_indices(doomed)
        keep = [i for i in range(len(self.labels)) if i not in set(doomed)]
        self.coords = (
            self.coords[keep] if keep else np.empty((0, 2))
        )
        self.labels = [self.labels[i] for i in keep]
        self._new_since_refit = min(self._new_since_refit, len(self.labels))
        self.invalidate_geometry()
        return removed

    def geometry_stats(self) -> Dict[str, int]:
        """Cache accounting: hits, rebuilds and invalidations so far."""
        return {
            "cache_hits": self._geometry_hits,
            "rebuilds": self._geometry_rebuilds,
            "invalidations": self._geometry_invalidations,
        }

    # -- violation-range geometry ------------------------------------------
    def nearest_safe_distance(self, point: np.ndarray) -> float:
        """2-D distance from ``point`` to the nearest safe-state.

        ``inf`` when no safe state exists yet.
        """
        safe = self.safe_indices
        if safe.size == 0:
            return float("inf")
        distances = point_distances(np.asarray(point, float), self.coords[safe])
        return float(distances.min())

    def _radius_for(self, index: int, c: float) -> float:
        """Violation-range radius for one violation-state (scalar path)."""
        if self.radius_law == "fixed":
            return self.fixed_radius
        d = self.nearest_safe_distance(self.coords[index])
        if np.isinf(d):
            # No safe knowledge at all: fall back to the Rayleigh peak
            # radius so unexplored space is treated cautiously.
            return c * float(np.exp(-0.5)) if c > 0 else 0.0
        return violation_range_radius(d, c)

    def violation_ranges(self) -> List[Tuple[np.ndarray, float]]:
        """``(center, radius)`` for every violation-state's range disc."""
        return self.geometry().ranges()

    def in_violation_range(self, point: np.ndarray) -> bool:
        """True when ``point`` lies inside any violation-range disc.

        A violation-state's own disc always contains its center, even
        when the computed radius is 0 (an exactly revisited violation
        state is, by definition, a violation).
        """
        return self.geometry().contains(np.asarray(point, dtype=float))

    def violation_vote(self, candidates: np.ndarray) -> int:
        """How many candidate points fall inside a violation-range."""
        candidates = np.asarray(candidates, dtype=float)
        if candidates.ndim != 2 or candidates.shape[1] != 2:
            raise ValueError(f"expected (n, 2) candidates, got {candidates.shape}")
        return self.geometry().vote(candidates)

    # -- scalar reference implementations ----------------------------------
    # Retained verbatim from the pre-vectorization code path: the
    # equivalence suite (tests/unit/test_geometry.py and
    # tests/property/test_prop_geometry.py) and bench_geometry.py prove
    # the cached vectorized path gives identical votes.
    def violation_ranges_scalar(self) -> List[Tuple[np.ndarray, float]]:
        """Reference ``(center, radius)`` list, one radius at a time."""
        c = self.coordinate_scale()
        return [
            (self.coords[index].copy(), float(self._radius_for(index, c)))
            for index in self.violation_indices
        ]

    def in_violation_range_scalar(self, point: np.ndarray) -> bool:
        """Reference membership test recomputing radii per call."""
        point = np.asarray(point, dtype=float)
        violations = self.violation_indices
        if violations.size == 0:
            return False
        centers = self.coords[violations]
        distances = point_distances(point, centers)
        if np.any(distances <= CENTER_EPSILON):
            return True
        c = self.coordinate_scale()
        for center_distance, index in zip(distances, violations):
            if center_distance <= self._radius_for(index, c):
                return True
        return False

    def violation_vote_scalar(self, candidates: np.ndarray) -> int:
        """Reference vote: one full membership scan per candidate."""
        candidates = np.asarray(candidates, dtype=float)
        if candidates.ndim != 2 or candidates.shape[1] != 2:
            raise ValueError(f"expected (n, 2) candidates, got {candidates.shape}")
        return sum(
            1 for candidate in candidates if self.in_violation_range_scalar(candidate)
        )
