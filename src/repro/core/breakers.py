"""Per-stage circuit breakers for the control loop.

The exception firewall in :class:`~repro.core.controller.StayAway`
keeps a single stage failure from crashing the run, but a stage that
fails *every* period (a wedged mapping pipeline fed garbage, a predictor
whose model was poisoned) should stop being invoked at all: each failed
attempt costs a period of protection and can corrupt more state. Each
stage therefore carries a :class:`CircuitBreaker` with the classic three
states:

* **CLOSED** — stage runs normally; failures are counted against an
  error budget over a sliding window of periods.
* **OPEN** — budget exhausted. The stage is skipped entirely and the
  controller degrades (reactive-only policy for map/predict, fail-safe
  pause-and-hold for act) until a cooldown elapses.
* **HALF_OPEN** — cooldown over; the stage is probed. A run of
  consecutive successful probes closes the breaker, a single probe
  failure re-opens it for a fresh cooldown.

Every transition is recorded in the :class:`~repro.core.events.EventLog`
(``BREAKER_TRIP`` / ``BREAKER_PROBE`` / ``BREAKER_RESET``) and counted
in the telemetry registry, so chaos experiments can measure trip counts
and recovery times rather than assert them.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.events import EventKind, EventLog


class BreakerState(enum.Enum):
    """The classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Error-budget breaker for one controller stage.

    Parameters
    ----------
    stage:
        Stage name ("map", "predict", "act", ...), used in events and
        metric labels.
    events:
        Event log receiving trip/probe/reset records.
    error_budget:
        Failures within ``window_ticks`` that trip the breaker.
    window_ticks:
        Sliding error-budget window, in ticks.
    cooldown_ticks:
        Ticks an OPEN breaker holds before going HALF_OPEN.
    probes:
        Consecutive successful probes required to close from HALF_OPEN.
    registry:
        Optional :class:`~repro.telemetry.MetricRegistry` for the
        ``breaker.trips`` / ``breaker.resets`` counters (labelled by
        stage).
    """

    def __init__(
        self,
        stage: str,
        events: EventLog,
        error_budget: int = 3,
        window_ticks: int = 20,
        cooldown_ticks: int = 15,
        probes: int = 2,
        registry=None,
    ) -> None:
        if error_budget < 1:
            raise ValueError("error_budget must be >= 1")
        if window_ticks < 1:
            raise ValueError("window_ticks must be >= 1")
        if cooldown_ticks < 1:
            raise ValueError("cooldown_ticks must be >= 1")
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self.stage = stage
        self.events = events
        self.error_budget = error_budget
        self.window_ticks = window_ticks
        self.cooldown_ticks = cooldown_ticks
        self.probes = probes
        self.state = BreakerState.CLOSED
        self.trip_count = 0
        self.reset_count = 0
        self._failures: Deque[int] = deque()
        self._open_until: Optional[int] = None
        self._probe_successes = 0
        self._last_trip_tick: Optional[int] = None
        #: ``(trip_tick, reset_tick)`` pairs of completed outages.
        self.recoveries: List[Tuple[int, int]] = []
        self._c_trips = None
        self._c_resets = None
        if registry is not None:
            labels = {"stage": stage}
            self._c_trips = registry.counter(
                "breaker.trips", help="circuit-breaker trips", labels=labels
            )
            self._c_resets = registry.counter(
                "breaker.resets", help="circuit-breaker resets", labels=labels
            )

    # -- gating ------------------------------------------------------------
    def allows(self, tick: int) -> bool:
        """Whether the stage may run this period.

        An OPEN breaker whose cooldown elapsed transitions to HALF_OPEN
        here (recording a ``BREAKER_PROBE`` event) and lets the probe
        through.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self._open_until is not None and tick >= self._open_until:
                self.state = BreakerState.HALF_OPEN
                self._probe_successes = 0
                self.events.record(tick, EventKind.BREAKER_PROBE, stage=self.stage)
                return True
            return False
        return True  # HALF_OPEN: probes run

    # -- outcome feedback --------------------------------------------------
    def record_success(self, tick: int) -> None:
        """Feed a successful stage execution."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.probes:
                self._reset(tick)
        elif self.state is BreakerState.CLOSED:
            self._prune(tick)

    def record_failure(self, tick: int) -> bool:
        """Feed a stage failure; returns True when the breaker tripped now."""
        if self.state is BreakerState.HALF_OPEN:
            # A failed probe re-opens immediately for a fresh cooldown.
            self._trip(tick, probe_failure=True)
            return True
        self._failures.append(tick)
        self._prune(tick)
        if self.state is BreakerState.CLOSED and len(self._failures) >= self.error_budget:
            self._trip(tick)
            return True
        return False

    # -- internals ---------------------------------------------------------
    def _prune(self, tick: int) -> None:
        while self._failures and tick - self._failures[0] > self.window_ticks:
            self._failures.popleft()

    def _trip(self, tick: int, probe_failure: bool = False) -> None:
        self.state = BreakerState.OPEN
        self.trip_count += 1
        self._open_until = tick + self.cooldown_ticks
        self._probe_successes = 0
        if self._last_trip_tick is None:
            self._last_trip_tick = tick
        if self._c_trips is not None:
            self._c_trips.inc()
        self.events.record(
            tick,
            EventKind.BREAKER_TRIP,
            stage=self.stage,
            failures=len(self._failures),
            probe_failure=probe_failure,
        )
        self._failures.clear()

    def _reset(self, tick: int) -> None:
        self.state = BreakerState.CLOSED
        self.reset_count += 1
        self._open_until = None
        self._probe_successes = 0
        self._failures.clear()
        if self._last_trip_tick is not None:
            self.recoveries.append((self._last_trip_tick, tick))
            self._last_trip_tick = None
        if self._c_resets is not None:
            self._c_resets.inc()
        self.events.record(tick, EventKind.BREAKER_RESET, stage=self.stage)

    # -- introspection -----------------------------------------------------
    @property
    def open(self) -> bool:
        """True while the stage is fully blocked (no probes yet)."""
        return self.state is BreakerState.OPEN

    def recovery_times(self) -> List[int]:
        """Ticks from each trip to the reset that ended its outage."""
        return [reset - trip for trip, reset in self.recoveries]

    def summary(self) -> dict:
        """Counters for reports and tests."""
        times = self.recovery_times()
        return {
            "state": self.state.value,
            "trips": self.trip_count,
            "resets": self.reset_count,
            "mean_recovery_ticks": (sum(times) / len(times)) if times else 0.0,
        }


class BreakerBank:
    """One :class:`CircuitBreaker` per controller stage.

    Parameters
    ----------
    config:
        :class:`~repro.core.config.StayAwayConfig`; the budget/window/
        cooldown knobs are read from it (periods converted to ticks).
    events / registry:
        Shared event log and telemetry registry.
    stages:
        Stage names to guard.
    """

    STAGES: Tuple[str, ...] = ("guard", "map", "predict", "act")

    def __init__(
        self, config, events: EventLog, registry=None, stages: Optional[Tuple[str, ...]] = None
    ) -> None:
        period = config.period
        self.breakers: Dict[str, CircuitBreaker] = {
            stage: CircuitBreaker(
                stage,
                events,
                error_budget=config.breaker_error_budget,
                window_ticks=config.breaker_window * period,
                cooldown_ticks=config.breaker_cooldown * period,
                probes=config.breaker_probes,
                registry=registry,
            )
            for stage in (stages if stages is not None else self.STAGES)
        }

    def get(self, stage: str) -> CircuitBreaker:
        """The breaker guarding one stage."""
        return self.breakers[stage]

    @property
    def total_trips(self) -> int:
        """Trips across all stages."""
        return sum(breaker.trip_count for breaker in self.breakers.values())

    @property
    def total_resets(self) -> int:
        """Resets across all stages."""
        return sum(breaker.reset_count for breaker in self.breakers.values())

    def any_open(self, *stages: str) -> bool:
        """True when any named stage (default: all) is fully OPEN."""
        names = stages if stages else tuple(self.breakers)
        return any(self.breakers[name].open for name in names)

    def summary(self) -> dict:
        """Per-stage breaker summaries."""
        return {stage: breaker.summary() for stage, breaker in self.breakers.items()}


__all__ = ["BreakerBank", "BreakerState", "CircuitBreaker"]
