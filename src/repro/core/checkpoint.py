"""Checkpoint/restore of the controller's learned state.

A controller that crashes (or is redeployed) should *resume*, not
relearn: the state space took hundreds of periods to map, beta was
tuned by observed premature resumes, and the per-mode step histograms
are the entire prediction substrate. :class:`ControllerCheckpoint`
captures all of it — plus the RNG streams and throttle machine state —
so a restored controller makes byte-identical decisions to one that
never went down.

Durability discipline:

* **atomic write** — serialize to a temporary file in the target
  directory, fsync, then ``os.replace``; a crash mid-save leaves the
  previous checkpoint intact;
* **checksum** — the payload carries a SHA-256 over its canonical JSON;
  a truncated or bit-flipped file fails loudly
  (:class:`CheckpointError`) instead of resurrecting garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.action import ResumeReason
from repro.core.events import EventKind
from repro.core.state_space import StateLabel, StateSpace
from repro.trajectory.modes import ExecutionMode

FORMAT = "stayaway-checkpoint"
VERSION = 1


class CheckpointError(RuntimeError):
    """Raised on corrupt, mismatched or misapplied checkpoints."""


def _canonical(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def _rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-safe bit-generator state."""
    return json.loads(json.dumps(rng.bit_generator.state, default=int))


def _mode_model_state(model) -> Dict[str, Any]:
    return {
        "distances": [float(v) for v in model.distances.samples],
        "angles": [float(v) for v in model.angles.samples],
        "steps_observed": int(model.steps_observed),
        "last_point": (
            None if model.last_point is None else [float(v) for v in model.last_point]
        ),
    }


@dataclass
class ControllerCheckpoint:
    """A serializable snapshot of everything a controller has learned.

    Captured state: the deduplicated state space (representatives,
    coordinates, labels, refit bookkeeping), the per-execution-mode
    step/angle histograms, the throttle machine (beta, pause-set,
    counters, resume provenance) and both RNG streams.
    """

    payload: Dict[str, Any]

    # -- capture -----------------------------------------------------------
    @classmethod
    def capture(cls, controller, tick: Optional[int] = None) -> "ControllerCheckpoint":
        """Snapshot a live controller's learned state."""
        space = controller.state_space
        bank = controller.predictor.modes
        throttle = controller.throttle
        payload: Dict[str, Any] = {
            "captured_tick": (
                int(tick)
                if tick is not None
                else (controller.trajectory[-1].tick if controller.trajectory else 0)
            ),
            "state_space": {
                "representatives": space.representatives.points.tolist(),
                "counts": space.representatives.counts.tolist(),
                "coords": space.coords.tolist(),
                "labels": [label.value for label in space.labels],
                "epsilon": float(space.representatives.epsilon),
                "refit_count": int(space.refit_count),
                "new_since_refit": int(space._new_since_refit),
            },
            "modes": {
                mode.value: _mode_model_state(model)
                for mode, model in bank.models.items()
            },
            "mode_bank": {
                "current_mode": (
                    None if bank.current_mode is None else bank.current_mode.value
                ),
                "mode_switches": int(bank.mode_switches),
            },
            "predictor_rng": _rng_state(controller.predictor.rng),
            "throttle": {
                "beta": float(throttle.beta),
                "throttling": bool(throttle.throttling),
                "paused_names": list(throttle._paused_names),
                "throttle_count": int(throttle.throttle_count),
                "resume_count": int(throttle.resume_count),
                "probe_resume_count": int(throttle.probe_resume_count),
                "stagnant_periods": int(throttle._stagnant_periods),
                "last_resume_tick": throttle._last_resume_tick,
                "last_resume_reason": (
                    None
                    if throttle._last_resume_reason is None
                    else throttle._last_resume_reason.value
                ),
                "retry": {
                    name: [int(failures), int(next_tick)]
                    for name, (failures, next_tick) in throttle._retry.items()
                },
                "rng": _rng_state(throttle.rng),
            },
            "controller": {
                "prev_coords": (
                    None
                    if controller._prev_coords is None
                    else [float(v) for v in controller._prev_coords]
                ),
                "prev_mode": (
                    None
                    if controller._prev_mode is None
                    else controller._prev_mode.value
                ),
            },
        }
        return cls(payload=payload)

    # -- restore -----------------------------------------------------------
    def restore_into(self, controller) -> None:
        """Load this snapshot into a *fresh* controller.

        The controller must not have run a period yet (its mapping
        pipeline is created lazily against the restored state space).
        """
        if controller.mapping is not None or controller.trajectory:
            raise CheckpointError(
                "restore requires a fresh controller (it has already run)"
            )
        data = self.payload
        config = controller.config

        # State space.
        ss = data["state_space"]
        space = StateSpace(
            epsilon=float(ss["epsilon"]),
            refit_interval=config.refit_interval,
            smacof_max_iter=config.smacof_max_iter,
            radius_law=config.radius_law,
            fixed_radius=config.fixed_radius,
        )
        self._restore_state_space_into(space, ss)
        space.telemetry = controller.state_space.telemetry
        controller.state_space = space

        self._restore_learned_models(controller)

        # Throttle machine.
        ts = data["throttle"]
        throttle = controller.throttle
        throttle.beta = float(ts["beta"])
        throttle.throttling = bool(ts["throttling"])
        throttle._paused_names = list(ts["paused_names"])
        throttle.throttle_count = int(ts["throttle_count"])
        throttle.resume_count = int(ts["resume_count"])
        throttle.probe_resume_count = int(ts["probe_resume_count"])
        throttle._stagnant_periods = int(ts["stagnant_periods"])
        throttle._last_resume_tick = ts["last_resume_tick"]
        throttle._last_resume_reason = (
            None
            if ts["last_resume_reason"] is None
            else ResumeReason(ts["last_resume_reason"])
        )
        throttle._retry = {
            name: (int(failures), int(next_tick))
            for name, (failures, next_tick) in ts["retry"].items()
        }
        throttle.rng.bit_generator.state = ts["rng"]

        controller.events.record(
            int(data["captured_tick"]),
            EventKind.CHECKPOINT_RESTORED,
            states=len(space),
            beta=throttle.beta,
        )

    def restore_models_into(self, controller) -> None:
        """Roll a *running* controller's learned models back to this snapshot.

        In-flight rollback for the model-health watchdog: the state
        space is restored **in place** (every live reference — the
        mapping pipeline, the template exporter — keeps seeing the same
        object), and the per-mode trajectory models, the predictor RNG
        stream and the controller's step-distance continuity are reset
        to snapshot time. The throttle machine is deliberately left
        alone: its pause-set reflects *actual* container states, which a
        model rollback must not contradict.

        The snapshot's representative dimensionality must match the
        running space (same normalizer); a mismatch raises
        :class:`CheckpointError`.
        """
        ss = self.payload["state_space"]
        space = controller.state_space
        if ss["representatives"] and len(space.representatives._points):
            snap_dim = len(ss["representatives"][0])
            if space.representatives.dimension not in (None, snap_dim):
                raise CheckpointError(
                    f"snapshot dimension {snap_dim} != live space "
                    f"dimension {space.representatives.dimension}"
                )
        self._restore_state_space_into(space, ss)
        self._restore_learned_models(controller)

    def _restore_state_space_into(self, space: StateSpace, ss: Dict[str, Any]) -> None:
        """Overwrite a state space's learned content with the payload's."""
        space.representatives._points = [
            np.asarray(row, dtype=float) for row in ss["representatives"]
        ]
        space.representatives._counts = [int(c) for c in ss["counts"]]
        space.representatives.invalidate_index()
        if space.representatives._points:
            space.representatives.dimension = space.representatives._points[0].shape[0]
        space.coords = np.asarray(ss["coords"], dtype=float).reshape(-1, 2)
        space.labels = [StateLabel(value) for value in ss["labels"]]
        space.refit_count = int(ss["refit_count"])
        space._new_since_refit = int(ss["new_since_refit"])
        if len(space.labels) != len(space.representatives._points) or (
            space.coords.shape[0] != len(space.labels)
        ):
            raise CheckpointError("inconsistent state-space payload")
        # Coords/labels were rewritten wholesale behind the cache: any
        # violation geometry materialized before this point is stale.
        space.invalidate_geometry()

    def _restore_learned_models(self, controller) -> None:
        """Restore mode models, predictor RNG and step continuity."""
        data = self.payload
        bank = controller.predictor.modes
        for mode_value, state in data["modes"].items():
            model = bank.models[ExecutionMode(mode_value)]
            model.distances._samples.clear()
            model.distances._samples.extend(float(v) for v in state["distances"])
            model.angles._samples.clear()
            model.angles._samples.extend(float(v) for v in state["angles"])
            model.steps_observed = int(state["steps_observed"])
            model._last_point = (
                None
                if state["last_point"] is None
                else np.asarray(state["last_point"], dtype=float)
            )
        bank_state = data["mode_bank"]
        bank._current_mode = (
            None
            if bank_state["current_mode"] is None
            else ExecutionMode(bank_state["current_mode"])
        )
        bank.mode_switches = int(bank_state["mode_switches"])
        controller.predictor.rng.bit_generator.state = data["predictor_rng"]
        cs = data["controller"]
        controller._prev_coords = (
            None
            if cs["prev_coords"] is None
            else np.asarray(cs["prev_coords"], dtype=float)
        )
        controller._prev_mode = (
            None if cs["prev_mode"] is None else ExecutionMode(cs["prev_mode"])
        )

    # -- serialization -----------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Atomically write the checkpoint (tmp file + fsync + replace).

        A failed write removes its temporary file and raises
        :class:`CheckpointError`; the previous checkpoint at ``path``
        is left intact either way.
        """
        path = Path(path)
        envelope = {
            "format": FORMAT,
            "version": VERSION,
            "checksum": _checksum(self.payload),
            "payload": self.payload,
        }
        tmp = path.with_name(path.name + ".tmp")
        data = json.dumps(envelope, indent=2)
        try:
            with open(tmp, "w") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ControllerCheckpoint":
        """Read and verify a checkpoint written by :meth:`save`.

        Any stale ``<name>.tmp`` sibling left by a crash mid-save is
        removed first: a completed :meth:`save` never leaves one behind
        (``os.replace`` consumes it), so its existence means the write
        it belonged to never finished.
        """
        path = Path(path)
        cleanup_stale_tmp(path)
        try:
            envelope = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        if not isinstance(envelope, dict) or envelope.get("format") != FORMAT:
            raise CheckpointError(f"{path} is not a Stay-Away checkpoint")
        if envelope.get("version") != VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {envelope.get('version')!r}"
            )
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            raise CheckpointError(f"{path} has no payload")
        if _checksum(payload) != envelope.get("checksum"):
            raise CheckpointError(f"checksum mismatch in {path} (corrupt checkpoint)")
        return cls(payload=payload)

    # -- introspection -----------------------------------------------------
    @property
    def captured_tick(self) -> int:
        """Tick at which the snapshot was taken."""
        return int(self.payload["captured_tick"])

    @property
    def state_count(self) -> int:
        """Number of mapped states in the snapshot."""
        return len(self.payload["state_space"]["labels"])

    @property
    def beta(self) -> float:
        """The learned resume threshold at capture time."""
        return float(self.payload["throttle"]["beta"])


def cleanup_stale_tmp(path: Union[str, Path]) -> bool:
    """Remove the abandoned ``<name>.tmp`` sibling of a checkpoint path.

    Returns True when a stale temporary file was found and removed.
    Safe to call any time: a finished :meth:`ControllerCheckpoint.save`
    consumes its temporary via ``os.replace``, so whatever this finds is
    the debris of a crash mid-save.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.unlink()
    except FileNotFoundError:
        return False
    except OSError:
        return False
    return True


def save_checkpoint(
    controller, path: Union[str, Path], tick: Optional[int] = None
) -> Path:
    """Capture and atomically persist a controller's learned state."""
    return ControllerCheckpoint.capture(controller, tick=tick).save(path)


def restore_checkpoint(controller, path: Union[str, Path]) -> ControllerCheckpoint:
    """Load a checkpoint file into a fresh controller; returns it."""
    checkpoint = ControllerCheckpoint.load(path)
    checkpoint.restore_into(controller)
    return checkpoint


__all__ = [
    "CheckpointError",
    "ControllerCheckpoint",
    "cleanup_stale_tmp",
    "restore_checkpoint",
    "save_checkpoint",
]
