"""Map templates: reuse a learned map across executions (§6).

"In case of repeatable latency sensitive applications, the
violation-states in the generated map from a previous execution can be
used as a starting point and is a valid map for a new execution with a
different batch application." The mapped states are representative of
load at the *resource* level, so they transfer across batch co-tenants.

A :class:`MapTemplate` serializes the representative vectors, their 2-D
coordinates, their labels and the learned beta; loading it pre-seeds a
fresh :class:`~repro.core.state_space.StateSpace`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from repro.core.state_space import StateLabel, StateSpace


@dataclass
class MapTemplate:
    """A serializable snapshot of a learned state-space map.

    Attributes
    ----------
    representatives:
        ``(n, d)`` normalized high-dimensional representative vectors.
    coords:
        ``(n, 2)`` mapped coordinates.
    labels:
        Safe/violation label per state.
    epsilon:
        Dedup radius the map was built with (must match on reuse).
    beta:
        The learned resume threshold at capture time.
    metadata:
        Free-form provenance (workloads, ticks, ...).
    """

    representatives: np.ndarray
    coords: np.ndarray
    labels: List[StateLabel]
    epsilon: float
    beta: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.representatives = np.asarray(self.representatives, dtype=float)
        self.coords = np.asarray(self.coords, dtype=float)
        n = self.representatives.shape[0]
        if self.coords.shape != (n, 2):
            raise ValueError(
                f"coords shape {self.coords.shape} does not match {n} representatives"
            )
        if len(self.labels) != n:
            raise ValueError(f"{len(self.labels)} labels for {n} representatives")

    @property
    def violation_count(self) -> int:
        """Number of violation-states captured in the template."""
        return sum(1 for label in self.labels if label is StateLabel.VIOLATION)

    # -- capture -----------------------------------------------------------
    @classmethod
    def from_state_space(
        cls,
        state_space: StateSpace,
        beta: float,
        metadata: Union[Dict[str, Any], None] = None,
    ) -> "MapTemplate":
        """Snapshot a live state space."""
        return cls(
            representatives=state_space.representatives.points.copy(),
            coords=state_space.coords.copy(),
            labels=list(state_space.labels),
            epsilon=state_space.representatives.epsilon,
            beta=beta,
            metadata=dict(metadata or {}),
        )

    # -- reuse ---------------------------------------------------------------
    def build_state_space(
        self,
        refit_interval: int = 40,
        smacof_max_iter: int = 40,
        radius_law: str = "rayleigh",
        fixed_radius: float = 0.05,
    ) -> StateSpace:
        """A fresh state space pre-seeded with this template's map."""
        space = StateSpace(
            epsilon=self.epsilon,
            refit_interval=refit_interval,
            smacof_max_iter=smacof_max_iter,
            radius_law=radius_law,
            fixed_radius=fixed_radius,
        )
        for row, label in zip(self.representatives, self.labels):
            index, is_new = space.representatives.assign(row)
            if not is_new:
                raise ValueError(
                    "template representatives are not epsilon-separated; "
                    f"row {index} merged on reload"
                )
            space.labels.append(label)
        space.coords = self.coords.copy()
        # Labels/coords were written directly (not via add_sample), so
        # honor the geometry-cache contract explicitly.
        space.invalidate_geometry()
        return space

    # -- serialization ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary form."""
        return {
            "representatives": self.representatives.tolist(),
            "coords": self.coords.tolist(),
            "labels": [label.value for label in self.labels],
            "epsilon": self.epsilon,
            "beta": self.beta,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MapTemplate":
        """Inverse of :meth:`to_dict`."""
        return cls(
            representatives=np.asarray(data["representatives"], dtype=float),
            coords=np.asarray(data["coords"], dtype=float),
            labels=[StateLabel(value) for value in data["labels"]],
            epsilon=float(data["epsilon"]),
            beta=float(data["beta"]),
            metadata=dict(data.get("metadata", {})),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the template as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MapTemplate":
        """Read a template previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
