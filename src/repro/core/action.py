"""The Action step: throttle and resume batch containers.

§3.3 of the paper:

* **Throttle**: send SIGSTOP to the batch application(s) when a
  transition toward a violation is predicted (or a violation is
  observed while learning).
* **Resume**: while throttled only the sensitive application runs; the
  consecutive mapped states of that isolated execution stay close while
  the sensitive app remains in the same phase. When the distance
  between consecutive states exceeds the learning parameter ``beta``
  (initially 0.01), a phase/workload change happened and the batch
  application is resumed (SIGCONT).
* **beta learning**: if a resume is immediately followed by a new
  throttle, the phase change was too small — ``beta`` is incremented.
* **Anti-starvation**: if the sensitive app never changes phase, a
  random probe resume gives the batch app a chance; if it degrades QoS
  again it is simply paused again.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import StayAwayConfig
from repro.core.events import EventKind, EventLog

# The action stage drives the container actuators by design: in the
# paper it is the host's LXC runtime, here the simulator stands in for
# it (DESIGN.md). The exception/state value types are the boundary.
from repro.sim.container import ContainerError, ContainerState
from repro.telemetry.registry import MetricRegistry

if TYPE_CHECKING:
    from repro.sim.host import Host


class ResumeReason(enum.Enum):
    """Why the batch applications were last resumed."""

    PHASE_CHANGE = "phase-change"
    PROBE = "probe"


class ThrottleManager:
    """Owns the throttle state machine and the beta threshold."""

    def __init__(
        self,
        config: StayAwayConfig,
        events: EventLog,
        rng: Optional[np.random.Generator] = None,
        target_selector: Optional[Callable[[Host], List[str]]] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.config = config
        self.events = events
        self.rng = rng if rng is not None else np.random.default_rng(config.seed + 1)
        self._target_selector = target_selector
        self.beta = config.beta_initial
        self.throttling = False
        self.metrics = registry if registry is not None else MetricRegistry()
        self._c_throttles = self.metrics.counter(
            "action.throttles", help="throttle rounds fired (SIGSTOP batch)"
        )
        self._c_resumes = self.metrics.counter(
            "action.resumes", help="resume rounds (SIGCONT batch)"
        )
        self._c_probe_resumes = self.metrics.counter(
            "action.probe_resumes", help="anti-starvation probe resumes"
        )
        self._c_repauses = self.metrics.counter(
            "action.reconcile_repauses",
            help="externally-resumed containers re-paused by reconciliation",
        )
        self._c_drops = self.metrics.counter(
            "action.reconcile_drops",
            help="vanished containers dropped from the pause-set",
        )
        self._c_failed = self.metrics.counter(
            "action.failed", help="pause repairs that did not take effect"
        )
        self._c_escalations = self.metrics.counter(
            "action.escalations", help="repair retry budgets exhausted"
        )
        self._paused_names: List[str] = []
        self._last_resume_tick: Optional[int] = None
        self._last_resume_reason: Optional[ResumeReason] = None
        self._stagnant_periods = 0
        # Reconciliation bookkeeping: per-container (failures, next retry
        # tick) for repairs that did not take effect yet.
        self._retry: Dict[str, Tuple[int, int]] = {}

    # -- counters (registry-backed; setters exist for checkpoint restore) --
    @property
    def throttle_count(self) -> int:
        """Throttle rounds fired so far."""
        return int(self._c_throttles.value)

    @throttle_count.setter
    def throttle_count(self, value: int) -> None:
        self._c_throttles.set(value)

    @property
    def resume_count(self) -> int:
        """Resume rounds so far (probe resumes included)."""
        return int(self._c_resumes.value)

    @resume_count.setter
    def resume_count(self, value: int) -> None:
        self._c_resumes.set(value)

    @property
    def probe_resume_count(self) -> int:
        """Anti-starvation probe resumes so far."""
        return int(self._c_probe_resumes.value)

    @probe_resume_count.setter
    def probe_resume_count(self, value: int) -> None:
        self._c_probe_resumes.set(value)

    @property
    def reconcile_repauses(self) -> int:
        """Externally-resumed containers re-paused by reconciliation."""
        return int(self._c_repauses.value)

    @property
    def reconcile_drops(self) -> int:
        """Vanished containers dropped from the desired pause-set."""
        return int(self._c_drops.value)

    @property
    def failed_actions(self) -> int:
        """Pause repairs that did not take effect."""
        return int(self._c_failed.value)

    @property
    def escalations(self) -> int:
        """Repair retry budgets exhausted (operator attention needed)."""
        return int(self._c_escalations.value)

    # -- target selection -------------------------------------------------
    def throttle_targets(self, host: Host) -> List[str]:
        """Containers to pause when a throttle fires.

        By default: every running batch container. The paper
        collectively throttles "the batch applications consuming a
        majority share of resources" (§5); with the logical-VM
        aggregation every running batch container is part of that
        collective. A custom ``target_selector`` can widen the set —
        e.g. the §2.1 priority scheme also targets lower-priority
        sensitive containers (see :mod:`repro.core.priorities`).
        """
        if self._target_selector is not None:
            return self._target_selector(host)
        return [
            container.name
            for container in host.batch_containers()
            if container.is_running and not container.app.finished
        ]

    @property
    def desired_paused(self) -> List[str]:
        """Containers the manager believes it is currently pausing."""
        return list(self._paused_names)

    @property
    def pending_retries(self) -> Dict[str, int]:
        """Unresolved repair attempts: container name -> failure count."""
        return {name: failures for name, (failures, _) in self._retry.items()}

    # -- reconciliation ----------------------------------------------------
    def reconcile(self, tick: int, host: Host) -> None:
        """Repair drift between the desired pause-set and reality.

        External agents race the controller: an operator SIGCONTs a
        container we paused, a supervisor restarts a crash-looping job,
        an OOM-kill removes a paused container, an actuator fault
        swallows a signal. Each period the desired pause-set is diffed
        against actual container states; externally-resumed containers
        are re-paused with capped exponential backoff, vanished ones
        are dropped from the bookkeeping, and repeated failures raise
        an escalation event.
        """
        if not self.config.reconcile_actions or not self.throttling:
            return
        period = self.config.period
        for name in list(self._paused_names):
            container = host.containers.get(name)
            if container is None or container.state is ContainerState.STOPPED:
                self._paused_names.remove(name)
                self._retry.pop(name, None)
                self._c_drops.inc()
                self.events.record(
                    tick, EventKind.RECONCILE, target=name, action="drop"
                )
                continue
            if not container.is_running:
                self._retry.pop(name, None)
                continue
            # Externally resumed (or a pause that never landed).
            failures, next_tick = self._retry.get(name, (0, tick))
            if tick < next_tick:
                continue
            try:
                host.pause_container(name)
            except ContainerError:
                pass
            if name in host.containers and host.container(name).is_paused:
                self._retry.pop(name, None)
                self._c_repauses.inc()
                self.events.record(
                    tick,
                    EventKind.RECONCILE,
                    target=name,
                    action="repause",
                    retries=failures,
                )
            else:
                failures += 1
                backoff = min(2 ** failures, self.config.action_backoff_cap)
                self._retry[name] = (failures, tick + backoff * period)
                self._c_failed.inc()
                self.events.record(
                    tick, EventKind.ACTION_FAILED, target=name, failures=failures
                )
                if failures == self.config.action_escalation_threshold:
                    self._c_escalations.inc()
                    self.events.record(
                        tick,
                        EventKind.ACTION_ESCALATION,
                        target=name,
                        failures=failures,
                    )
        if not self._paused_names:
            self.throttling = False

    def preemptive_pause(self, tick: int, host: Host) -> bool:
        """Pause every throttle target immediately (degraded-mode entry).

        Flying blind — monitoring or QoS silent — the conservative move
        is to protect the sensitive application first and let the batch
        work wait until the channels resynchronize.
        """
        if self.throttling:
            return False
        targets = self.throttle_targets(host)
        if not targets:
            return False
        for name in targets:
            try:
                host.pause_container(name)
            except ContainerError:
                pass
        self._paused_names = targets
        self._retry.clear()
        self._seed_retries(tick, host, targets)
        self.throttling = True
        self._c_throttles.inc()
        self._stagnant_periods = 0
        self.events.record(
            tick,
            EventKind.THROTTLE,
            targets=list(targets),
            predicted=False,
            observed=False,
            degraded=True,
        )
        return True

    def _seed_retries(self, tick: int, host: Host, names: List[str]) -> None:
        """Register an immediate retry for any pause that did not land.

        A lost SIGSTOP leaves the container running while the pause-set
        believes it stopped; recording the pending repair *now* keeps
        the bookkeeping honest between reconciliation rounds.
        """
        if not self.config.reconcile_actions:
            return
        for name in names:
            container = host.containers.get(name)
            if container is not None and container.is_running:
                self._retry[name] = (0, tick)

    # -- the per-period decision ---------------------------------------------
    def step(
        self,
        tick: int,
        host: Host,
        impending_violation: bool,
        observed_violation: bool,
        sensitive_step_distance: Optional[float],
    ) -> bool:
        """Run one action round. Returns True when a throttle fired.

        Parameters
        ----------
        impending_violation:
            The predictor's majority vote tripped this period.
        observed_violation:
            The sensitive application actually reported a violation
            this period (reactive path used during early learning).
        sensitive_step_distance:
            Distance between the two most recent consecutive
            sensitive-only mapped states (None when unavailable, e.g.
            right after throttling).
        """
        if not self.config.enabled:
            return False
        if self.throttling:
            if self._consider_extension(
                tick, host, impending_violation, observed_violation
            ):
                return True
            self._consider_resume(tick, host, sensitive_step_distance)
            return False
        return self._consider_throttle(tick, host, impending_violation, observed_violation)

    def _consider_extension(
        self,
        tick: int,
        host: Host,
        impending_violation: bool,
        observed_violation: bool,
    ) -> bool:
        """Extend an active throttle to batch containers that arrived
        (or were manually resumed) after the original pause.

        Without this, a new batch job scheduled mid-throttle would run
        unthrottled while the manager waits to resume the old one.
        """
        should = impending_violation or (
            self.config.act_on_violation and observed_violation
        )
        if not should:
            return False
        newcomers = [
            name for name in self.throttle_targets(host) if name not in self._paused_names
        ]
        if not newcomers:
            return False
        for name in newcomers:
            host.pause_container(name)
        self._paused_names.extend(newcomers)
        self._seed_retries(tick, host, newcomers)
        self._c_throttles.inc()
        self._stagnant_periods = 0
        self.events.record(
            tick,
            EventKind.THROTTLE,
            targets=list(newcomers),
            predicted=impending_violation,
            observed=observed_violation,
            extension=True,
        )
        return True

    def _consider_throttle(
        self,
        tick: int,
        host: Host,
        impending_violation: bool,
        observed_violation: bool,
    ) -> bool:
        should = impending_violation or (
            self.config.act_on_violation and observed_violation
        )
        if not should:
            return False
        targets = self.throttle_targets(host)
        if not targets:
            return False
        for name in targets:
            host.pause_container(name)
        self._paused_names = targets
        self._retry.clear()
        self._seed_retries(tick, host, targets)
        self.throttling = True
        self._c_throttles.inc()
        self._stagnant_periods = 0
        self.events.record(
            tick,
            EventKind.THROTTLE,
            targets=list(targets),
            predicted=impending_violation,
            observed=observed_violation,
        )
        # A throttle right after a phase-change resume means beta was
        # too permissive: require a bigger phase change next time.
        if (
            self._last_resume_tick is not None
            and self._last_resume_reason is ResumeReason.PHASE_CHANGE
            and tick - self._last_resume_tick
            <= self.config.resume_grace * self.config.period
        ):
            self.beta += self.config.beta_increment
            self.events.record(tick, EventKind.BETA_INCREMENT, beta=self.beta)
        return True

    def _consider_resume(
        self, tick: int, host: Host, sensitive_step_distance: Optional[float]
    ) -> None:
        resumable = [
            name
            for name in self._paused_names
            if name in host.containers and host.container(name).is_paused
        ]
        if not resumable:
            # Batch jobs finished or were removed while paused.
            self.throttling = False
            self._paused_names = []
            self._retry.clear()
            return

        if sensitive_step_distance is not None and sensitive_step_distance > self.beta:
            self._resume(tick, host, resumable, ResumeReason.PHASE_CHANGE)
            return

        self._stagnant_periods += 1
        if self._stagnant_periods >= self.config.starvation_patience:
            if self.rng.uniform() < self.config.probe_probability:
                self._resume(tick, host, resumable, ResumeReason.PROBE)

    def _resume(
        self, tick: int, host: Host, names: List[str], reason: ResumeReason
    ) -> None:
        for name in names:
            host.resume_container(name)
        self.throttling = False
        self._paused_names = []
        self._retry.clear()
        self._stagnant_periods = 0
        self._last_resume_tick = tick
        self._last_resume_reason = reason
        self._c_resumes.inc()
        if reason is ResumeReason.PROBE:
            self._c_probe_resumes.inc()
            self.events.record(tick, EventKind.PROBE_RESUME, targets=list(names))
        else:
            self.events.record(
                tick, EventKind.RESUME, targets=list(names), beta=self.beta
            )
