"""The Action step: throttle and resume batch containers.

§3.3 of the paper:

* **Throttle**: send SIGSTOP to the batch application(s) when a
  transition toward a violation is predicted (or a violation is
  observed while learning).
* **Resume**: while throttled only the sensitive application runs; the
  consecutive mapped states of that isolated execution stay close while
  the sensitive app remains in the same phase. When the distance
  between consecutive states exceeds the learning parameter ``beta``
  (initially 0.01), a phase/workload change happened and the batch
  application is resumed (SIGCONT).
* **beta learning**: if a resume is immediately followed by a new
  throttle, the phase change was too small — ``beta`` is incremented.
* **Anti-starvation**: if the sensitive app never changes phase, a
  random probe resume gives the batch app a chance; if it degrades QoS
  again it is simply paused again.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

import numpy as np

from repro.core.config import StayAwayConfig
from repro.core.events import EventKind, EventLog
from repro.sim.host import Host


class ResumeReason(enum.Enum):
    """Why the batch applications were last resumed."""

    PHASE_CHANGE = "phase-change"
    PROBE = "probe"


class ThrottleManager:
    """Owns the throttle state machine and the beta threshold."""

    def __init__(
        self,
        config: StayAwayConfig,
        events: EventLog,
        rng: Optional[np.random.Generator] = None,
        target_selector: Optional[Callable[[Host], List[str]]] = None,
    ) -> None:
        self.config = config
        self.events = events
        self.rng = rng if rng is not None else np.random.default_rng(config.seed + 1)
        self._target_selector = target_selector
        self.beta = config.beta_initial
        self.throttling = False
        self.throttle_count = 0
        self.resume_count = 0
        self.probe_resume_count = 0
        self._paused_names: List[str] = []
        self._last_resume_tick: Optional[int] = None
        self._last_resume_reason: Optional[ResumeReason] = None
        self._stagnant_periods = 0

    # -- target selection -------------------------------------------------
    def throttle_targets(self, host: Host) -> List[str]:
        """Containers to pause when a throttle fires.

        By default: every running batch container. The paper
        collectively throttles "the batch applications consuming a
        majority share of resources" (§5); with the logical-VM
        aggregation every running batch container is part of that
        collective. A custom ``target_selector`` can widen the set —
        e.g. the §2.1 priority scheme also targets lower-priority
        sensitive containers (see :mod:`repro.core.priorities`).
        """
        if self._target_selector is not None:
            return self._target_selector(host)
        return [
            container.name
            for container in host.batch_containers()
            if container.is_running and not container.app.finished
        ]

    # -- the per-period decision ---------------------------------------------
    def step(
        self,
        tick: int,
        host: Host,
        impending_violation: bool,
        observed_violation: bool,
        sensitive_step_distance: Optional[float],
    ) -> bool:
        """Run one action round. Returns True when a throttle fired.

        Parameters
        ----------
        impending_violation:
            The predictor's majority vote tripped this period.
        observed_violation:
            The sensitive application actually reported a violation
            this period (reactive path used during early learning).
        sensitive_step_distance:
            Distance between the two most recent consecutive
            sensitive-only mapped states (None when unavailable, e.g.
            right after throttling).
        """
        if not self.config.enabled:
            return False
        if self.throttling:
            if self._consider_extension(
                tick, host, impending_violation, observed_violation
            ):
                return True
            self._consider_resume(tick, host, sensitive_step_distance)
            return False
        return self._consider_throttle(tick, host, impending_violation, observed_violation)

    def _consider_extension(
        self,
        tick: int,
        host: Host,
        impending_violation: bool,
        observed_violation: bool,
    ) -> bool:
        """Extend an active throttle to batch containers that arrived
        (or were manually resumed) after the original pause.

        Without this, a new batch job scheduled mid-throttle would run
        unthrottled while the manager waits to resume the old one.
        """
        should = impending_violation or (
            self.config.act_on_violation and observed_violation
        )
        if not should:
            return False
        newcomers = [
            name for name in self.throttle_targets(host) if name not in self._paused_names
        ]
        if not newcomers:
            return False
        for name in newcomers:
            host.pause_container(name)
        self._paused_names.extend(newcomers)
        self.throttle_count += 1
        self._stagnant_periods = 0
        self.events.record(
            tick,
            EventKind.THROTTLE,
            targets=list(newcomers),
            predicted=impending_violation,
            observed=observed_violation,
            extension=True,
        )
        return True

    def _consider_throttle(
        self,
        tick: int,
        host: Host,
        impending_violation: bool,
        observed_violation: bool,
    ) -> bool:
        should = impending_violation or (
            self.config.act_on_violation and observed_violation
        )
        if not should:
            return False
        targets = self.throttle_targets(host)
        if not targets:
            return False
        for name in targets:
            host.pause_container(name)
        self._paused_names = targets
        self.throttling = True
        self.throttle_count += 1
        self._stagnant_periods = 0
        self.events.record(
            tick,
            EventKind.THROTTLE,
            targets=list(targets),
            predicted=impending_violation,
            observed=observed_violation,
        )
        # A throttle right after a phase-change resume means beta was
        # too permissive: require a bigger phase change next time.
        if (
            self._last_resume_tick is not None
            and self._last_resume_reason is ResumeReason.PHASE_CHANGE
            and tick - self._last_resume_tick
            <= self.config.resume_grace * self.config.period
        ):
            self.beta += self.config.beta_increment
            self.events.record(tick, EventKind.BETA_INCREMENT, beta=self.beta)
        return True

    def _consider_resume(
        self, tick: int, host: Host, sensitive_step_distance: Optional[float]
    ) -> None:
        resumable = [
            name
            for name in self._paused_names
            if name in host.containers and host.container(name).is_paused
        ]
        if not resumable:
            # Batch jobs finished or were removed while paused.
            self.throttling = False
            self._paused_names = []
            return

        if sensitive_step_distance is not None and sensitive_step_distance > self.beta:
            self._resume(tick, host, resumable, ResumeReason.PHASE_CHANGE)
            return

        self._stagnant_periods += 1
        if self._stagnant_periods >= self.config.starvation_patience:
            if self.rng.uniform() < self.config.probe_probability:
                self._resume(tick, host, resumable, ResumeReason.PROBE)

    def _resume(
        self, tick: int, host: Host, names: List[str], reason: ResumeReason
    ) -> None:
        for name in names:
            host.resume_container(name)
        self.throttling = False
        self._paused_names = []
        self._stagnant_periods = 0
        self._last_resume_tick = tick
        self._last_resume_reason = reason
        self.resume_count += 1
        if reason is ResumeReason.PROBE:
            self.probe_resume_count += 1
            self.events.record(tick, EventKind.PROBE_RESUME, targets=list(names))
        else:
            self.events.record(
                tick, EventKind.RESUME, targets=list(names), beta=self.beta
            )
