"""Degraded-mode state machine: survive silent sensors and QoS channels.

The paper assumes a cooperative host: the monitoring agent ticks every
period and the sensitive application reports QoS whenever asked. On a
hostile host either channel can go silent — the agent crashes, samples
are dropped, the application wedges. Predictions made over a stale map
with unlabeled states are worse than no predictions, so the controller
runs a small health state machine:

* **PREDICTIVE** — both channels fresh; the full Mapping → Prediction →
  Action mechanism runs.
* **DEGRADED** — a channel has been silent past its deadline. The
  controller stops trusting the predictor (no preemptive throttles) and
  falls back to the conservative reactive policy: throttle only on
  *observed* violations, optionally pausing the batch preemptively on
  entry. Learning continues on whatever healthy data still arrives.

Re-entry to PREDICTIVE requires ``resync_periods`` consecutive healthy
periods — a single good sample after an outage is not resynchronization.
Every transition is recorded in the :class:`~repro.core.events.EventLog`
(``DEGRADED_ENTER`` / ``DEGRADED_EXIT``).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.events import EventKind, EventLog


class ControllerHealth(enum.Enum):
    """Health state of the controller's input channels."""

    PREDICTIVE = "predictive"
    DEGRADED = "degraded"


class DegradedModeMachine:
    """Tracks channel freshness and decides the controller's health state.

    Parameters
    ----------
    events:
        Event log receiving transition records.
    monitoring_deadline:
        Ticks of monitoring silence (no usable measurement, or no
        controller invocation at all) before degrading.
    qos_deadline:
        Ticks of QoS silence before degrading. Silence only counts once
        the channel has produced at least one report — an application
        that has not started yet is "learning", not "down".
    resync_periods:
        Consecutive healthy periods required to leave DEGRADED.
    """

    def __init__(
        self,
        events: EventLog,
        monitoring_deadline: int = 10,
        qos_deadline: int = 10,
        resync_periods: int = 3,
    ) -> None:
        if monitoring_deadline < 1:
            raise ValueError("monitoring_deadline must be >= 1")
        if qos_deadline < 1:
            raise ValueError("qos_deadline must be >= 1")
        if resync_periods < 1:
            raise ValueError("resync_periods must be >= 1")
        self.events = events
        self.monitoring_deadline = monitoring_deadline
        self.qos_deadline = qos_deadline
        self.resync_periods = resync_periods
        self.state = ControllerHealth.PREDICTIVE
        self.degraded_entries = 0
        self.degraded_periods = 0
        self.transitions: List[tuple] = []
        self._last_update_tick: Optional[int] = None
        self._last_good_monitoring_tick: Optional[int] = None
        self._last_qos_tick: Optional[int] = None
        self._healthy_streak = 0
        self._entered_this_update = False

    # -- channel freshness ---------------------------------------------------
    def _silent_reasons(self, tick: int, previous_update: Optional[int]) -> List[str]:
        """Silence diagnoses for this period.

        Called *after* this period's freshness was credited, so a good
        sample arriving right now immediately clears its channel — the
        first healthy period after an outage counts toward resync.
        ``previous_update`` is the update tick before this one: a large
        gap there means the controller itself was not invoked (the
        monitoring middleware went dark wholesale).
        """
        reasons: List[str] = []
        if (
            previous_update is not None
            and tick - previous_update > self.monitoring_deadline
        ):
            reasons.append("monitoring-gap")
        if (
            self._last_good_monitoring_tick is not None
            and tick - self._last_good_monitoring_tick > self.monitoring_deadline
        ):
            reasons.append("monitoring-silent")
        if (
            self._last_qos_tick is not None
            and tick - self._last_qos_tick > self.qos_deadline
        ):
            reasons.append("qos-silent")
        return reasons

    # -- the per-period entry point -------------------------------------------
    def update(self, tick: int, monitoring_ok: bool, qos_fresh: bool) -> ControllerHealth:
        """Feed one period's channel health; returns the new state.

        Parameters
        ----------
        monitoring_ok:
            A usable (accepted or imputed-within-budget) measurement
            vector exists this period.
        qos_fresh:
            The QoS channel produced at least one report since the
            previous period.
        """
        self._entered_this_update = False
        previous_update = self._last_update_tick
        self._last_update_tick = tick
        if monitoring_ok:
            self._last_good_monitoring_tick = tick
        if qos_fresh:
            self._last_qos_tick = tick
        reasons = self._silent_reasons(tick, previous_update)

        healthy_now = monitoring_ok and qos_fresh and not reasons

        if self.state is ControllerHealth.PREDICTIVE:
            # Instant monitoring trouble (unusable sample) or a deadline
            # breach degrades; mere QoS staleness within its deadline
            # does not.
            if reasons or not monitoring_ok:
                self._enter_degraded(tick, reasons or ["monitoring-unusable"])
        else:
            self.degraded_periods += 1
            if healthy_now:
                self._healthy_streak += 1
                if self._healthy_streak >= self.resync_periods:
                    self._exit_degraded(tick)
            else:
                self._healthy_streak = 0
        return self.state

    def force_degraded(self, tick: int, reason: str) -> None:
        """Drop into DEGRADED immediately for a controller-internal fault.

        Used by the fault-containment runtime when a mapping or
        prediction circuit breaker trips: the learned model can no
        longer be trusted even though both *input* channels are healthy,
        so the controller falls back to the reactive-only policy. The
        normal resync rule applies on the way out — ``resync_periods``
        consecutive healthy periods re-enter PREDICTIVE.
        """
        if self.state is ControllerHealth.DEGRADED:
            return
        self._enter_degraded(tick, [reason])

    def _enter_degraded(self, tick: int, reasons: List[str]) -> None:
        self.state = ControllerHealth.DEGRADED
        self.degraded_entries += 1
        self.degraded_periods += 1
        self._healthy_streak = 0
        self._entered_this_update = True
        self.transitions.append((tick, ControllerHealth.DEGRADED, tuple(reasons)))
        self.events.record(tick, EventKind.DEGRADED_ENTER, reasons=list(reasons))

    def _exit_degraded(self, tick: int) -> None:
        self.state = ControllerHealth.PREDICTIVE
        self._healthy_streak = 0
        self.transitions.append((tick, ControllerHealth.PREDICTIVE, ()))
        self.events.record(
            tick, EventKind.DEGRADED_EXIT, resync_periods=self.resync_periods
        )

    # -- introspection -----------------------------------------------------
    @property
    def predictive(self) -> bool:
        """True while predictions may be acted upon."""
        return self.state is ControllerHealth.PREDICTIVE

    @property
    def entered_degraded_now(self) -> bool:
        """True when the last ``update`` transitioned into DEGRADED."""
        return self._entered_this_update

    def summary(self) -> dict:
        """Counters for reports and tests."""
        return {
            "state": self.state.value,
            "degraded_entries": self.degraded_entries,
            "degraded_periods": self.degraded_periods,
        }
