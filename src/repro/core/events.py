"""Structured event records emitted by the Stay-Away runtime."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List


class EventKind(enum.Enum):
    """Everything noteworthy the runtime does or observes."""

    VIOLATION = "violation"          # sensitive app reported a QoS violation
    PREDICTED_VIOLATION = "predicted-violation"  # majority vote tripped
    THROTTLE = "throttle"            # batch containers paused (SIGSTOP)
    RESUME = "resume"                # batch containers resumed (SIGCONT)
    PROBE_RESUME = "probe-resume"    # anti-starvation random resume
    BETA_INCREMENT = "beta-increment"  # premature resume detected
    REFIT = "refit"                  # full SMACOF refit of the map
    NEW_STATE = "new-state"          # new representative added to the map
    SENSOR_REJECT = "sensor-reject"  # guard refused a measurement vector
    DEGRADED_ENTER = "degraded-enter"  # fell back to reactive-only policy
    DEGRADED_EXIT = "degraded-exit"  # resynchronized into predictive mode
    RECONCILE = "reconcile"          # desired/actual pause-set drift repaired
    ACTION_FAILED = "action-failed"  # pause/resume did not take effect
    ACTION_ESCALATION = "action-escalation"  # retries exhausted on a target
    CHECKPOINT_RESTORED = "checkpoint-restored"  # learned state reloaded
    FIREWALL_CATCH = "firewall-catch"  # stage exception contained, period degraded
    BREAKER_TRIP = "breaker-trip"      # stage error budget exhausted, stage open
    BREAKER_PROBE = "breaker-probe"    # half-open breaker let a probe through
    BREAKER_RESET = "breaker-reset"    # probes succeeded, stage closed again
    MODEL_QUARANTINE = "model-quarantine"  # poisoned states removed from the map
    MODEL_ROLLBACK = "model-rollback"  # learned models rolled back to last good
    MODEL_SNAPSHOT = "model-snapshot"  # last-known-good snapshot captured


@dataclass(frozen=True)
class Event:
    """One timestamped runtime event.

    Attributes
    ----------
    tick:
        Tick at which the event happened.
    kind:
        Event category.
    detail:
        Free-form payload (state indices, beta values, ...).
    """

    tick: int
    kind: EventKind
    detail: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only log with simple filters."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(self, tick: int, kind: EventKind, **detail: Any) -> Event:
        """Append and return a new event."""
        event = Event(tick=tick, kind=kind, detail=dict(detail))
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> List[Event]:
        """All events in insertion order (shared list; do not mutate)."""
        return self._events

    def of_kind(self, kind: EventKind) -> List[Event]:
        """Events of one kind, in order."""
        return [event for event in self._events if event.kind is kind]

    def count(self, kind: EventKind) -> int:
        """How many events of a kind were recorded."""
        return sum(1 for event in self._events if event.kind is kind)

    def last_of_kind(self, kind: EventKind) -> Event:
        """Most recent event of a kind (raises if none)."""
        for event in reversed(self._events):
            if event.kind is kind:
                return event
        raise LookupError(f"no event of kind {kind}")
