"""The Prediction step: forecast the next mapped-state, vote on danger.

Per period (§3.2):

* feed the current mapped-state into the trajectory model of the
  current execution mode;
* once the mode's step pdfs have a first approximation, draw
  ``n_samples`` candidate next positions by inverse-transform sampling;
* count how many candidates fall inside a violation-range; when the
  majority does, flag an impending violation.

The predictor also keeps an accuracy ledger: whenever no action
intervened between a prediction and the next observation, the realized
state is compared against the prediction (both positionally and as a
violation/no-violation outcome) — the basis of the paper's ">90%
accuracy with 5 samples" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import StayAwayConfig
from repro.core.state_space import StateSpace
from repro.trajectory.modes import ExecutionMode, ModeModelBank


@dataclass(frozen=True)
class Prediction:
    """Outcome of one prediction round.

    Attributes
    ----------
    tick:
        Tick the prediction was made at (about the *next* period).
    mode:
        Execution mode whose model produced the forecast.
    candidates:
        ``(n, 2)`` candidate next positions (empty if not ready).
    votes:
        Number of candidates inside a violation-range.
    ready:
        Whether the mode model had enough steps to predict at all.
    impending_violation:
        True when ``votes`` reached the configured majority.
    """

    tick: int
    mode: ExecutionMode
    candidates: np.ndarray
    votes: int
    ready: bool
    impending_violation: bool

    @property
    def expected_position(self) -> Optional[np.ndarray]:
        """Mean of the candidate cloud (None when not ready)."""
        if self.candidates.size == 0:
            return None
        return self.candidates.mean(axis=0)


@dataclass
class AccuracyRecord:
    """One verifiable prediction vs its realized outcome."""

    tick: int
    mode: ExecutionMode
    predicted_violation: bool
    actual_violation: bool
    position_error: float
    step_scale: float

    @property
    def outcome_correct(self) -> bool:
        return self.predicted_violation == self.actual_violation


class Predictor:
    """Per-mode trajectory learning + majority-vote violation forecasts.

    Parameters
    ----------
    config / rng:
        Tunables and the candidate-sampling RNG stream.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` recording forecast
        counters (``prediction.rounds`` / ``.flags`` / ``.not_ready`` /
        ``.samples_drawn``) and the ``prediction.votes`` histogram.
    """

    def __init__(
        self,
        config: StayAwayConfig,
        rng: Optional[np.random.Generator] = None,
        telemetry=None,
    ):
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.modes = ModeModelBank(
            window=config.trajectory_window, bins=config.histogram_bins
        )
        self.predictions: List[Prediction] = []
        self.accuracy_records: List[AccuracyRecord] = []
        self._pending: Optional[Prediction] = None
        self._pending_invalidated = False
        self.telemetry = telemetry
        if telemetry is not None:
            self._c_rounds = telemetry.counter(
                "prediction.rounds", help="prediction rounds attempted"
            )
            self._c_not_ready = telemetry.counter(
                "prediction.not_ready", help="rounds skipped: model still learning"
            )
            self._c_flags = telemetry.counter(
                "prediction.flags", help="impending-violation majority votes"
            )
            self._c_samples = telemetry.counter(
                "prediction.samples_drawn", help="candidate next-states sampled"
            )
            self._h_votes = telemetry.histogram(
                "prediction.votes",
                help="violation-range votes per ready round",
                buckets=tuple(float(v) for v in range(config.n_samples + 1)),
            )

    def _model_mode(self, mode: ExecutionMode) -> ExecutionMode:
        """Which model bucket a mode maps to.

        With ``per_mode_models=False`` (ablation) every observation and
        forecast shares one global model — the configuration the paper
        found inadequate ("no single prediction model can accurately
        model all the state transitions", §3.2.3).
        """
        if self.config.per_mode_models:
            return mode
        return ExecutionMode.COLOCATED

    # -- learning ----------------------------------------------------------
    def observe(
        self,
        tick: int,
        mode: ExecutionMode,
        coords: np.ndarray,
        state_space: StateSpace,
        actually_violated: bool,
    ) -> None:
        """Feed the realized mapped-state; settles any pending prediction."""
        coords = np.asarray(coords, dtype=float)
        if self._pending is not None and not self._pending_invalidated:
            self._settle(self._pending, coords, actually_violated)
        self._pending = None
        self._pending_invalidated = False
        self.modes.observe(self._model_mode(mode), coords)

    def _settle(
        self, prediction: Prediction, actual: np.ndarray, actually_violated: bool
    ) -> None:
        if not prediction.ready:
            return
        expected = prediction.expected_position
        error = float(np.linalg.norm(actual - expected)) if expected is not None else 0.0
        model = self.modes.model(self._model_mode(prediction.mode))
        self.accuracy_records.append(
            AccuracyRecord(
                tick=prediction.tick,
                mode=prediction.mode,
                predicted_violation=prediction.impending_violation,
                actual_violation=actually_violated,
                position_error=error,
                step_scale=max(model.mean_step_length(), 1e-12),
            )
        )

    def invalidate_pending(self) -> None:
        """Discard the outstanding prediction (an action intervened).

        When Stay-Away throttles, the predicted co-located next state
        never materializes, so comparing it against the post-throttle
        state would be meaningless.
        """
        self._pending_invalidated = True

    # -- forecasting ---------------------------------------------------------
    def predict(
        self, tick: int, mode: ExecutionMode, current: np.ndarray, state_space: StateSpace
    ) -> Prediction:
        """Forecast the next period's state and vote against violation-ranges."""
        model = self.modes.model(self._model_mode(mode))
        ready = model.ready(self.config.min_steps_for_prediction)
        if not ready:
            prediction = Prediction(
                tick=tick,
                mode=mode,
                candidates=np.empty((0, 2)),
                votes=0,
                ready=False,
                impending_violation=False,
            )
        else:
            candidates = model.predict_candidates(
                np.asarray(current, dtype=float), self.rng, self.config.n_samples
            )
            votes = state_space.violation_vote(candidates)
            impending = votes >= self.config.vote_threshold()
            prediction = Prediction(
                tick=tick,
                mode=mode,
                candidates=candidates,
                votes=votes,
                ready=True,
                impending_violation=impending,
            )
        if self.telemetry is not None:
            self._c_rounds.inc()
            if not ready:
                self._c_not_ready.inc()
            else:
                self._c_samples.inc(len(prediction.candidates))
                self._h_votes.observe(float(prediction.votes))
                if prediction.impending_violation:
                    self._c_flags.inc()
        self.predictions.append(prediction)
        self._pending = prediction
        self._pending_invalidated = False
        return prediction

    # -- accuracy ledger -------------------------------------------------------
    def outcome_accuracy(self) -> float:
        """Fraction of settled predictions whose violation verdict was right."""
        if not self.accuracy_records:
            return 0.0
        correct = sum(1 for record in self.accuracy_records if record.outcome_correct)
        return correct / len(self.accuracy_records)

    def position_accuracy(self, tolerance_steps: float = 2.0) -> float:
        """Fraction of settled predictions within ``tolerance_steps`` mean steps."""
        if not self.accuracy_records:
            return 0.0
        hits = sum(
            1
            for record in self.accuracy_records
            if record.position_error <= tolerance_steps * record.step_scale
        )
        return hits / len(self.accuracy_records)
