"""Multiple sensitive applications with priorities (§2.1).

The paper's constraint is that "either best-effort batch applications
are scheduled with latency sensitive applications or multiple sensitive
applications are scheduled with the notion of priorities. ... if
multiple sensitive applications are co-scheduled Stay-Away can choose
to migrate or scale resources of the lower priority sensitive
application."

:class:`PrioritizedStayAway` implements that scheme with the throttling
action: one Stay-Away controller protects each sensitive application,
and when the controller of a *higher*-priority application needs to
act, its throttle targets include both the batch containers and every
*lower*-priority sensitive container. The lowest-priority application
is therefore best-effort relative to all others, exactly mirroring the
two-class case recursively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.config import StayAwayConfig
from repro.core.controller import StayAway

if TYPE_CHECKING:
    from repro.sim.host import Host, HostSnapshot
    from repro.workloads.base import Application


@dataclass(frozen=True)
class PrioritizedApp:
    """One sensitive application with its priority (higher = stricter QoS)."""

    app: Application
    priority: int

    def __post_init__(self) -> None:
        if not self.app.is_sensitive:
            raise ValueError(
                f"{self.app.name!r} is not a sensitive application"
            )


class PrioritizedStayAway:
    """A coordinator of per-application Stay-Away controllers.

    Parameters
    ----------
    apps:
        ``(application, priority)`` pairs; priorities must be unique so
        the demotion order is total.
    config:
        Shared configuration template; each controller gets its own
        seeded copy (seed offset by its rank) so their RNG streams do
        not collide.
    """

    def __init__(
        self,
        apps: Sequence[Tuple[Application, int]],
        config: Optional[StayAwayConfig] = None,
    ) -> None:
        if not apps:
            raise ValueError("need at least one sensitive application")
        priorities = [priority for _, priority in apps]
        if len(set(priorities)) != len(priorities):
            raise ValueError(f"priorities must be unique, got {priorities}")
        base_config = config if config is not None else StayAwayConfig()

        self.entries: List[PrioritizedApp] = sorted(
            (PrioritizedApp(app=app, priority=priority) for app, priority in apps),
            key=lambda entry: -entry.priority,
        )
        self._priority_by_app: Dict[str, int] = {
            entry.app.name: entry.priority for entry in self.entries
        }
        self.controllers: Dict[str, StayAway] = {}
        for rank, entry in enumerate(self.entries):
            controller_config = StayAwayConfig(
                **{**base_config.__dict__, "seed": base_config.seed + rank}
            )
            selector = self._make_selector(entry.priority)
            self.controllers[entry.app.name] = StayAway(
                entry.app,
                config=controller_config,
                throttle_target_selector=selector,
            )

    def _make_selector(self, protected_priority: int):
        """Throttle targets for a controller protecting one priority level."""

        def selector(host: Host) -> List[str]:
            targets: List[str] = []
            for container in host.containers.values():
                if not container.is_running or container.app.finished:
                    continue
                if not container.sensitive:
                    targets.append(container.name)
                    continue
                victim_priority = self._priority_by_app.get(container.app.name)
                if (
                    victim_priority is not None
                    and victim_priority < protected_priority
                ):
                    targets.append(container.name)
            return targets

        return selector

    def controller_for(self, app_name: str) -> StayAway:
        """The controller protecting one application."""
        return self.controllers[app_name]

    def priority_of(self, app_name: str) -> int:
        """Priority of one registered application."""
        return self._priority_by_app[app_name]

    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """Run every controller, highest priority first.

        Priority order matters: a high-priority controller's throttle
        this period removes its victims from lower-priority
        controllers' views immediately.
        """
        for entry in self.entries:
            self.controllers[entry.app.name].on_tick(snapshot, host)

    def summary(self) -> Dict[str, dict]:
        """Per-application controller summaries."""
        return {
            name: controller.summary()
            for name, controller in self.controllers.items()
        }
