"""The Stay-Away controller: Mapping -> Prediction -> Action each period.

:class:`StayAway` is a simulation middleware (see
:class:`~repro.sim.engine.Middleware`): register it on a
:class:`~repro.sim.engine.SimulationEngine` alongside the host and it
will monitor, map, predict and throttle exactly as the paper's runtime
does on a physical host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.action import ThrottleManager
from repro.core.breakers import BreakerBank
from repro.core.config import StayAwayConfig
from repro.core.events import EventKind, EventLog
from repro.core.mapping import MappingPipeline
from repro.core.model_health import ModelHealthWatchdog
from repro.core.prediction import Prediction, Predictor
from repro.core.resilience import DegradedModeMachine
from repro.core.state_space import StateLabel, StateSpace
from repro.core.template import MapTemplate
from repro.monitoring.collector import MetricsCollector
from repro.monitoring.guard import SensorGuard
from repro.monitoring.normalize import CapacityNormalizer
from repro.monitoring.qos import QosTracker
from repro.telemetry import Telemetry
from repro.trajectory.modes import ExecutionMode, classify_mode

if TYPE_CHECKING:
    from repro.sim.host import Host, HostSnapshot
    from repro.workloads.base import Application


class _StageOutcome:
    """Sentinel for a stage that produced no result this period."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<stage {self.name}>"


#: The stage raised and the firewall contained it.
STAGE_FAILED = _StageOutcome("failed")
#: The stage's circuit breaker is OPEN; it was skipped entirely.
STAGE_OPEN = _StageOutcome("open")


@dataclass(frozen=True)
class TrajectoryPoint:
    """One controller period in the mapped space (for figures/analysis).

    Attributes
    ----------
    tick:
        Tick of the period.
    coords:
        Mapped 2-D coordinates.
    mode:
        Execution mode during the period.
    label:
        Safe/violation label of the underlying state.
    throttling:
        Whether batch containers were paused during this period
        (the "Action status" annotation of Figs. 6-7).
    """

    tick: int
    coords: np.ndarray
    mode: ExecutionMode
    label: StateLabel
    throttling: bool


class StayAway:
    """The paper's adaptive interference-mitigation runtime.

    Parameters
    ----------
    sensitive_app:
        The latency-sensitive application whose QoS reports label
        violation states. (Multiple sensitive apps can be protected by
        running one controller per app in the paper's priority scheme;
        the reproduction follows the paper's evaluated configuration of
        one sensitive app per host.)
    config:
        Tunables; defaults follow the paper.
    template:
        Optional map template from a previous execution of the same
        sensitive application (§6).
    throttle_target_selector:
        Optional override for which containers a throttle pauses (the
        §2.1 priority scheme uses this to demote lower-priority
        sensitive tenants; see :mod:`repro.core.priorities`).
    violation_detector:
        Optional replacement for the application-reported QoS channel —
        any QosTracker-compatible object, e.g.
        :class:`~repro.monitoring.ipc.IpcViolationDetector` for the
        §3.1 counter-based alternative that needs no application
        cooperation.
    telemetry:
        Optional pre-built :class:`~repro.telemetry.Telemetry`; by
        default one is created per controller, enabled according to
        ``config.telemetry``. All stage timers, trace spans and the
        guard/throttle counters share its registry.
    aux_detector:
        Optional auxiliary threshold detector whose verdict votes
        alongside the trajectory predictor when ``config.detector_mode
        == "hybrid"``. Duck-typed (``bind(labels, sensitive,
        cpu_capacity)`` + ``update(tick, measurement) -> bool``) so the
        control loop never imports the baselines layer; the standard
        implementation is
        :class:`~repro.baselines.gmm_threshold.GmmThresholdModel`,
        injected by ``experiments.runner``.
    """

    def __init__(
        self,
        sensitive_app: Application,
        config: Optional[StayAwayConfig] = None,
        template: Optional[MapTemplate] = None,
        throttle_target_selector=None,
        violation_detector=None,
        telemetry: Optional[Telemetry] = None,
        aux_detector=None,
    ) -> None:
        self.config = config if config is not None else StayAwayConfig()
        self.sensitive_app = sensitive_app
        self.events = EventLog()
        if telemetry is not None:
            self.telemetry = telemetry
        else:
            self.telemetry = Telemetry(
                enabled=self.config.telemetry,
                max_spans=self.config.telemetry_max_spans,
            )
        if template is not None:
            self.state_space = template.build_state_space(
                refit_interval=self.config.refit_interval,
                smacof_max_iter=self.config.smacof_max_iter,
                radius_law=self.config.radius_law,
                fixed_radius=self.config.fixed_radius,
            )
        else:
            self.state_space = StateSpace(
                epsilon=self.config.dedup_epsilon,
                refit_interval=self.config.refit_interval,
                smacof_max_iter=self.config.smacof_max_iter,
                radius_law=self.config.radius_law,
                fixed_radius=self.config.fixed_radius,
            )
        self.state_space.telemetry = self.telemetry
        self.collector = MetricsCollector(aggregate_batch=self.config.aggregate_batch)
        if violation_detector is not None:
            self.qos = violation_detector
        else:
            self.qos = QosTracker(sensitive_app)
        self.predictor = Predictor(self.config, telemetry=self.telemetry)
        self.throttle = ThrottleManager(
            self.config,
            self.events,
            target_selector=throttle_target_selector,
            registry=self.telemetry.registry,
        )
        self.mapping: Optional[MappingPipeline] = None
        self.trajectory: List[TrajectoryPoint] = []
        if template is not None:
            self.throttle.beta = template.beta
        self.guard: Optional[SensorGuard] = None
        self.health: Optional[DegradedModeMachine] = None
        if self.config.degraded_mode:
            self.health = DegradedModeMachine(
                self.events,
                monitoring_deadline=self.config.monitoring_deadline,
                qos_deadline=self.config.qos_deadline,
                resync_periods=self.config.resync_periods,
            )
        self.breakers: Optional[BreakerBank] = None
        if self.config.fault_containment:
            self.breakers = BreakerBank(
                self.config, self.events, registry=self.telemetry.registry
            )
        self.watchdog: Optional[ModelHealthWatchdog] = None
        if self.config.model_watchdog:
            self.watchdog = ModelHealthWatchdog(
                self.config, self.events, telemetry=self.telemetry
            )
        self.aux_detector = aux_detector
        if self.config.detector_mode == "hybrid" and aux_detector is None:
            raise ValueError(
                "detector_mode='hybrid' needs an aux_detector (e.g. a "
                "GmmThresholdModel); experiments.runner wires one"
            )
        #: Periods where the acted-on impending-violation signal fired
        #: (geometry, GMM or both) — the head-to-head study's alarm
        #: stream.
        self.alarm_ticks: List[int] = []
        self._qos_reports_seen = 0
        self._prev_coords: Optional[np.ndarray] = None
        self._prev_mode: Optional[ExecutionMode] = None
        self.last_prediction: Optional[Prediction] = None
        self._c_firewall = self.telemetry.counter(
            "containment.firewall_catches",
            help="stage exceptions contained by the firewall",
        )
        self._c_periods = self.telemetry.counter(
            "controller.periods", help="controller periods executed"
        )
        self._c_gaps = self.telemetry.counter(
            "controller.monitoring_gaps", help="periods with no usable measurement"
        )
        self._g_beta = self.telemetry.gauge(
            "action.beta", help="current learned resume threshold"
        )
        self._g_beta.set(self.throttle.beta)

    # -- middleware interface -------------------------------------------------
    def on_tick(self, snapshot: HostSnapshot, host: Host) -> None:
        """One monitoring tick; runs the full mechanism every period."""
        self.collector.on_tick(snapshot, host)
        self.qos.on_tick(snapshot, host)
        if snapshot.tick % self.config.period != 0:
            return
        self._run_period(snapshot, host)

    def _run_period(self, snapshot: HostSnapshot, host: Host) -> None:
        """One controller period, wrapped in its telemetry span."""
        with self.telemetry.stage("controller.period", tick=snapshot.tick):
            self._period(snapshot, host)
        self._c_periods.inc()
        self._g_beta.set(self.throttle.beta)

    def _period(self, snapshot: HostSnapshot, host: Host) -> None:
        tick = snapshot.tick
        if self.mapping is None:
            normalizer = CapacityNormalizer(
                host.capacity, vm_count=len(self.collector.vm_names)
            )
            self.mapping = MappingPipeline(
                normalizer, self.state_space, telemetry=self.telemetry
            )
            if self.config.sensor_guard and self.guard is None:
                self.guard = SensorGuard(
                    plausible_max=normalizer.scale
                    * self.config.guard_plausibility_factor,
                    staleness_budget=self.config.guard_staleness_budget,
                    freeze_patience=self.config.guard_freeze_patience,
                    registry=self.telemetry.registry,
                )
            if self.aux_detector is not None and not getattr(
                self.aux_detector, "bound", False
            ):
                # Collector labels carry *container* names, which need
                # not match the protected application's own name.
                sensitive_name = next(
                    (
                        container.name
                        for container in host.containers.values()
                        if container.app is self.sensitive_app
                    ),
                    self.sensitive_app.name,
                )
                self.aux_detector.bind(
                    self.collector.labels,
                    sensitive_name,
                    host.capacity.cpu,
                )

        # 0. Reconcile the desired pause-set against reality before
        #    deciding anything on top of stale bookkeeping.
        with self.telemetry.stage("controller.reconcile"):
            self.throttle.reconcile(tick, host)

        violated = self.qos.violation_now
        if violated:
            self.events.record(tick, EventKind.VIOLATION)

        mode = self._classify_mode(host)

        # 0b. Sensor guard: validate/impute the raw measurement. A
        #     guard failure blinds this period (treated as a gap), it
        #     does not crash the run.
        guarded = self._call_stage("guard", tick, self._stage_guard, tick)
        if isinstance(guarded, _StageOutcome):
            measurement, monitoring_ok = None, False
        else:
            measurement, monitoring_ok = guarded

        # 0c. Health state machine: degrade on silent channels,
        #     resynchronize before trusting predictions again.
        if self.health is not None:
            self.health.update(
                tick, monitoring_ok=monitoring_ok, qos_fresh=self._qos_channel_fresh()
            )
            if self.health.entered_degraded_now and self.config.degraded_pause_batch:
                self.throttle.preemptive_pause(tick, host)
        predictive_allowed = self.health is None or self.health.predictive

        # 0d. Model-health watchdog: heal a poisoned learned state
        #     *before* this period maps or predicts over it.
        if self.watchdog is not None:
            self.watchdog.check_and_heal(tick, self)

        # 1. Mapping. A contained mapping failure (or an OPEN mapping
        #    breaker) degrades this period to the monitoring-gap path.
        mapped = None
        if measurement is not None:
            result = self._call_stage(
                "map", tick, self._stage_map, tick, measurement, violated
            )
            if not isinstance(result, _StageOutcome):
                mapped = result
                if mapped.is_new_state:
                    self.events.record(
                        tick, EventKind.NEW_STATE, index=mapped.state_index
                    )
                if mapped.refitted:
                    self.events.record(
                        tick, EventKind.REFIT, states=len(self.state_space)
                    )

        if mapped is None:
            # Monitoring gap or contained mapping failure: nothing to
            # map. Stay conservative — keep reacting to observed
            # violations so the sensitive app is not left unprotected
            # while blind.
            self._c_gaps.inc()
            self._act(
                tick,
                host,
                impending=False,
                observed=violated and mode is ExecutionMode.COLOCATED,
                distance=None,
            )
            self._prev_coords = None
            self._prev_mode = mode
            return

        # 2. Prediction. A contained predictor failure (or an OPEN
        #    prediction breaker) means no prediction this period. In
        #    hybrid mode the aux threshold detector judges the same
        #    measurement inside the stage and its verdict is combined
        #    with the geometry vote per ``gmm_hybrid_rule``.
        result = self._call_stage(
            "predict",
            tick,
            self._stage_predict,
            tick,
            mode,
            mapped.coords,
            violated,
            measurement,
        )
        if isinstance(result, _StageOutcome):
            prediction, aux_vote = None, False
        else:
            prediction, aux_vote = result
        self.last_prediction = prediction
        geometry_vote = prediction is not None and prediction.impending_violation
        if self.config.detector_mode == "hybrid" and self.aux_detector is not None:
            if self.config.gmm_hybrid_rule == "or":
                flagged = geometry_vote or aux_vote
            else:
                flagged = geometry_vote and aux_vote
        else:
            flagged = geometry_vote
        impending = (
            flagged and mode is ExecutionMode.COLOCATED and predictive_allowed
        )
        if impending:
            self.alarm_ticks.append(tick)
            self.events.record(
                tick,
                EventKind.PREDICTED_VIOLATION,
                votes=prediction.votes if prediction is not None else 0,
                detector=(
                    "both"
                    if geometry_vote and aux_vote
                    else ("gmm" if aux_vote else "geometry")
                ),
            )

        # 3. Action.
        sensitive_distance = self._sensitive_step_distance(mode, mapped.coords)
        self._act(
            tick,
            host,
            impending=impending,
            observed=violated and mode is ExecutionMode.COLOCATED,
            distance=sensitive_distance,
        )

        self.trajectory.append(
            TrajectoryPoint(
                tick=tick,
                coords=mapped.coords.copy(),
                mode=mode,
                label=mapped.label,
                throttling=self.throttle.throttling,
            )
        )
        self._prev_coords = mapped.coords.copy()
        self._prev_mode = mode

    # -- stages (patchable seams; each runs inside the firewall) ----------------
    def _stage_guard(self, tick: int):
        """Collect stage: validate/impute the raw measurement."""
        raw = self.collector.latest.values
        if self.guard is None:
            return raw, True
        verdict = self.guard.inspect(tick, raw)
        if not verdict.accepted:
            self.events.record(
                tick,
                EventKind.SENSOR_REJECT,
                reasons=[reason.value for reason in verdict.reasons],
                imputed=verdict.imputed,
            )
        return verdict.values, verdict.usable

    def _stage_map(self, tick: int, measurement: np.ndarray, violated: bool):
        """Mapping stage: measurement -> state -> 2-D coordinates."""
        with self.telemetry.stage("controller.map"):
            return self.mapping.map_measurement(tick, measurement, violated)

    def _stage_predict(
        self,
        tick: int,
        mode: ExecutionMode,
        coords: np.ndarray,
        violated: bool,
        measurement: Optional[np.ndarray] = None,
    ):
        """Prediction stage: learn the step, vote over candidates.

        Returns ``(prediction, aux_vote)``; the aux threshold verdict
        is False whenever no auxiliary detector is wired or there is no
        measurement to judge. Running the aux detector inside this
        stage keeps its failures behind the prediction breaker.
        """
        with self.telemetry.stage("controller.predict"):
            self.predictor.observe(tick, mode, coords, self.state_space, violated)
            prediction = self.predictor.predict(tick, mode, coords, self.state_space)
            aux_vote = False
            if self.aux_detector is not None and measurement is not None:
                aux_vote = bool(self.aux_detector.update(tick, measurement))
            return prediction, aux_vote

    def _stage_act(
        self,
        tick: int,
        host: Host,
        impending: bool,
        observed: bool,
        distance: Optional[float],
    ) -> bool:
        """Action stage: throttle/resume decision."""
        with self.telemetry.stage("controller.act"):
            return self.throttle.step(
                tick,
                host,
                impending_violation=impending,
                observed_violation=observed,
                sensitive_step_distance=distance,
            )

    # -- the exception firewall -------------------------------------------------
    def _call_stage(self, stage: str, tick: int, fn, *args, **kwargs):
        """Run one stage behind its circuit breaker and exception firewall.

        With fault containment disabled this is a plain call — stage
        exceptions propagate and crash the run exactly as the naive
        runtime would. With containment on, an exception degrades the
        period (``STAGE_FAILED``) and feeds the stage's error budget; an
        exhausted budget opens the breaker and the stage is skipped
        (``STAGE_OPEN``) until cooldown and probing close it again. A
        tripped mapping/prediction breaker additionally forces the
        degraded-mode machine into the conservative reactive policy.
        """
        if self.breakers is None:
            return fn(*args, **kwargs)
        breaker = self.breakers.get(stage)
        if not breaker.allows(tick):
            return STAGE_OPEN
        try:
            result = fn(*args, **kwargs)
        except Exception as exc:  # sacheck: disable=SA108 -- stage firewall: contain any stage fault, degrade the period instead of crashing the run
            self._c_firewall.inc()
            self.events.record(
                tick,
                EventKind.FIREWALL_CATCH,
                stage=stage,
                error_type=type(exc).__name__,
                error=str(exc),
            )
            tripped = breaker.record_failure(tick)
            if tripped and stage in ("guard", "map", "predict") and self.health is not None:
                self.health.force_degraded(tick, f"breaker-{stage}")
            return STAGE_FAILED
        breaker.record_success(tick)
        return result

    def _act(
        self,
        tick: int,
        host: Host,
        impending: bool,
        observed: bool,
        distance: Optional[float],
    ) -> bool:
        """Firewalled action stage with the pause-and-hold fail-safe.

        When the act stage raises or its breaker is OPEN the controller
        cannot trust its throttle/resume decision logic, so it falls
        back to the safest action available: pause the batch containers
        (a no-op if already paused) and hold — no resumes — until the
        breaker closes again.
        """
        result = self._call_stage(
            "act", tick, self._stage_act, tick, host, impending, observed, distance
        )
        if isinstance(result, _StageOutcome):
            throttled_now = self.throttle.preemptive_pause(tick, host)
        else:
            throttled_now = result
        if throttled_now:
            # The predicted co-located state will never materialize.
            self.predictor.invalidate_pending()
        return throttled_now

    # -- helpers -----------------------------------------------------------------
    def _qos_channel_fresh(self) -> bool:
        """Whether the QoS channel produced a report since last period.

        A channel that has *never* reported is "still learning" rather
        than silent (the application may not have started yet); actual
        silence only begins after the first report.
        """
        series = getattr(self.qos, "qos_series", None)
        if series is None:
            return True
        count = len(series)
        fresh = count > self._qos_reports_seen
        self._qos_reports_seen = count
        return fresh

    def _classify_mode(self, host: Host) -> ExecutionMode:
        """Execution mode from this controller's perspective.

        "Sensitive" means the protected application itself; "batch"
        means anything this controller is allowed to throttle — by
        default the batch containers, but under the §2.1 priority
        scheme also lower-priority sensitive tenants.
        """
        sensitive_active = any(
            container.app is self.sensitive_app
            and container.is_running
            and not container.app.finished
            for container in host.containers.values()
        )
        batch_active = bool(self.throttle.throttle_targets(host))
        return classify_mode(sensitive_active, batch_active)

    def _sensitive_step_distance(
        self, mode: ExecutionMode, coords: np.ndarray
    ) -> Optional[float]:
        """Distance between consecutive sensitive-only mapped states.

        Only defined while the system stays in SENSITIVE_ONLY mode for
        at least two consecutive periods (§3.3's resume criterion).
        """
        if (
            mode is ExecutionMode.SENSITIVE_ONLY
            and self._prev_mode is ExecutionMode.SENSITIVE_ONLY
            and self._prev_coords is not None
        ):
            return float(np.linalg.norm(coords - self._prev_coords))
        return None

    # -- results ------------------------------------------------------------------
    def export_template(self, **metadata) -> MapTemplate:
        """Snapshot the learned map for reuse in future executions (§6)."""
        return MapTemplate.from_state_space(
            self.state_space, beta=self.throttle.beta, metadata=metadata
        )

    def summary(self) -> dict:
        """Headline counters for reports and tests."""
        aux_summary = None
        if self.aux_detector is not None and hasattr(self.aux_detector, "summary"):
            aux_summary = self.aux_detector.summary()
        return {
            "periods": len(self.trajectory),
            "detector_mode": self.config.detector_mode,
            "alarms": len(self.alarm_ticks),
            "gmm": aux_summary,
            "states": len(self.state_space),
            "violation_states": int(self.state_space.violation_indices.size),
            "violations_observed": self.qos.violation_count,
            "violation_ratio": self.qos.violation_ratio(),
            "throttles": self.throttle.throttle_count,
            "resumes": self.throttle.resume_count,
            "probe_resumes": self.throttle.probe_resume_count,
            "beta": self.throttle.beta,
            "refits": self.state_space.refit_count,
            "outcome_accuracy": self.predictor.outcome_accuracy(),
            "resilience": {
                "guard": self.guard.summary() if self.guard is not None else None,
                "health": self.health.summary() if self.health is not None else None,
                "reconcile_repauses": self.throttle.reconcile_repauses,
                "reconcile_drops": self.throttle.reconcile_drops,
                "failed_actions": self.throttle.failed_actions,
                "escalations": self.throttle.escalations,
            },
            "telemetry": {
                "enabled": self.telemetry.enabled,
                "monitoring_gaps": int(self._c_gaps.value),
                "containment": {
                    "enabled": self.breakers is not None,
                    "firewall_catches": int(self._c_firewall.value),
                    "breakers": (
                        self.breakers.summary() if self.breakers is not None else None
                    ),
                    "watchdog": (
                        self.watchdog.summary() if self.watchdog is not None else None
                    ),
                },
                "dedup_hit_rate": (
                    self.mapping.dedup_hit_rate() if self.mapping is not None else 0.0
                ),
                "geometry": self.state_space.geometry_stats(),
                "stages": self.telemetry.stage_summary(),
                "spans_recorded": len(self.telemetry.tracer.spans),
            },
        }
