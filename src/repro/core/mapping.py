"""The Mapping step: raw measurement vector -> labelled mapped-state.

Pipeline per period (§3.1 + §4 optimizations):

1. normalize every metric into [0, 1];
2. deduplicate against known representatives (epsilon-ball merge);
3. if the sample is new, place it on the 2-D MDS map (incremental
   placement, periodic full SMACOF refits);
4. label the state a violation-state when the sensitive application
   reported a QoS violation this period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.state_space import StateLabel, StateSpace
from repro.monitoring.normalize import Normalizer


@dataclass(frozen=True)
class MappedSample:
    """Result of mapping one measurement vector.

    Attributes
    ----------
    tick:
        Tick of the underlying sample.
    state_index:
        Index of the mapped-state in the state space.
    coords:
        2-D coordinates of the mapped-state.
    label:
        Safe or violation, after this sample's labelling.
    is_new_state:
        True when this sample opened a new representative.
    refitted:
        True when absorbing this sample triggered a full SMACOF refit.
    """

    tick: int
    state_index: int
    coords: np.ndarray
    label: StateLabel
    is_new_state: bool
    refitted: bool


class MappingPipeline:
    """Normalization + dedup + MDS placement, with history.

    Parameters
    ----------
    normalizer:
        Maps raw metric arrays into [0, 1]^d.
    state_space:
        The shared state space (possibly pre-seeded from a template).
    """

    def __init__(
        self, normalizer: Normalizer, state_space: StateSpace, telemetry=None
    ) -> None:
        self.normalizer = normalizer
        self.state_space = state_space
        self.history: List[MappedSample] = []
        self.telemetry = telemetry
        if telemetry is not None:
            self._c_samples = telemetry.counter(
                "mapping.samples", help="measurement vectors mapped"
            )
            self._c_dedup_hits = telemetry.counter(
                "mapping.dedup_hits",
                help="samples merged into an existing representative (§4)",
            )
            self._c_new_states = telemetry.counter(
                "mapping.new_states", help="new representatives opened"
            )
            self._g_states = telemetry.gauge(
                "mapping.states", help="current state-space size"
            )

    def map_measurement(
        self, tick: int, values: np.ndarray, violated: bool
    ) -> MappedSample:
        """Map one raw measurement vector and record the result."""
        normalized = self.normalizer.normalize(np.asarray(values, dtype=float))
        index, is_new, refitted = self.state_space.add_sample(normalized, violated)
        sample = MappedSample(
            tick=tick,
            state_index=index,
            coords=self.state_space.coords[index].copy(),
            label=self.state_space.labels[index],
            is_new_state=is_new,
            refitted=refitted,
        )
        self.history.append(sample)
        if self.telemetry is not None:
            self._c_samples.inc()
            if is_new:
                self._c_new_states.inc()
            else:
                self._c_dedup_hits.inc()
            self._g_states.set(len(self.state_space))
        return sample

    def dedup_hit_rate(self) -> float:
        """Fraction of mapped samples absorbed by an existing state.

        The §4 optimization in one number: how much of the stream the
        representative-sample reduction kept out of the SMACOF matrix.
        """
        if not self.history:
            return 0.0
        hits = sum(1 for sample in self.history if not sample.is_new_state)
        return hits / len(self.history)

    @property
    def latest(self) -> Optional[MappedSample]:
        """Most recent mapped sample (None before the first)."""
        return self.history[-1] if self.history else None

    def trajectory(self, last_n: Optional[int] = None) -> np.ndarray:
        """The mapped trajectory: per-period coordinates, oldest first.

        Note that after a refit earlier samples keep their original
        (pre-refit) coordinates; use the state space directly for the
        current geometry.
        """
        samples = self.history if last_n is None else self.history[-last_n:]
        if not samples:
            return np.empty((0, 2))
        return np.vstack([sample.coords for sample in samples])
