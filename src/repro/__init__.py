"""repro: a full reproduction of *Stay-Away* (Middleware 2014).

Stay-Away is a generic, adaptive host middleware that protects
latency-sensitive applications from performance interference when
co-located with best-effort batch applications: it maps per-VM resource
usage into a 2-D MDS state space, learns which states correspond to QoS
violations, predicts transitions toward them from per-execution-mode
trajectory models, and proactively throttles batch containers
(SIGSTOP/SIGCONT) before the violation happens.

Quick start::

    from repro import Scenario, run_trio

    scenario = Scenario(sensitive="vlc-streaming", batches=("twitter-analysis",))
    trio = run_trio(scenario)
    print(trio.stayaway.violation_ratio(), trio.utilization.stayaway_gain_mean)

Package layout:

* :mod:`repro.core` — the Stay-Away mechanism (the paper's contribution);
* :mod:`repro.sim` — the simulated host/container substrate;
* :mod:`repro.workloads` — VLC, Webservice, Soplex, Twitter-Analysis, bombs;
* :mod:`repro.monitoring` — metric collection, normalization, QoS tracking;
* :mod:`repro.mds` — SMACOF multidimensional scaling from scratch;
* :mod:`repro.trajectory` — per-mode movement models and sampling;
* :mod:`repro.baselines` — no-prevention / reactive / static-profiling;
* :mod:`repro.experiments` — scenario builders and standard runners;
* :mod:`repro.analysis` — utilization, QoS and accuracy summaries;
* :mod:`repro.telemetry` — controller self-telemetry: metric registry,
  stage timers, trace spans and JSON/Prometheus/JSONL exporters.
"""

from repro.core.config import StayAwayConfig
from repro.core.controller import StayAway
from repro.core.state_space import StateLabel, StateSpace, violation_range_radius
from repro.core.template import MapTemplate
from repro.experiments.runner import (
    RunResult,
    TrioResult,
    run_isolated,
    run_reactive,
    run_scenario,
    run_stayaway,
    run_trio,
    run_unmanaged,
)
from repro.experiments.scenarios import Scenario
from repro.sim.container import Container
from repro.sim.engine import SimulationEngine
from repro.sim.host import Host
from repro.sim.resources import Resource, ResourceVector
from repro.telemetry import Telemetry
from repro.workloads.registry import available_workloads, make_workload

__version__ = "1.0.0"

__all__ = [
    "Container",
    "Host",
    "MapTemplate",
    "Resource",
    "ResourceVector",
    "RunResult",
    "Scenario",
    "SimulationEngine",
    "StateLabel",
    "StateSpace",
    "StayAway",
    "StayAwayConfig",
    "Telemetry",
    "TrioResult",
    "available_workloads",
    "make_workload",
    "run_isolated",
    "run_reactive",
    "run_scenario",
    "run_stayaway",
    "run_trio",
    "run_unmanaged",
    "violation_range_radius",
    "__version__",
]
